"""Persistence for submitted studies and their results.

One JSON document per study, keyed by the content-digest study id,
written with the checkpoint layer's temp-file-then-rename idiom so a
crash never leaves a half-written record.  ``directory=None`` keeps
everything in memory — the embedded test server's mode.

A record carries the submitted study document, a coarse state
(``running`` / ``succeeded`` / ``failed``), and — once finished — the
result payload or the error message.  Because the study id is a
content digest, re-submitting the same exploration is idempotent: the
store simply returns the existing record.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import RascadError

#: The states a stored study moves through.
STUDY_STATES = ("running", "succeeded", "failed")


class StudyNotFoundError(RascadError):
    """No stored study under the requested id."""


class StudyStore:
    """Thread-safe study records, in memory or on disk."""

    def __init__(
        self, directory: Optional[Union[str, Path]] = None
    ) -> None:
        self._lock = threading.Lock()
        self._memory: Dict[str, Dict[str, object]] = {}
        self.directory: Optional[Path] = None
        if directory is not None:
            self.directory = Path(directory)
            self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # storage primitives
    # ------------------------------------------------------------------
    def _path(self, study_id: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{study_id}.json"

    def _write(self, record: Dict[str, object]) -> None:
        study_id = str(record["study_id"])
        if self.directory is None:
            self._memory[study_id] = json.loads(json.dumps(record))
            return
        path = self._path(study_id)
        temp = path.with_suffix(".tmp")
        temp.write_text(json.dumps(record, sort_keys=True))
        os.replace(temp, path)

    def _read(self, study_id: str) -> Optional[Dict[str, object]]:
        if self.directory is None:
            record = self._memory.get(study_id)
            return json.loads(json.dumps(record)) if record else None
        path = self._path(study_id)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(
        self, study_id: str, document: Dict[str, object]
    ) -> tuple:
        """Record a new study as running, idempotently.

        Returns ``(record, created)`` — re-submitting an id returns
        the existing record untouched, so a finished study's result
        survives duplicate submissions.
        """
        with self._lock:
            existing = self._read(study_id)
            if existing is not None:
                return existing, False
            record: Dict[str, object] = {
                "study_id": study_id,
                "name": document.get("name"),
                "strategy": document.get(
                    "strategy", "grid"
                ),
                "state": "running",
                "document": document,
                "result": None,
                "error": None,
            }
            self._write(record)
            return record, True

    def succeed(
        self, study_id: str, result: Dict[str, object]
    ) -> Dict[str, object]:
        """Attach a finished result payload."""
        with self._lock:
            record = self._require(study_id)
            record["state"] = "succeeded"
            record["result"] = result
            record["error"] = None
            self._write(record)
            return record

    def fail(self, study_id: str, error: str) -> Dict[str, object]:
        with self._lock:
            record = self._require(study_id)
            record["state"] = "failed"
            record["error"] = error
            self._write(record)
            return record

    def _require(self, study_id: str) -> Dict[str, object]:
        record = self._read(study_id)
        if record is None:
            raise StudyNotFoundError(f"no study {study_id!r}")
        return record

    def get(self, study_id: str) -> Dict[str, object]:
        """The full record, or :class:`StudyNotFoundError`."""
        with self._lock:
            return self._require(study_id)

    def ids(self) -> List[str]:
        with self._lock:
            if self.directory is None:
                return sorted(self._memory)
            return sorted(
                path.stem
                for path in self.directory.glob("study-*.json")
            )

    def list(self) -> List[Dict[str, object]]:
        """Summaries (no documents/results), sorted by id."""
        summaries = []
        for study_id in self.ids():
            record = self.get(study_id)
            result = record.get("result") or {}
            summaries.append({
                "study_id": study_id,
                "name": record.get("name"),
                "strategy": record.get("strategy"),
                "state": record.get("state"),
                "evaluated": result.get("evaluated"),
                "front_size": (
                    len(result.get("front", []))
                    if record.get("state") == "succeeded"
                    else None
                ),
            })
        return summaries

    def counts(self) -> Dict[str, int]:
        """Per-state totals, for the metrics endpoint."""
        counts = {state: 0 for state in STUDY_STATES}
        for study_id in self.ids():
            state = str(self.get(study_id).get("state"))
            if state in counts:
                counts[state] += 1
        return counts
