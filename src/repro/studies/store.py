"""Persistence for submitted studies and their results.

One SQLite row per study on :class:`repro.store.SqliteStore`, keyed by
the content-digest study id; the submitted document and the result
payload are stored as JSON columns.  ``directory=None`` keeps the
database in memory — the embedded test server's mode.

A record carries the submitted study document, a coarse state
(``running`` / ``succeeded`` / ``failed``), and — once finished — the
result payload or the error message.  Because the study id is a
content digest, re-submitting the same exploration is idempotent: the
store simply returns the existing record.

Earlier releases wrote one ``study-*.json`` file per study under the
same directory; opening a store over such a directory imports those
records into the database once (the files are left in place,
untouched).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import RascadError
from ..store import Migration, Schema, SqliteStore

#: The states a stored study moves through.
STUDY_STATES = ("running", "succeeded", "failed")

#: Database file name inside the store's directory.
STUDIES_DB_FILENAME = "studies.sqlite3"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS studies (
    study_id TEXT PRIMARY KEY,
    name     TEXT,
    strategy TEXT NOT NULL DEFAULT 'grid',
    state    TEXT NOT NULL DEFAULT 'running',
    document TEXT NOT NULL,
    result   TEXT,
    error    TEXT
);
"""

#: The studies schema, versioned via ``PRAGMA user_version``.
STUDIES_SCHEMA = Schema(
    "studies", [Migration(1, "studies table", _SCHEMA)]
)


class StudyNotFoundError(RascadError):
    """No stored study under the requested id."""


class StudyStore:
    """Thread-safe study records, in memory or on disk."""

    def __init__(
        self, directory: Optional[Union[str, Path]] = None
    ) -> None:
        self.directory: Optional[Path] = None
        if directory is None:
            self.db = SqliteStore(":memory:", STUDIES_SCHEMA)
        else:
            self.directory = Path(directory)
            self.db = SqliteStore(
                self.directory / STUDIES_DB_FILENAME, STUDIES_SCHEMA
            )
            self._import_legacy_files()

    def close(self) -> None:
        self.db.close()

    def _import_legacy_files(self) -> None:
        """One-time import of pre-database ``study-*.json`` records."""
        assert self.directory is not None
        legacy = sorted(self.directory.glob("study-*.json"))
        if not legacy:
            return
        with self.db.transaction() as conn:
            for path in legacy:
                try:
                    record = json.loads(path.read_text())
                except (OSError, ValueError):
                    continue
                if not isinstance(record, dict):
                    continue
                conn.execute(
                    "INSERT OR IGNORE INTO studies (study_id, name, "
                    "strategy, state, document, result, error) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    _row_values(record, str(record.get(
                        "study_id", path.stem
                    ))),
                )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(
        self, study_id: str, document: Dict[str, object]
    ) -> tuple:
        """Record a new study as running, idempotently.

        Returns ``(record, created)`` — re-submitting an id returns
        the existing record untouched, so a finished study's result
        survives duplicate submissions.
        """
        record: Dict[str, object] = {
            "study_id": study_id,
            "name": document.get("name"),
            "strategy": document.get("strategy", "grid"),
            "state": "running",
            "document": document,
            "result": None,
            "error": None,
        }
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO studies (study_id, name, "
                "strategy, state, document, result, error) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                _row_values(record, study_id),
            )
            created = cursor.rowcount == 1
            row = conn.execute(
                "SELECT * FROM studies WHERE study_id = ?", (study_id,)
            ).fetchone()
        return _record(row), created

    def succeed(
        self, study_id: str, result: Dict[str, object]
    ) -> Dict[str, object]:
        """Attach a finished result payload."""
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "UPDATE studies SET state = 'succeeded', result = ?, "
                "error = NULL WHERE study_id = ?",
                (json.dumps(result, sort_keys=True), study_id),
            )
            if cursor.rowcount == 0:
                raise StudyNotFoundError(f"no study {study_id!r}")
            row = conn.execute(
                "SELECT * FROM studies WHERE study_id = ?", (study_id,)
            ).fetchone()
        return _record(row)

    def fail(self, study_id: str, error: str) -> Dict[str, object]:
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "UPDATE studies SET state = 'failed', error = ? "
                "WHERE study_id = ?",
                (error, study_id),
            )
            if cursor.rowcount == 0:
                raise StudyNotFoundError(f"no study {study_id!r}")
            row = conn.execute(
                "SELECT * FROM studies WHERE study_id = ?", (study_id,)
            ).fetchone()
        return _record(row)

    def get(self, study_id: str) -> Dict[str, object]:
        """The full record, or :class:`StudyNotFoundError`."""
        with self.db.connection() as conn:
            row = conn.execute(
                "SELECT * FROM studies WHERE study_id = ?", (study_id,)
            ).fetchone()
        if row is None:
            raise StudyNotFoundError(f"no study {study_id!r}")
        return _record(row)

    def ids(self) -> List[str]:
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT study_id FROM studies ORDER BY study_id"
            ).fetchall()
        return [row["study_id"] for row in rows]

    def list(self) -> List[Dict[str, object]]:
        """Summaries (no documents/results), sorted by id."""
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT * FROM studies ORDER BY study_id"
            ).fetchall()
        summaries = []
        for row in rows:
            record = _record(row)
            result = record.get("result") or {}
            summaries.append({
                "study_id": record["study_id"],
                "name": record.get("name"),
                "strategy": record.get("strategy"),
                "state": record.get("state"),
                "evaluated": result.get("evaluated"),
                "front_size": (
                    len(result.get("front", []))
                    if record.get("state") == "succeeded"
                    else None
                ),
            })
        return summaries

    def counts(self) -> Dict[str, int]:
        """Per-state totals, for the metrics endpoint."""
        counts = {state: 0 for state in STUDY_STATES}
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) AS n FROM studies "
                "GROUP BY state"
            ).fetchall()
        for row in rows:
            if row["state"] in counts:
                counts[row["state"]] = int(row["n"])
        return counts


def _row_values(record: Dict[str, object], study_id: str) -> tuple:
    result = record.get("result")
    return (
        study_id,
        record.get("name"),
        str(record.get("strategy", "grid")),
        str(record.get("state", "running")),
        json.dumps(record.get("document", {}), sort_keys=True),
        None if result is None else json.dumps(result, sort_keys=True),
        record.get("error"),
    )


def _record(row) -> Dict[str, object]:
    return {
        "study_id": row["study_id"],
        "name": row["name"],
        "strategy": row["strategy"],
        "state": row["state"],
        "document": json.loads(row["document"]),
        "result": (
            None if row["result"] is None else json.loads(row["result"])
        ),
        "error": row["error"],
    }
