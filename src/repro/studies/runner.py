"""Driving a study end to end and aggregating its result.

The runner is deliberately split in two:

* :func:`run_study` — the *search loop*: walk the strategy's rounds,
  evaluating each batch of candidates (through
  :meth:`~repro.engine.Engine.solve_many`, so every candidate solve
  hits the engine's content-addressed cache — re-running a study is
  nearly free), and collect the flat availability trace.  An
  ``evaluate`` hook lets the service swap in a cluster fan-out per
  round without touching the search logic.
* :func:`aggregate_study` — a *pure function* from the study spec and
  the complete value trace to the result payload: candidate rows with
  lineage diffs, the non-dominated cost/downtime front, the winner,
  and a content digest of the whole thing.  Purity is the determinism
  story — a resumed job, a 2-worker cluster run, and a single process
  all feed the same trace in, so the payload (and its digest) is
  byte-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.block import DiagramBlockModel
from ..database import PartsDatabase, builtin_database
from ..engine import Engine
from ..obs.trace import get_tracer
from ..spec import parse_spec
from ..units import availability_to_yearly_downtime_minutes
from .candidates import (
    Candidate,
    INVALID_AVAILABILITY,
    feasible,
    serialize_changes,
)
from .pareto import Point, pareto_front
from .spec import StudySpec, study_digest
from .strategies import GridStrategy, Strategy, make_strategy, replay

#: Evaluates one round of candidates into availabilities, in order.
Evaluator = Callable[[List[Candidate]], List[float]]


def evaluate_candidates(
    engine: Engine,
    candidates: Sequence[Candidate],
    method: str = "direct",
) -> List[float]:
    """One study round through the engine.

    Valid candidates go through :meth:`Engine.solve_many` as a single
    batch (cache-checked, fanned out when the engine has workers);
    invalid candidates keep the 0.0 sentinel without a solve.
    """
    valid = [
        (position, candidate.model)
        for position, candidate in enumerate(candidates)
        if candidate.model is not None
    ]
    availabilities = [INVALID_AVAILABILITY] * len(candidates)
    if valid:
        solutions = engine.solve_many(
            [model for _position, model in valid], method
        )
        for (position, _model), solution in zip(valid, solutions):
            availabilities[position] = solution.availability
    return availabilities


def run_study(
    study: StudySpec,
    engine: Optional[Engine] = None,
    database: Optional[PartsDatabase] = None,
    evaluate: Optional[Evaluator] = None,
) -> Dict[str, object]:
    """Run a study to completion and return its result payload."""
    database = database if database is not None else builtin_database()
    engine = engine if engine is not None else Engine()
    model = parse_spec(dict(study.base), database=database)
    strategy = make_strategy(study, model, database)
    if evaluate is None:
        def evaluate(candidates: List[Candidate]) -> List[float]:
            return evaluate_candidates(engine, candidates, study.method)

    values: List[float] = []
    with get_tracer().span(
        "studies.search",
        strategy=study.strategy,
        total=strategy.total(),
    ) as span:
        generator = strategy.rounds()
        try:
            batch = next(generator)
        except StopIteration:
            batch = []
        rounds = 0
        while batch:
            with get_tracer().span(
                "studies.evaluate", candidates=len(batch)
            ):
                availabilities = evaluate(batch)
            if len(availabilities) != len(batch):
                raise RuntimeError(
                    f"evaluator returned {len(availabilities)} values "
                    f"for {len(batch)} candidates"
                )
            values.extend(availabilities)
            rounds += 1
            try:
                batch = generator.send(list(availabilities))
            except StopIteration:
                batch = []
        span.set_attr("rounds", rounds)
        span.set_attr("evaluated", len(values))
    from ..jobs.types import result_digest

    payload = aggregate_study(study, strategy, values, database=database)
    payload["result_digest"] = result_digest(payload)
    return payload


def candidate_row(
    position: int,
    candidate: Candidate,
    availability: float,
    is_feasible: bool,
) -> Dict[str, object]:
    """One candidate's wire form (result payload and detail routes)."""
    downtime = (
        availability_to_yearly_downtime_minutes(availability)
        if candidate.valid
        else None
    )
    return {
        "index": position,
        "assignment": list(candidate.assignment),
        "changes": serialize_changes(candidate.changes),
        "cost": candidate.cost,
        "valid": candidate.valid,
        "feasible": is_feasible,
        "availability": availability if candidate.valid else None,
        "yearly_downtime_minutes": downtime,
    }


def aggregate_study(
    study: StudySpec,
    strategy: Strategy,
    values: Sequence[float],
    database: Optional[PartsDatabase] = None,
) -> Dict[str, object]:
    """The complete-trace -> result-payload pure function.

    Replays the strategy against ``values`` to recover every
    candidate, deduplicates revisited assignments (first evaluation
    wins — later ones are cache hits of the same number), applies the
    constraints, and computes the Pareto front over the feasible
    survivors.  The winner is the front point with the least downtime
    (cost, then position, break ties).

    The payload carries no ``result_digest``: every consumer — the
    job runner, the service, :func:`run_study` — stamps
    ``result_digest(payload)`` on the digest-free payload, so all of
    them produce byte-identical results for byte-identical traces.
    """
    database = database if database is not None else builtin_database()
    trace, pending = replay(strategy, values)
    if pending or len(trace) != len(values):
        raise RuntimeError(
            f"study trace incomplete: {len(values)} values for "
            f"{strategy.total()} evaluations"
        )

    first_seen: Dict[tuple, int] = {}
    rows: List[Dict[str, object]] = []
    factory = strategy.factory
    for position, (candidate, availability) in enumerate(
        zip(trace, values)
    ):
        if candidate.assignment in first_seen:
            continue
        first_seen[candidate.assignment] = position
        downtime = (
            availability_to_yearly_downtime_minutes(availability)
            if candidate.valid
            else None
        )
        rows.append(candidate_row(
            position, candidate, availability,
            feasible(factory, candidate, downtime),
        ))

    points: List[Point] = [
        (row["cost"], row["yearly_downtime_minutes"], row["index"])
        for row in rows
        if row["feasible"]
    ]
    front_points = pareto_front(points)
    front_indexes = [index for _cost, _down, index in front_points]
    winner: Optional[int] = None
    if front_points:
        winner = min(
            front_points,
            key=lambda point: (point[1], point[0], point[2]),
        )[2]

    payload: Dict[str, object] = {
        "kind": "study",
        "study_id": study_digest(study, database=database),
        "name": study.name,
        "strategy": study.strategy,
        "method": study.method,
        "total": strategy.total(),
        "evaluated": len(values),
        "unique": len(rows),
        "feasible": sum(1 for row in rows if row["feasible"]),
        "constraints": study.constraints.to_dict(),
        "variables": [
            variable.to_dict() for variable in study.variables
        ],
        "candidates": rows,
        "front": front_indexes,
        "winner": winner,
    }
    if isinstance(strategy, GridStrategy):
        payload["pruned"] = strategy.pruned()
    return payload


def front_rows(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """The front's candidate rows, in front (cost-sorted) order."""
    by_index = {
        row["index"]: row
        for row in payload.get("candidates", [])  # type: ignore[union-attr]
    }
    return [by_index[index] for index in payload.get("front", [])]
