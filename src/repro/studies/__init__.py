"""repro.studies — design-space exploration over availability models.

The design-phase loop the RAScad paper motivates: declare a base
model, the knobs you are willing to turn (redundancy counts, repair
times, recovery transparency), the budget you must respect — and get
back the non-dominated cost-vs-downtime front with full lineage from
every candidate to the base design.

Layers:

* :mod:`~repro.studies.spec` — the declarative study document,
  validation, and the content-digest study id.
* :mod:`~repro.studies.candidates` — materializing assignments into
  models, solve-free cost/constraint checks.
* :mod:`~repro.studies.strategies` — the search registry: ``grid``,
  ``descent``, ``evolve``; every strategy is a deterministic round
  generator whose whole trajectory replays from the value trace.
* :mod:`~repro.studies.pareto` — dominance and the non-dominated
  front.
* :mod:`~repro.studies.runner` — the search loop over
  ``Engine.solve_many`` plus the pure trace-to-result aggregation.
* :mod:`~repro.studies.store` — persisted study records for the
  service.
"""

from .candidates import (
    Candidate,
    CandidateFactory,
    INVALID_AVAILABILITY,
    feasible,
)
from .pareto import dominates, pareto_front
from .runner import (
    aggregate_study,
    candidate_row,
    evaluate_candidates,
    front_rows,
    run_study,
)
from .spec import (
    Constraints,
    StudySpec,
    Variable,
    parse_study,
    study_digest,
)
from .store import STUDY_STATES, StudyNotFoundError, StudyStore
from .strategies import (
    STRATEGIES,
    DescentStrategy,
    EvolutionStrategy,
    GridStrategy,
    Strategy,
    make_strategy,
    register_strategy,
    replay,
)

__all__ = [
    "Candidate",
    "CandidateFactory",
    "Constraints",
    "DescentStrategy",
    "EvolutionStrategy",
    "GridStrategy",
    "INVALID_AVAILABILITY",
    "STRATEGIES",
    "STUDY_STATES",
    "Strategy",
    "StudyNotFoundError",
    "StudySpec",
    "StudyStore",
    "Variable",
    "aggregate_study",
    "candidate_row",
    "dominates",
    "evaluate_candidates",
    "feasible",
    "front_rows",
    "make_strategy",
    "parse_study",
    "pareto_front",
    "register_strategy",
    "replay",
    "run_study",
    "study_digest",
]
