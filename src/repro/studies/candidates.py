"""Materializing candidate designs from variable assignments.

A candidate is one point of the search space: a value per decision
variable, applied to the base model as the same immutable rebuilds the
sweep layer uses.  Materialization is *total*: assignments that violate
parameter validation (K > N and friends) yield an explicitly invalid
candidate instead of raising, so search strategies keep a fixed,
deterministic evaluation geometry whatever the assignment mix — an
invalid candidate simply never gets a solve (its availability is pinned
to the 0.0 sentinel) and never enters the front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..analysis.parametric import with_block_changes, with_global_changes
from ..core.block import DiagramBlockModel
from ..core.parameters import Scenario
from ..database import PartsDatabase, model_cost
from ..errors import SpecError
from .spec import (
    StudySpec,
    Variable,
    _INTEGER_FIELDS,
    _SCENARIO_FIELDS,
)

#: Availability recorded for a candidate that cannot be built.
INVALID_AVAILABILITY = 0.0

#: One assignment: a value per study variable, in variable order.
Assignment = Tuple[object, ...]


@dataclass(frozen=True)
class Candidate:
    """One materialized design point.

    ``model`` is ``None`` for invalid assignments; ``changes`` is the
    candidate's lineage back to the base spec — one structured entry
    per variable whose assigned value differs from the base value.
    """

    assignment: Assignment
    model: Optional[DiagramBlockModel]
    cost: float
    changes: Tuple[Dict[str, object], ...]

    @property
    def valid(self) -> bool:
        return self.model is not None


def _coerce(variable: Variable, value: object) -> object:
    if variable.field in _SCENARIO_FIELDS:
        return Scenario(str(value))
    if variable.field in _INTEGER_FIELDS:
        return int(value)  # type: ignore[arg-type]
    return float(value)  # type: ignore[arg-type]


def _display(value: object) -> object:
    return value.value if isinstance(value, Scenario) else value


class CandidateFactory:
    """Builds (and memoizes) candidates for one study.

    Materialization cost is dominated by the model rebuild, and the
    adaptive strategies revisit assignments freely — the memo makes a
    revisit a dictionary hit, mirroring how the engine cache makes the
    revisit's *solve* a cache hit.
    """

    def __init__(
        self,
        study: StudySpec,
        base_model: DiagramBlockModel,
        database: PartsDatabase,
    ) -> None:
        self.study = study
        self.base_model = base_model
        self.database = database
        self.variables = study.variables
        self._memo: Dict[Assignment, Candidate] = {}
        self._base_values = [
            self._current_value(variable) for variable in self.variables
        ]

    def _current_value(self, variable: Variable) -> object:
        if variable.path is None:
            value = getattr(
                self.base_model.global_parameters, variable.field
            )
        else:
            value = getattr(
                self.base_model.find(variable.path).parameters,
                variable.field,
            )
        return _display(value)

    def base_value(self, position: int) -> object:
        """The base model's value of variable ``position``."""
        return self._base_values[position]

    def build(self, assignment: Assignment) -> Candidate:
        assignment = tuple(assignment)
        if len(assignment) != len(self.variables):
            raise SpecError(
                f"assignment has {len(assignment)} values for "
                f"{len(self.variables)} variables"
            )
        cached = self._memo.get(assignment)
        if cached is not None:
            return cached

        model: Optional[DiagramBlockModel] = self.base_model
        changes: List[Dict[str, object]] = []
        try:
            for variable, value in zip(self.variables, assignment):
                coerced = _coerce(variable, value)
                if variable.path is None:
                    model = with_global_changes(
                        model, **{variable.field: coerced}
                    )
                else:
                    model = with_block_changes(
                        model, variable.path, **{variable.field: coerced}
                    )
        except SpecError:
            model = None
        for position, (variable, value) in enumerate(
            zip(self.variables, assignment)
        ):
            if value != self._base_values[position]:
                changes.append({
                    "path": variable.path,
                    "field": variable.field,
                    "base": self._base_values[position],
                    "value": value,
                })
        cost = (
            model_cost(model, self.database) if model is not None else 0.0
        )
        candidate = Candidate(
            assignment=assignment,
            model=model,
            cost=cost,
            changes=tuple(changes),
        )
        self._memo[assignment] = candidate
        return candidate

    # ------------------------------------------------------------------
    # solve-free constraint checks
    # ------------------------------------------------------------------
    def violates_min_k(self, assignment: Assignment) -> bool:
        """Whether any assigned ``min_required`` breaks ``min_k``."""
        min_k = self.study.constraints.min_k
        if min_k is None:
            return False
        for variable, value in zip(self.variables, assignment):
            if variable.field == "min_required" and int(value) < min_k:
                return True
        return False

    def violates_max_cost(self, candidate: Candidate) -> bool:
        max_cost = self.study.constraints.max_cost
        return (
            max_cost is not None
            and candidate.valid
            and candidate.cost > max_cost
        )

    def repair(self, assignment: Assignment) -> Assignment:
        """Clamp cross-variable ``min_required`` > ``quantity`` clashes.

        The evolutionary strategy mutates genes independently, so a
        child can pair K with a smaller N.  Repair deterministically
        drops each clashing ``min_required`` to the largest allowed
        value that fits; unfixable assignments come back unchanged and
        materialize as invalid.
        """
        quantities: Dict[Optional[str], int] = {}
        for variable, value in zip(self.variables, assignment):
            if variable.field == "quantity":
                quantities[variable.path] = int(value)
        repaired = list(assignment)
        for position, variable in enumerate(self.variables):
            if variable.field != "min_required":
                continue
            quantity = quantities.get(variable.path)
            if quantity is None:
                block = self.base_model.find(variable.path or "")
                quantity = block.parameters.quantity
            if int(repaired[position]) <= quantity:
                continue
            fitting = [
                int(value)
                for value in variable.values
                if int(value) <= quantity
            ]
            if fitting:
                repaired[position] = max(fitting)
        return tuple(repaired)


def feasible(
    factory: CandidateFactory,
    candidate: Candidate,
    yearly_downtime_minutes: Optional[float],
) -> bool:
    """Whether an evaluated candidate satisfies every constraint."""
    constraints = factory.study.constraints
    if not candidate.valid:
        return False
    if factory.violates_min_k(candidate.assignment):
        return False
    if (
        constraints.max_cost is not None
        and candidate.cost > constraints.max_cost
    ):
        return False
    if (
        constraints.max_downtime_minutes is not None
        and yearly_downtime_minutes is not None
        and yearly_downtime_minutes > constraints.max_downtime_minutes
    ):
        return False
    return True


def serialize_changes(
    changes: Tuple[Mapping[str, object], ...]
) -> List[Dict[str, object]]:
    return [dict(change) for change in changes]
