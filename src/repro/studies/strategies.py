"""Search strategies: how a study walks its candidate space.

Every strategy is a deterministic *round generator*: it yields batches
of candidates, receives each batch's availabilities back, and decides
the next batch from them.  Because a round is a pure function of the
study spec and all earlier availabilities, the full evaluation trace —
the ordered list of ``(candidate, availability)`` pairs — is replayable
from the scalar value list alone.  That single property is what the
rest of the stack leans on: the jobs layer checkpoints nothing but the
value prefix, the cluster layer fans whole rounds out as shardable
batches, and the final Pareto front is a pure aggregation over the
complete trace — so 1-process, multi-worker, and resumed runs are
bit-identical by construction.

Three built-ins behind a registry (mirroring the solver backends):

* ``grid`` — exhaustive product of every variable, with solve-free
  constraint pre-pruning (validity, ``min_k``, ``max_cost``).
* ``descent`` — deterministic coordinate descent: sweep one variable
  at a time from the base design, keep the best feasible value, loop.
* ``evolve`` — a seeded evolutionary search: elitist selection on
  Pareto rank with crossover and per-gene mutation from each
  variable's value list.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.block import DiagramBlockModel
from ..database import PartsDatabase
from ..errors import SpecError
from ..units import availability_to_yearly_downtime_minutes
from .candidates import Assignment, Candidate, CandidateFactory, feasible
from .pareto import pareto_front
from .spec import StudySpec

#: A strategy round generator: yields candidate batches, receives the
#: batch's availabilities via ``send``.
Rounds = Generator[List[Candidate], List[float], None]


class Strategy:
    """Base class: owns the factory and the deterministic geometry."""

    name = "strategy"

    def __init__(
        self,
        study: StudySpec,
        base_model: DiagramBlockModel,
        database: PartsDatabase,
    ) -> None:
        self.study = study
        self.factory = CandidateFactory(study, base_model, database)
        self.variables = study.variables

    def total(self) -> int:
        """Exact number of evaluations, known before any solve."""
        raise NotImplementedError

    def rounds(self) -> Rounds:
        """A fresh round generator (replayable any number of times)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared selection helpers
    # ------------------------------------------------------------------
    def _order_key(
        self, candidate: Candidate, availability: float, position: int
    ) -> Tuple[int, int, float, float, int]:
        """Deterministic preference: feasible, then valid, then best
        downtime, then cheapest, then earliest."""
        downtime = (
            availability_to_yearly_downtime_minutes(availability)
            if candidate.valid
            else float("inf")
        )
        is_feasible = feasible(self.factory, candidate, downtime)
        return (
            0 if is_feasible else 1,
            0 if candidate.valid else 1,
            downtime,
            candidate.cost,
            position,
        )


def replay(
    strategy: Strategy, values: Sequence[float]
) -> Tuple[List[Candidate], List[Candidate]]:
    """Reconstruct the evaluation trace from a value prefix.

    Returns ``(trace, pending)``: the candidate behind each value in
    order, and the not-yet-evaluated remainder of the round containing
    index ``len(values)`` (empty iff the study is complete).  Raises
    :class:`~repro.errors.SpecError` when ``values`` is longer than
    the strategy's trajectory — a checkpoint from a different study.
    """
    trace: List[Candidate] = []
    generator = strategy.rounds()
    try:
        batch = next(generator)
    except StopIteration:
        batch = []
    while batch:
        if len(trace) + len(batch) > len(values):
            done = len(values) - len(trace)
            trace.extend(batch[:done])
            return trace, batch[done:]
        trace.extend(batch)
        feed = list(values[len(trace) - len(batch):len(trace)])
        try:
            batch = generator.send(feed)
        except StopIteration:
            batch = []
    if len(trace) != len(values):
        raise SpecError(
            f"value trace has {len(values)} entries but the "
            f"{strategy.name} strategy evaluates {len(trace)}"
        )
    return trace, []


class GridStrategy(Strategy):
    """Exhaustive product with solve-free pre-pruning."""

    name = "grid"

    def __init__(self, study, base_model, database) -> None:
        super().__init__(study, base_model, database)
        self.pruned_invalid = 0
        self.pruned_min_k = 0
        self.pruned_cost = 0
        pool: List[Candidate] = []
        for assignment in itertools.product(
            *(variable.values for variable in self.variables)
        ):
            if self.factory.violates_min_k(assignment):
                self.pruned_min_k += 1
                continue
            candidate = self.factory.build(assignment)
            if not candidate.valid:
                self.pruned_invalid += 1
                continue
            if self.factory.violates_max_cost(candidate):
                self.pruned_cost += 1
                continue
            pool.append(candidate)
        if not pool:
            raise SpecError(
                "every grid candidate was pruned: "
                f"{self.pruned_invalid} invalid, "
                f"{self.pruned_min_k} below min_k, "
                f"{self.pruned_cost} over max_cost"
            )
        self.pool = pool

    def total(self) -> int:
        return len(self.pool)

    def pruned(self) -> Dict[str, int]:
        return {
            "invalid": self.pruned_invalid,
            "min_k": self.pruned_min_k,
            "max_cost": self.pruned_cost,
        }

    def rounds(self) -> Rounds:
        yield list(self.pool)


class DescentStrategy(Strategy):
    """Coordinate descent from the base design.

    Each round sweeps every variable in order: all of its values with
    the other variables held at the incumbent, then the incumbent
    moves to the best evaluated design.  Invalid combinations occupy
    their trace index with the 0.0 sentinel (never solved), keeping
    the geometry fixed; revisited assignments are engine-cache hits.
    ``options.rounds`` controls the number of passes (default 2).
    """

    name = "descent"

    def __init__(self, study, base_model, database) -> None:
        super().__init__(study, base_model, database)
        rounds = study.options.get("rounds", 2)
        if isinstance(rounds, bool) or not isinstance(rounds, int):
            raise SpecError("options.rounds must be an integer")
        if not 1 <= rounds <= 32:
            raise SpecError(
                f"options.rounds must be in [1, 32], got {rounds}"
            )
        self.sweep_rounds = rounds
        self.start = tuple(
            self._nearest(position, variable)
            for position, variable in enumerate(self.variables)
        )

    def _nearest(self, position: int, variable) -> object:
        """The variable value closest to the base design (ties: lower)."""
        base = self.factory.base_value(position)
        if base in variable.values:
            return base
        numeric = [
            value for value in variable.values
            if isinstance(value, (int, float))
        ]
        if numeric and isinstance(base, (int, float)):
            return min(
                numeric, key=lambda value: (abs(value - base), value)
            )
        return variable.values[0]

    def total(self) -> int:
        per_sweep = sum(
            len(variable.values) for variable in self.variables
        )
        return self.sweep_rounds * per_sweep

    def rounds(self) -> Rounds:
        incumbent = self.start
        for _sweep in range(self.sweep_rounds):
            for position in range(len(self.variables)):
                variable = self.variables[position]
                batch = [
                    self.factory.build(
                        incumbent[:position]
                        + (value,)
                        + incumbent[position + 1:]
                    )
                    for value in variable.values
                ]
                availabilities = yield batch
                best = min(
                    range(len(batch)),
                    key=lambda i: self._order_key(
                        batch[i], availabilities[i], i
                    ),
                )
                if batch[best].valid:
                    incumbent = batch[best].assignment


class EvolutionStrategy(Strategy):
    """Seeded elitist evolutionary Pareto search.

    ``options``: ``population`` (default 16), ``generations``
    (default 8), ``seed`` (default 0), ``mutation`` (default 0.25).
    All randomness flows from one ``numpy`` generator seeded by the
    study spec, consumed in a fixed order — the whole trajectory is a
    pure function of the spec and the (deterministic) availabilities.
    """

    name = "evolve"

    #: Elites carried unchanged into the next generation.
    ELITES = 2

    def __init__(self, study, base_model, database) -> None:
        super().__init__(study, base_model, database)
        options = study.options

        def _int_option(key: str, default: int, low: int, high: int) -> int:
            value = options.get(key, default)
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(f"options.{key} must be an integer")
            if not low <= value <= high:
                raise SpecError(
                    f"options.{key} must be in [{low}, {high}], got {value}"
                )
            return value

        self.population_size = _int_option("population", 16, 2, 1024)
        self.generations = _int_option("generations", 8, 1, 256)
        self.seed = _int_option("seed", 0, 0, 2**31 - 1)
        mutation = options.get("mutation", 0.25)
        if isinstance(mutation, bool) or not isinstance(
            mutation, (int, float)
        ) or not 0.0 <= float(mutation) <= 1.0:
            raise SpecError("options.mutation must be a number in [0, 1]")
        self.mutation = float(mutation)

    def total(self) -> int:
        return self.population_size * self.generations

    def _random_assignment(self, rng: np.random.Generator) -> Assignment:
        return self.factory.repair(tuple(
            variable.values[int(rng.integers(len(variable.values)))]
            for variable in self.variables
        ))

    def rounds(self) -> Rounds:
        rng = np.random.default_rng(self.seed)
        population = [
            self._random_assignment(rng)
            for _ in range(self.population_size)
        ]
        for _generation in range(self.generations):
            batch = [
                self.factory.build(assignment) for assignment in population
            ]
            availabilities = yield batch
            ranked = self._rank(batch, availabilities)
            elites = [
                batch[i].assignment for i in ranked[:self.ELITES]
            ]
            parents = ranked[:max(2, len(ranked) // 2)]
            next_population: List[Assignment] = list(elites)
            while len(next_population) < self.population_size:
                mother = batch[
                    parents[int(rng.integers(len(parents)))]
                ].assignment
                father = batch[
                    parents[int(rng.integers(len(parents)))]
                ].assignment
                child = list(
                    mother[position]
                    if rng.random() < 0.5
                    else father[position]
                    for position in range(len(self.variables))
                )
                for position, variable in enumerate(self.variables):
                    if rng.random() < self.mutation:
                        child[position] = variable.values[
                            int(rng.integers(len(variable.values)))
                        ]
                next_population.append(self.factory.repair(tuple(child)))
            population = next_population

    def _rank(
        self, batch: List[Candidate], availabilities: List[float]
    ) -> List[int]:
        """Generation order: Pareto rank 0 first, then the rest by the
        shared deterministic preference key."""
        points = [
            (candidate.cost,
             availability_to_yearly_downtime_minutes(availability),
             position)
            for position, (candidate, availability) in enumerate(
                 zip(batch, availabilities)
             )
            if candidate.valid
        ]
        front_positions = {index for _c, _d, index in pareto_front(points)}
        return sorted(
            range(len(batch)),
            key=lambda i: (
                0 if i in front_positions else 1,
            ) + self._order_key(batch[i], availabilities[i], i),
        )


#: The strategy registry, name -> class.
STRATEGIES: Dict[str, type] = {}


def register_strategy(cls: type) -> type:
    """Register a strategy class under its ``name``."""
    STRATEGIES[cls.name] = cls
    return cls


for _cls in (GridStrategy, DescentStrategy, EvolutionStrategy):
    register_strategy(_cls)


def make_strategy(
    study: StudySpec,
    base_model: DiagramBlockModel,
    database: Optional[PartsDatabase] = None,
) -> Strategy:
    """Instantiate the study's strategy, or raise for unknown names."""
    from ..database import builtin_database

    cls = STRATEGIES.get(study.strategy)
    if cls is None:
        raise SpecError(
            f"unknown study strategy {study.strategy!r}; "
            f"known: {sorted(STRATEGIES)}"
        )
    return cls(
        study, base_model,
        database if database is not None else builtin_database(),
    )
