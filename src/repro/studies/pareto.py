"""Cost/downtime dominance and the non-dominated front.

Both objectives minimize: a candidate *dominates* another when it is
no worse on both cost and yearly downtime and strictly better on at
least one.  Candidates that tie exactly on both objectives do not
dominate each other — they are distinct designs with the same
headline numbers, and the front keeps all of them.

Everything here compares floats exactly, on purpose: the inputs are
deterministic solver outputs and solve-free cost roll-ups, identical
bit-for-bit across processes, so exact comparison is what makes the
front itself bit-identical whatever evaluated the candidates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: One front input: (cost, yearly_downtime_minutes, candidate index).
Point = Tuple[float, float, int]


def dominates(a: Point, b: Point) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` (minimize both objectives)."""
    a_cost, a_down, _ = a
    b_cost, b_down, _ = b
    if a_cost > b_cost or a_down > b_down:
        return False
    return a_cost < b_cost or a_down < b_down


def pareto_front(points: Sequence[Point]) -> List[Point]:
    """The non-dominated subset, sorted by (cost, downtime, index).

    A single sweep over the cost-sorted points: a point joins the
    front iff its downtime is strictly below the best downtime seen at
    any strictly lower cost, and not above the best downtime within
    its own exact cost (equal-cost points with worse downtime are
    dominated; exact ties on both objectives all survive).
    """
    ordered = sorted(points, key=lambda point: (point[0], point[1], point[2]))
    front: List[Point] = []
    best_downtime_cheaper = float("inf")  # over strictly lower costs
    group_cost: float = float("nan")
    group_best: float = float("inf")
    for point in ordered:
        cost, downtime, _ = point
        if cost != group_cost:
            best_downtime_cheaper = min(best_downtime_cheaper, group_best)
            group_cost = cost
            group_best = float("inf")
        if downtime >= best_downtime_cheaper:
            continue  # a strictly cheaper design is at least as good
        if downtime > group_best:
            continue  # an equal-cost design is strictly better
        group_best = min(group_best, downtime)
        front.append(point)
    return front
