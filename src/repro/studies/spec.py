"""The declarative study specification.

A *study* is the design-phase question RAScad was built for: a base
model, a handful of decision variables (redundancy counts, repair
times, recovery transparency), objectives, and constraints — "which of
these candidate architectures should I build?".  The spec is a plain
JSON document::

    {
      "name": "workgroup-redundancy",
      "base": { ... model spec ... },
      "variables": [
        {"path": "WG/Server", "field": "quantity", "range": [1, 4]},
        {"path": "WG/Server", "field": "corrective_minutes",
         "values": [30, 60, "120:240:3"]},
        {"path": "WG/Server", "field": "recovery",
         "choices": ["transparent", "nontransparent"]}
      ],
      "strategy": "grid",
      "constraints": {"max_downtime_minutes": 60, "max_cost": 50000}
    }

Variables come in three shapes: ``range`` (inclusive integer range —
N, K, spares), ``values`` (an explicit grid, with the sweep layer's
``start:stop:count`` shorthand), and ``choices`` (categorical strings
such as recovery scenarios).  Studies are identified by a **content
digest** over the parsed base model and the canonicalized search
space, so two documents that describe the same exploration share an
id — and share every cached candidate solve.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.parameters import BlockParameters, GlobalParameters, Scenario
from ..database import PartsDatabase
from ..engine.keys import model_digest
from ..errors import SpecError
from ..ident import digest_id
from ..spec import parse_spec

#: Search strategies :mod:`repro.studies.strategies` registers.
DEFAULT_STRATEGY = "grid"

#: Block fields that must hold integers.
_INTEGER_FIELDS = frozenset({"quantity", "min_required"})

#: Block fields that hold recovery/repair scenarios.
_SCENARIO_FIELDS = frozenset({"recovery", "repair"})

_BLOCK_FIELD_NAMES = frozenset(
    f.name for f in dataclasses.fields(BlockParameters)
)
_GLOBAL_FIELD_NAMES = frozenset(
    f.name for f in dataclasses.fields(GlobalParameters)
)

#: Candidate grids beyond this are a typo, not a study.
MAX_VARIABLE_VALUES = 10_000

#: The study-document keys besides ``base`` — what a study job's
#: ``params`` carry (the base rides in the job's model document).
SEARCH_KEYS = (
    "name", "variables", "strategy", "options", "constraints", "method",
)


@dataclass(frozen=True)
class Variable:
    """One decision variable: a spec field and its candidate values.

    ``path`` names a block (``None`` = a global parameter field);
    ``values`` is the normalized, ordered candidate list — integers
    for count fields, floats for rates/durations, scenario strings
    for categorical choices.
    """

    path: Optional[str]
    field: str
    values: Tuple[object, ...]

    @property
    def key(self) -> str:
        return f"{self.path or '<globals>'}:{self.field}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "field": self.field,
            "values": list(self.values),
        }


@dataclass(frozen=True)
class Constraints:
    """Hard limits a candidate must satisfy to enter the front.

    ``max_cost`` and ``min_k`` are solve-free and pre-prune the grid;
    ``max_downtime_minutes`` needs the solve and marks infeasible
    candidates after evaluation.
    """

    max_downtime_minutes: Optional[float] = None
    max_cost: Optional[float] = None
    min_k: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "max_downtime_minutes": self.max_downtime_minutes,
            "max_cost": self.max_cost,
            "min_k": self.min_k,
        }


@dataclass(frozen=True)
class StudySpec:
    """A parsed, validated study — the hashable exploration request.

    ``base`` is always an inline model spec document: ``model_ref``
    submissions are resolved at the front door (exactly like solves),
    so a ref-based study shares its digest — and its cache — with the
    same study submitted inline.
    """

    name: str
    base: Mapping[str, object]
    variables: Tuple[Variable, ...]
    strategy: str = DEFAULT_STRATEGY
    options: Mapping[str, object] = field(default_factory=dict)
    constraints: Constraints = field(default_factory=Constraints)
    method: str = "direct"

    def to_dict(self, include_base: bool = True) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "variables": [variable.to_dict() for variable in self.variables],
            "strategy": self.strategy,
            "options": dict(self.options),
            "constraints": self.constraints.to_dict(),
            "method": self.method,
        }
        if include_base:
            payload["base"] = dict(self.base)
        return payload


def _expand_numeric(raw: object, label: str) -> List[float]:
    from ..analysis.parametric import expand_values

    if not isinstance(raw, (list, tuple)) or not raw:
        raise SpecError(f"{label} must be a non-empty list")
    return expand_values(raw)


def _variable_from_dict(entry: Mapping[str, object]) -> Variable:
    if not isinstance(entry, Mapping):
        raise SpecError(f"each variable must be an object, got {entry!r}")
    field_name = entry.get("field")
    if not isinstance(field_name, str) or not field_name:
        raise SpecError("variable needs a 'field' name")
    path = entry.get("path")
    if path is not None and (not isinstance(path, str) or not path):
        raise SpecError("variable 'path' must be a non-empty string or null")
    label = f"variable {path or '<globals>'}:{field_name}"

    if path is None:
        if field_name not in _GLOBAL_FIELD_NAMES:
            raise SpecError(
                f"{label}: unknown global field; "
                f"known: {sorted(_GLOBAL_FIELD_NAMES)}"
            )
    elif field_name not in _BLOCK_FIELD_NAMES:
        raise SpecError(
            f"{label}: unknown block field; "
            f"known: {sorted(_BLOCK_FIELD_NAMES)}"
        )

    shapes = [key for key in ("range", "values", "choices") if key in entry]
    if len(shapes) != 1:
        raise SpecError(
            f"{label}: give exactly one of 'range', 'values', 'choices'"
        )
    shape = shapes[0]
    raw = entry[shape]

    values: List[object]
    if shape == "choices":
        if field_name not in _SCENARIO_FIELDS:
            raise SpecError(
                f"{label}: 'choices' fits scenario fields "
                f"({sorted(_SCENARIO_FIELDS)}); use 'values' for "
                "numeric fields"
            )
        if not isinstance(raw, (list, tuple)) or not raw:
            raise SpecError(f"{label}: 'choices' must be a non-empty list")
        values = []
        for choice in raw:
            try:
                values.append(Scenario(str(choice)).value)
            except ValueError:
                raise SpecError(
                    f"{label}: unknown scenario {choice!r}; known: "
                    f"{[s.value for s in Scenario]}"
                ) from None
    elif shape == "range":
        if (
            not isinstance(raw, (list, tuple))
            or len(raw) != 2
            or any(isinstance(v, bool) or not isinstance(v, int) for v in raw)
        ):
            raise SpecError(
                f"{label}: 'range' must be [low, high] integers"
            )
        low, high = int(raw[0]), int(raw[1])
        if low > high:
            raise SpecError(f"{label}: range low {low} > high {high}")
        values = list(range(low, high + 1))
    else:
        if field_name in _SCENARIO_FIELDS:
            raise SpecError(
                f"{label}: use 'choices' for scenario fields"
            )
        numeric = _expand_numeric(raw, f"{label}: 'values'")
        if field_name in _INTEGER_FIELDS:
            values = []
            for value in numeric:
                if value != int(value):
                    raise SpecError(
                        f"{label}: {field_name} values must be integers, "
                        f"got {value}"
                    )
                values.append(int(value))
        else:
            values = list(numeric)

    deduped = list(dict.fromkeys(values))
    if len(deduped) > MAX_VARIABLE_VALUES:
        raise SpecError(
            f"{label}: {len(deduped)} candidate values exceed the "
            f"{MAX_VARIABLE_VALUES} limit"
        )
    return Variable(path=path, field=field_name, values=tuple(deduped))


def _constraints_from_dict(raw: object) -> Constraints:
    if raw is None:
        return Constraints()
    if not isinstance(raw, Mapping):
        raise SpecError("'constraints' must be an object")
    known = {"max_downtime_minutes", "max_cost", "min_k"}
    unknown = sorted(set(raw) - known)
    if unknown:
        raise SpecError(
            f"unknown constraints {unknown}; known: {sorted(known)}"
        )

    def _number(key: str) -> Optional[float]:
        value = raw.get(key)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(f"constraints.{key} must be a number")
        if value < 0:
            raise SpecError(
                f"constraints.{key} must be non-negative, got {value}"
            )
        return float(value)

    min_k = raw.get("min_k")
    if min_k is not None:
        if isinstance(min_k, bool) or not isinstance(min_k, int):
            raise SpecError("constraints.min_k must be an integer")
        if min_k < 1:
            raise SpecError(f"constraints.min_k must be >= 1, got {min_k}")
    return Constraints(
        max_downtime_minutes=_number("max_downtime_minutes"),
        max_cost=_number("max_cost"),
        min_k=min_k,
    )


def parse_study(
    document: Mapping[str, object],
    database: Optional[PartsDatabase] = None,
) -> StudySpec:
    """Parse and validate a study document (with an inline ``base``).

    Validates the base spec by parsing it, every variable against the
    parameter vocabulary, and every block path against the base model.
    Variables are sorted by ``(path, field)`` so documents that list
    the same search space in a different order are the *same study*.
    """
    if not isinstance(document, Mapping):
        raise SpecError("study document must be an object")
    base = document.get("base")
    if not isinstance(base, Mapping):
        raise SpecError("study needs an inline 'base' model spec")
    model = parse_spec(dict(base), database=database)

    raw_variables = document.get("variables")
    if not isinstance(raw_variables, (list, tuple)) or not raw_variables:
        raise SpecError("study needs a non-empty 'variables' list")
    variables = sorted(
        (_variable_from_dict(entry) for entry in raw_variables),
        key=lambda variable: (variable.path or "", variable.field),
    )
    seen_keys = set()
    for variable in variables:
        if variable.key in seen_keys:
            raise SpecError(f"duplicate variable {variable.key}")
        seen_keys.add(variable.key)
        if variable.path is not None:
            model.find(variable.path)  # raises SpecError on a bad path

    strategy = document.get("strategy", DEFAULT_STRATEGY)
    if not isinstance(strategy, str) or not strategy:
        raise SpecError("'strategy' must be a strategy name")
    options = document.get("options", {})
    if not isinstance(options, Mapping):
        raise SpecError("'options' must be an object")
    method = document.get("method", "direct")
    if not isinstance(method, str) or not method:
        raise SpecError("'method' must be a solver method name")

    name = document.get("name") or f"study-of-{model.name}"
    if not isinstance(name, str):
        raise SpecError("'name' must be a string")

    return StudySpec(
        name=name,
        base=dict(base),
        variables=tuple(variables),
        strategy=strategy,
        options=dict(options),
        constraints=_constraints_from_dict(document.get("constraints")),
        method=method,
    )


def study_digest(
    study: StudySpec, database: Optional[PartsDatabase] = None
) -> str:
    """The content-digest study id.

    Hashes the parsed base model's engine digest (so spelled-out
    defaults or key order in the base spec don't fork the id) together
    with the canonicalized search space — the same normalization the
    job and workload digests use.
    """
    model = parse_spec(dict(study.base), database=database)
    document = {
        "kind": "study",
        "model": model_digest(model, study.method),
        "variables": [variable.to_dict() for variable in study.variables],
        "strategy": study.strategy,
        "options": dict(study.options),
        "constraints": study.constraints.to_dict(),
    }
    return digest_id("study", document, 32)
