"""The MG engineering-language specification layer.

RAScad's MG module is driven by a specification "in terms of an
engineering language (MTBF, MTTR, redundancy, etc.)".  This package
defines a JSON-serializable spec format for diagram/block models, a
parser that validates it and resolves part numbers against the
component database, and a writer for round-tripping ("file sharing
across networks" in the paper becomes plain spec files here).
"""

from .schema import BLOCK_FIELDS, GLOBAL_FIELDS, FIELD_ALIASES, normalize_keys
from .parser import parse_spec, load_spec, block_from_dict
from .writer import model_to_spec, save_spec, block_to_dict
from .diff import ChangeKind, DiffEntry, diff_models, format_diff, diff_impact

__all__ = [
    "BLOCK_FIELDS",
    "GLOBAL_FIELDS",
    "FIELD_ALIASES",
    "normalize_keys",
    "parse_spec",
    "load_spec",
    "block_from_dict",
    "model_to_spec",
    "save_spec",
    "block_to_dict",
    "ChangeKind",
    "DiffEntry",
    "diff_models",
    "format_diff",
    "diff_impact",
]
