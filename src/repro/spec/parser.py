"""Parsing engineering-language specs into diagram/block models.

A spec is a JSON-compatible mapping::

    {
      "name": "Data Center System",
      "globals": {"reboot_minutes": 10, "mttm_hours": 48, ...},
      "diagram": {
        "name": "Data Center System",
        "blocks": [
          {"name": "Server Box", "subdiagram": {...}},
          {"name": "Boot Drives", "quantity": 2, "min_required": 1,
           "part_number": "HDD-36G", "recovery": "transparent", ...}
        ]
      }
    }

Block fields accept either the canonical snake_case names or the
paper's Section-3 GUI labels ("MTBF", "Minimum Quantity Required",
"Probability of Correct Diagnosis (Pcd)", ...).  A ``part_number``
pulls hardware defaults from the component database; explicit fields in
the block override them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional, Union

from ..core.block import DiagramBlockModel, MGBlock, MGDiagram
from ..core.parameters import BlockParameters, GlobalParameters
from ..database.parts import PartsDatabase
from ..errors import ParameterError, SpecError
from .schema import BLOCK_FIELDS, GLOBAL_FIELDS, normalize_keys

SpecLike = Union[str, Path, Mapping[str, object]]


def load_spec(
    source: SpecLike, database: Optional[PartsDatabase] = None
) -> DiagramBlockModel:
    """Load a spec from a path, JSON string, or mapping."""
    if isinstance(source, Mapping):
        return parse_spec(source, database=database)
    if isinstance(source, Path) or (
        isinstance(source, str)
        and not source.lstrip().startswith(("{", "["))
    ):
        path = Path(source)
        try:
            text = path.read_text()
        except OSError as exc:
            raise SpecError(f"cannot read spec file {path}: {exc}") from exc
    else:
        text = source
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"invalid spec JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SpecError("spec JSON must be an object")
    return parse_spec(payload, database=database)


def parse_spec(
    spec: Mapping[str, object], database: Optional[PartsDatabase] = None
) -> DiagramBlockModel:
    """Build and validate a :class:`DiagramBlockModel` from a mapping."""
    unknown = set(spec) - {"name", "globals", "diagram"}
    if unknown:
        raise SpecError(
            f"spec: unknown top-level keys {sorted(unknown)}; "
            "expected 'name', 'globals', 'diagram'"
        )
    if "diagram" not in spec:
        raise SpecError("spec: missing 'diagram'")

    raw_globals = spec.get("globals", {})
    if not isinstance(raw_globals, Mapping):
        raise SpecError("spec: 'globals' must be a mapping")
    global_fields = normalize_keys(raw_globals, GLOBAL_FIELDS, "globals")
    try:
        global_parameters = GlobalParameters(**global_fields)  # type: ignore[arg-type]
    except TypeError as exc:
        raise SpecError(f"globals: {exc}") from exc

    diagram = _parse_diagram(spec["diagram"], "diagram", database)
    name = spec.get("name")
    if name is not None and not isinstance(name, str):
        raise SpecError("spec: 'name' must be a string")
    model = DiagramBlockModel(diagram, global_parameters, name=name)
    model.validate()
    return model


def _parse_diagram(
    raw: object, where: str, database: Optional[PartsDatabase]
) -> MGDiagram:
    if not isinstance(raw, Mapping):
        raise SpecError(f"{where}: diagram must be a mapping")
    unknown = set(raw) - {"name", "blocks"}
    if unknown:
        raise SpecError(
            f"{where}: unknown diagram keys {sorted(unknown)}; "
            "expected 'name' and 'blocks'"
        )
    name = raw.get("name")
    if not isinstance(name, str) or not name:
        raise SpecError(f"{where}: diagram needs a non-empty 'name'")
    blocks = raw.get("blocks")
    if not isinstance(blocks, list) or not blocks:
        raise SpecError(f"{where} ({name}): 'blocks' must be a non-empty list")
    diagram = MGDiagram(name)
    for position, entry in enumerate(blocks):
        diagram.add_block(
            block_from_dict(entry, f"{where}.blocks[{position}]", database)
        )
    return diagram


def block_from_dict(
    raw: object,
    where: str = "block",
    database: Optional[PartsDatabase] = None,
) -> MGBlock:
    """Build one MG block (and its subtree) from a spec mapping."""
    if not isinstance(raw, Mapping):
        raise SpecError(f"{where}: block must be a mapping")
    raw = dict(raw)
    sub_raw = raw.pop("subdiagram", None)
    fields = normalize_keys(raw, BLOCK_FIELDS, where)

    part_number = fields.get("part_number")
    if part_number and database is not None:
        # Explicit block fields win; the catalog fills in the rest.
        # Without a database the part number is kept as documentation
        # (round-tripped specs stay loadable anywhere).
        record = database.lookup(str(part_number))
        defaults = record.as_block_fields()
        for key, value in defaults.items():
            fields.setdefault(key, value)

    try:
        parameters = BlockParameters(**fields)  # type: ignore[arg-type]
    except TypeError as exc:
        raise SpecError(f"{where}: {exc}") from exc
    except ParameterError as exc:
        raise SpecError(f"{where}: {exc}") from exc

    subdiagram = None
    if sub_raw is not None:
        subdiagram = _parse_diagram(
            sub_raw, f"{where}.subdiagram", database
        )
    return MGBlock(parameters, subdiagram=subdiagram)
