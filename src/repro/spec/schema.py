"""Spec vocabulary: field names, GUI-label aliases, and key checking.

The canonical spec keys are the snake_case attribute names of
:class:`repro.core.BlockParameters` and
:class:`repro.core.GlobalParameters`.  Because the paper's GUI labels
are the language design engineers actually speak, every label from
Section 3 is accepted as an alias ("MTBF", "Quantity", "Probability of
Correct Diagnosis (Pcd)", ...).
"""

from __future__ import annotations

import re
from typing import Dict, Mapping

from ..errors import SpecError

#: Canonical block-level spec fields (BlockParameters attributes).
BLOCK_FIELDS = frozenset(
    {
        "name",
        "part_number",
        "description",
        "quantity",
        "min_required",
        "mtbf_hours",
        "transient_fit",
        "diagnosis_minutes",
        "corrective_minutes",
        "verification_minutes",
        "service_response_hours",
        "p_correct_diagnosis",
        "p_latent_fault",
        "mttdlf_hours",
        "recovery",
        "ar_time_minutes",
        "p_spf",
        "spf_recovery_minutes",
        "repair",
        "reintegration_minutes",
    }
)

#: Canonical global spec fields (GlobalParameters attributes).
GLOBAL_FIELDS = frozenset(
    {
        "reboot_minutes",
        "mttm_hours",
        "mttrfid_hours",
        "mission_time_hours",
    }
)

#: GUI-label aliases from Section 3 of the paper, lowercased and with
#: punctuation stripped (see :func:`_canonical_alias_key`).
FIELD_ALIASES: Dict[str, str] = {
    "name": "name",
    "part number": "part_number",
    "description": "description",
    "quantity": "quantity",
    "minimum quantity required": "min_required",
    "minimum quantity": "min_required",
    "mtbf": "mtbf_hours",
    "transient failure rate": "transient_fit",
    "mttr part 1 diagnosis time": "diagnosis_minutes",
    "diagnosis time": "diagnosis_minutes",
    "mttr part 2 corrective action time": "corrective_minutes",
    "corrective action time": "corrective_minutes",
    "mttr part 3 verification time": "verification_minutes",
    "verification time": "verification_minutes",
    "service response time": "service_response_hours",
    "tresp": "service_response_hours",
    "probability of correct diagnosis": "p_correct_diagnosis",
    "pcd": "p_correct_diagnosis",
    "probability of latent fault": "p_latent_fault",
    "plf": "p_latent_fault",
    "mttdlf": "mttdlf_hours",
    "mean time to detect latent fault": "mttdlf_hours",
    "automatic recovery scenario": "recovery",
    "ar scenario": "recovery",
    "ar failover time": "ar_time_minutes",
    "ar time": "ar_time_minutes",
    "probability of spf during ar": "p_spf",
    "pspf": "p_spf",
    "spf state recovery time": "spf_recovery_minutes",
    "tspf": "spf_recovery_minutes",
    "repair scenario": "repair",
    "reintegration time": "reintegration_minutes",
    # Global Parameter Bar labels.
    "reboot time": "reboot_minutes",
    "tboot": "reboot_minutes",
    "mttm": "mttm_hours",
    "mean time to maintenance": "mttm_hours",
    "service restriction time": "mttm_hours",
    "mttrfid": "mttrfid_hours",
    "mean time to repair from incorrect diagnosis": "mttrfid_hours",
    "mission time": "mission_time_hours",
}

_PARENTHESIZED = re.compile(r"\([^)]*\)")
_PUNCTUATION = re.compile(r"[:()/,._-]+")
_SPACES = re.compile(r"\s+")


def _canonical_alias_key(key: str) -> str:
    """Lowercase, drop parenthesized abbreviations, strip punctuation.

    "Probability of Correct Diagnosis (Pcd)" ->
    "probability of correct diagnosis"; trailing unit words like "min",
    "hours", "fit" are dropped too.
    """
    text = _PARENTHESIZED.sub(" ", key.strip().lower())
    text = _PUNCTUATION.sub(" ", text)
    text = _SPACES.sub(" ", text).strip()
    for suffix in (" min", " minutes", " hours", " hrs", " fit"):
        if text.endswith(suffix):
            text = text[: -len(suffix)].strip()
    return text


def normalize_keys(
    raw: Mapping[str, object], allowed: frozenset, where: str
) -> Dict[str, object]:
    """Map alias or canonical keys onto canonical keys, rejecting typos."""
    result: Dict[str, object] = {}
    for key, value in raw.items():
        if key in allowed:
            canonical = key
        else:
            canonical = FIELD_ALIASES.get(_canonical_alias_key(key), "")
            if canonical not in allowed:
                raise SpecError(
                    f"{where}: unknown field {key!r}; expected one of "
                    f"{sorted(allowed)} or a Section-3 GUI label"
                )
        if canonical in result:
            raise SpecError(
                f"{where}: field {canonical!r} specified more than once "
                f"(via {key!r})"
            )
        result[canonical] = value
    return result
