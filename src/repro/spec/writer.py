"""Serializing diagram/block models back to spec form.

Round-tripping (``parse_spec(model_to_spec(m))``) preserves the model
exactly; the writer emits canonical snake_case keys and omits fields
that hold their defaults, so saved specs stay close to what an engineer
would write by hand.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Union

from ..core.block import DiagramBlockModel, MGBlock, MGDiagram
from ..core.parameters import Scenario


def _non_default_fields(instance: object) -> Dict[str, object]:
    """Dataclass fields whose values differ from the declared default."""
    result: Dict[str, object] = {}
    for field in dataclasses.fields(instance):
        value = getattr(instance, field.name)
        if field.default is not dataclasses.MISSING:
            default = field.default
        else:
            default = None
        if isinstance(value, Scenario):
            value = value.value
            if isinstance(default, Scenario):
                default = default.value
        if value != default:
            result[field.name] = value
    return result


def block_to_dict(block: MGBlock) -> Dict[str, object]:
    """One block (and its subtree) as a spec mapping."""
    payload = _non_default_fields(block.parameters)
    payload["name"] = block.parameters.name  # always explicit
    if block.subdiagram is not None:
        payload["subdiagram"] = _diagram_to_dict(block.subdiagram)
    return payload


def _diagram_to_dict(diagram: MGDiagram) -> Dict[str, object]:
    return {
        "name": diagram.name,
        "blocks": [block_to_dict(block) for block in diagram],
    }


def model_to_spec(model: DiagramBlockModel) -> Dict[str, object]:
    """A full model as a JSON-compatible spec mapping."""
    spec: Dict[str, object] = {"name": model.name}
    globals_payload = _non_default_fields(model.global_parameters)
    if globals_payload:
        spec["globals"] = globals_payload
    spec["diagram"] = _diagram_to_dict(model.root)
    return spec


def save_spec(model: DiagramBlockModel, path: Union[str, Path]) -> None:
    """Write a model to a spec file (the file-sharing substitute)."""
    Path(path).write_text(json.dumps(model_to_spec(model), indent=2))
