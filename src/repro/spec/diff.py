"""Diffing two diagram/block models.

The paper's collaboration story ("modeling effort coordinated by a
group of engineers located at different sites") needs review tooling:
given a colleague's revised spec, what actually changed?  This module
produces a structured, per-path diff of two models.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from ..core.block import DiagramBlockModel
from ..core.parameters import Scenario

#: Relative tolerance for float parameter comparison.  JSON
#: round-trips are exact for IEEE doubles, but specs that passed
#: through other tools (or decimal re-formatting) can pick up
#: last-ulp noise; anything within one part in 1e12 is the same
#: engineering value and must not report a spurious CHANGED entry.
FLOAT_REL_TOLERANCE = 1e-12


def _values_differ(old_value: object, new_value: object) -> bool:
    """Whether two parameter values meaningfully differ.

    Floats compare with :data:`FLOAT_REL_TOLERANCE` (relative only:
    an absolute tolerance would equate distinct near-zero rates);
    everything else compares exactly.
    """
    if (
        isinstance(old_value, (int, float))
        and isinstance(new_value, (int, float))
        and not isinstance(old_value, bool)
        and not isinstance(new_value, bool)
        and (isinstance(old_value, float) or isinstance(new_value, float))
    ):
        return not math.isclose(
            old_value, new_value,
            rel_tol=FLOAT_REL_TOLERANCE, abs_tol=0.0,
        )
    return old_value != new_value


class ChangeKind(Enum):
    ADDED = "added"
    REMOVED = "removed"
    CHANGED = "changed"


@dataclass(frozen=True)
class DiffEntry:
    """One difference between two models.

    For ``CHANGED`` entries, ``field``/``old``/``new`` describe the
    parameter; for ``ADDED``/``REMOVED`` they are None (the whole block
    appeared or disappeared).  Global-parameter changes use the path
    ``"<globals>"``.
    """

    kind: ChangeKind
    path: str
    field: Optional[str] = None
    old: Optional[object] = None
    new: Optional[object] = None


def _display(value: object) -> object:
    return value.value if isinstance(value, Scenario) else value


def diff_models(
    old: DiagramBlockModel, new: DiagramBlockModel
) -> List[DiffEntry]:
    """Structured differences, in stable path order."""
    entries: List[DiffEntry] = []

    for field in dataclasses.fields(old.global_parameters):
        old_value = getattr(old.global_parameters, field.name)
        new_value = getattr(new.global_parameters, field.name)
        if _values_differ(old_value, new_value):
            entries.append(DiffEntry(
                ChangeKind.CHANGED, "<globals>", field.name,
                _display(old_value), _display(new_value),
            ))

    old_blocks = {path: block for _l, path, block in old.walk()}
    new_blocks = {path: block for _l, path, block in new.walk()}

    for path in sorted(old_blocks.keys() | new_blocks.keys()):
        if path not in new_blocks:
            entries.append(DiffEntry(ChangeKind.REMOVED, path))
            continue
        if path not in old_blocks:
            entries.append(DiffEntry(ChangeKind.ADDED, path))
            continue
        old_parameters = old_blocks[path].parameters
        new_parameters = new_blocks[path].parameters
        if old_parameters == new_parameters:
            continue
        for field in dataclasses.fields(old_parameters):
            old_value = getattr(old_parameters, field.name)
            new_value = getattr(new_parameters, field.name)
            if _values_differ(old_value, new_value):
                entries.append(DiffEntry(
                    ChangeKind.CHANGED, path, field.name,
                    _display(old_value), _display(new_value),
                ))
    return entries


def format_diff(entries: List[DiffEntry]) -> str:
    """A human-readable rendering of :func:`diff_models` output."""
    if not entries:
        return "models are identical"
    lines: List[str] = []
    for entry in entries:
        if entry.kind is ChangeKind.ADDED:
            lines.append(f"+ {entry.path}")
        elif entry.kind is ChangeKind.REMOVED:
            lines.append(f"- {entry.path}")
        else:
            lines.append(
                f"~ {entry.path}: {entry.field} "
                f"{entry.old!r} -> {entry.new!r}"
            )
    return "\n".join(lines)


def diff_impact(
    old: DiagramBlockModel, new: DiagramBlockModel
) -> Dict[str, float]:
    """What the change does to the headline numbers.

    Returns old/new availability and the downtime delta in minutes per
    year (positive = the new model is worse).
    """
    from ..core.translator import translate
    from ..units import availability_to_yearly_downtime_minutes

    old_availability = translate(old).availability
    new_availability = translate(new).availability
    return {
        "old_availability": old_availability,
        "new_availability": new_availability,
        "downtime_delta_minutes": (
            availability_to_yearly_downtime_minutes(new_availability)
            - availability_to_yearly_downtime_minutes(old_availability)
        ),
    }
