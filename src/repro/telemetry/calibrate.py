"""Calibration proposals: confirmed drift back into the registry.

The closing arc of the field-data loop: when the drift detector
confirms that a part's observed rate has left the rate its spec
encodes, :func:`build_proposal` re-fits the spec — each drifted
block's ``mtbf_hours`` becomes the reciprocal of its fitted rate —
solves the candidate through the engine (so the proposal carries its
predicted availability), and packages the :mod:`repro.spec.diff`
lineage, the event window, and the fitted rates into one
content-digested proposal document.

:func:`publish_proposal` pushes the candidate into the registry as a
new version with ``{"source": "calibration", "event_window": ...,
"fitted_rates": ...}`` provenance.  It is **never auto-tagged**: a
plain publish only records the version (and moves ``latest``, which
is never gated); promoting it to a real tag goes through
``registry.publish``'s availability regression gate like any other
candidate — a calibration that makes the model *worse* than the tag
holder still gets its 409.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, TYPE_CHECKING

from ..analysis.parametric import with_block_changes
from ..core.block import DiagramBlockModel
from ..engine import Engine
from ..jobs.types import result_digest
from ..obs import get_tracer
from ..registry.types import diff_payload, spec_digest
from ..spec import model_to_spec
from ..spec.diff import diff_models
from ..units import availability_to_yearly_downtime_minutes
from .drift import DriftConfig, DriftReport, detect_drift
from .estimator import FittedRates, RateEstimator
from .events import NoDriftError, TelemetryError
from .source import reference_rates

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..registry import ModelRegistry, PublishResult


def refit_model(
    model: DiagramBlockModel,
    fitted: FittedRates,
    report: DriftReport,
) -> DiagramBlockModel:
    """The model with every drifted block's MTBF re-fitted.

    ``mtbf_hours`` becomes ``1 / fitted_rate``; a part confirmed as
    *improved* with zero observed failures falls back to the upper
    confidence bound — the most conservative rate the data allows.
    """
    refitted = model
    for part in report.drifted_parts:
        entry = fitted.part(part)
        rate = entry.failure_rate if entry.failure_rate > 0 else entry.rate_high
        if rate <= 0:
            raise TelemetryError(
                f"part {part!r} drifted but has no usable fitted rate"
            )
        refitted = with_block_changes(
            refitted, part, mtbf_hours=1.0 / rate
        )
    return refitted


def build_proposal(
    estimator: RateEstimator,
    model: DiagramBlockModel,
    engine: Engine,
    drift_config: Optional[DriftConfig] = None,
    options: object = "direct",
    window_end_hours: Optional[float] = None,
    confidence: float = 0.95,
) -> Dict[str, object]:
    """Detect drift against ``model`` and emit a proposal document.

    Raises :class:`NoDriftError` (HTTP 409) when no part's CUSUM
    crossed its threshold — a proposal without confirmed drift would
    republish noise.  The document is pure data (JSON-ready) and
    closes with its own ``proposal_digest``, the bit-identity witness
    the SIGKILL-resume smoke test compares.
    """
    tracer = get_tracer()
    reference = reference_rates(model)
    with tracer.span(
        "telemetry.fit",
        model=model.name,
        parts=estimator.parts,
        events=estimator.events_total,
    ) as span:
        fitted = estimator.fit(
            window_end_hours=window_end_hours, confidence=confidence
        )
        report = detect_drift(estimator, reference, drift_config)
        span.set_attr("drifted", len(report.drifted_parts))
    if not report.any_drift:
        raise NoDriftError(
            f"no drift confirmed for model {model.name!r} over "
            f"{estimator.events_total} events",
            details={
                "model": model.name,
                "events": estimator.events_total,
                "parts": [entry.to_dict() for entry in report.parts],
            },
        )
    refitted = refit_model(model, fitted, report)
    candidate_spec = model_to_spec(refitted)
    solution = engine.solve(refitted, options)
    event_window = estimator.event_window() or {}
    fitted_rates = {
        part: fitted.part(part).failure_rate
        for part in report.drifted_parts
    }
    proposal: Dict[str, object] = {
        "kind": "calibration_proposal",
        "model": model.name,
        "spec": candidate_spec,
        "base_digest": spec_digest(model),
        "candidate_digest": spec_digest(refitted),
        "event_window": event_window,
        "fitted": fitted.to_dict(),
        "fitted_rates": fitted_rates,
        "drift": report.to_dict(),
        "diff": diff_payload(diff_models(model, refitted)),
        "refit": {
            part: {
                "old_mtbf_hours": 1.0 / reference[part],
                "new_mtbf_hours": 1.0 / fitted_rates[part]
                if fitted_rates[part] > 0
                else None,
                "rate_low": fitted.part(part).rate_low,
                "rate_high": fitted.part(part).rate_high,
            }
            for part in report.drifted_parts
        },
        "evaluation": {
            "availability": solution.availability,
            "yearly_downtime_minutes": (
                availability_to_yearly_downtime_minutes(
                    solution.availability
                )
            ),
        },
        "provenance": {
            "source": "calibration",
            "event_window": event_window,
            "fitted_rates": fitted_rates,
        },
    }
    proposal["proposal_digest"] = result_digest(proposal)
    return proposal


def publish_proposal(
    registry: "ModelRegistry",
    proposal: Mapping[str, object],
    name: str,
    tag: Optional[str] = None,
    force: bool = False,
    threshold: Optional[float] = None,
) -> "PublishResult":
    """Publish a proposal's candidate spec with calibration provenance.

    Tagging is the caller's explicit choice and runs the registry's
    availability regression gate; omitting ``tag`` records the version
    without promoting it anywhere.
    """
    if not isinstance(proposal, Mapping) or "spec" not in proposal:
        raise TelemetryError(
            "calibration proposal must be an object with a 'spec' field"
        )
    provenance = proposal.get("provenance")
    if not isinstance(provenance, Mapping):
        raise TelemetryError(
            "calibration proposal is missing its provenance record"
        )
    return registry.publish(
        proposal["spec"],  # type: ignore[arg-type]
        name,
        description=(
            f"calibration proposal {proposal.get('proposal_digest', '')[:16]}"
        ),
        tag=tag,
        force=force,
        threshold=threshold,
        source=dict(provenance),
    )
