"""The serving-side telemetry hub: admission, state, proposals.

One :class:`TelemetryHub` sits inside the HTTP service (and behind the
local CLI): it owns a :class:`~repro.telemetry.estimator.RateEstimator`
behind a lock, applies **bounded admission** (a cap on events admitted
but not yet folded into state — beyond it ingest answers
:class:`~repro.telemetry.events.BacklogFullError`, the service's 429),
validates whole batches *before* applying them (a 400 rejects the
batch atomically — no half-ingested payloads), persists state through
:class:`repro.store.SqliteStore` (one ``telemetry.sqlite3`` holding
the estimator state and the latest proposal as JSON documents,
written transactionally), and keeps the latest calibration proposal.
Directories written by earlier releases (``state.json`` /
``proposal.json``) are read as a fallback when the database is empty.

Batch validation + per-event dedup give the ingest path its replay
idempotency: re-POSTing a delivered batch reports every event as a
duplicate and changes nothing, bit-for-bit.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.block import DiagramBlockModel
from ..engine import Engine
from ..obs import get_logger, get_tracer
from ..store import Migration, Schema, SqliteStore
from .calibrate import build_proposal, publish_proposal
from .drift import DriftConfig
from .estimator import RateEstimator
from .events import (
    BacklogFullError,
    FieldEvent,
    NoProposalError,
    OutOfOrderError,
    TelemetryError,
    parse_events,
)

#: Default cap on events admitted but not yet applied.
DEFAULT_MAX_PENDING = 10_000

#: Default cap on one batch's event count (still subject to the HTTP
#: body-size limit underneath).
DEFAULT_MAX_BATCH = 1_024

#: Legacy filenames inside the hub's state directory (pre-database).
STATE_FILENAME = "state.json"
PROPOSAL_FILENAME = "proposal.json"

#: Database file name inside the hub's state directory.
TELEMETRY_DB_FILENAME = "telemetry.sqlite3"

#: The telemetry schema: one key/value table of JSON documents
#: (``state``, ``proposal``), versioned via ``PRAGMA user_version``.
TELEMETRY_SCHEMA = Schema(
    "telemetry",
    [
        Migration(
            1,
            "kv table for estimator state and proposal",
            """
            CREATE TABLE IF NOT EXISTS telemetry_kv (
                key   TEXT PRIMARY KEY,
                value TEXT NOT NULL
            )
            """,
        )
    ],
)


class TelemetryHub:
    """Thread-safe ingest/fit/propose state for one server or CLI."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        stats=None,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_batch: int = DEFAULT_MAX_BATCH,
        window_hours: float = 168.0,
        start_hours: float = 0.0,
    ) -> None:
        if max_pending < 1:
            raise TelemetryError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_batch < 1:
            raise TelemetryError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        self.directory = Path(directory).expanduser() if directory else None
        if self.directory is None:
            self.db = SqliteStore(":memory:", TELEMETRY_SCHEMA)
        else:
            self.db = SqliteStore(
                self.directory / TELEMETRY_DB_FILENAME, TELEMETRY_SCHEMA
            )
        self.stats = stats
        self.max_pending = max_pending
        self.max_batch = max_batch
        self._lock = threading.Lock()
        self._pending = 0
        self._batches = 0
        self._duplicates = 0
        self._rejected = 0
        self._proposals = 0
        self._estimator = self._load_state(window_hours, start_hours)
        self._proposal = self._load_proposal()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def close(self) -> None:
        self.db.close()

    def _kv_get(self, key: str) -> Optional[Dict[str, object]]:
        with self.db.connection() as conn:
            row = conn.execute(
                "SELECT value FROM telemetry_kv WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        payload = json.loads(row["value"])
        return payload if isinstance(payload, dict) else None

    def _kv_set(self, key: str, payload: Dict[str, object]) -> None:
        with self.db.transaction() as conn:
            conn.execute(
                "INSERT INTO telemetry_kv (key, value) VALUES (?, ?) "
                "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
                (key, json.dumps(payload, sort_keys=True)),
            )

    def _legacy_document(
        self, filename: str
    ) -> Optional[Dict[str, object]]:
        """A pre-database JSON file's payload, if present and valid."""
        if self.directory is None:
            return None
        path = self.directory / filename
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def _load_state(
        self, window_hours: float, start_hours: float
    ) -> RateEstimator:
        payload = self._kv_get("state")
        if payload is None:
            payload = self._legacy_document(STATE_FILENAME)
        if payload is not None:
            try:
                return RateEstimator.from_dict(payload)
            except (ValueError, KeyError, TelemetryError):
                get_logger("telemetry").warning(
                    "discarding unreadable telemetry state",
                    extra={"path": str(self.db.path)},
                )
        return RateEstimator(
            start_hours=start_hours, window_hours=window_hours
        )

    def _load_proposal(self) -> Optional[Dict[str, object]]:
        payload = self._kv_get("proposal")
        if payload is None:
            payload = self._legacy_document(PROPOSAL_FILENAME)
        return payload

    def save(self) -> None:
        """Persist estimator state transactionally."""
        self._kv_set("state", self._estimator.to_dict())

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(self, raw_events: object) -> Dict[str, object]:
        """Validate and apply one batch; the ingest result payload.

        The whole batch is checked first (size, schema, per-unit
        monotonicity against current state) and only then applied, so
        a 400 leaves the estimator untouched.  Admission is bounded:
        events admitted but not yet applied count against
        ``max_pending`` and overflow raises
        :class:`BacklogFullError` (429).
        """
        events = parse_events(raw_events)
        if len(events) > self.max_batch:
            raise TelemetryError(
                f"batch of {len(events)} events exceeds the "
                f"{self.max_batch}-event limit; split the batch",
                details={"events": len(events), "max_batch": self.max_batch},
            )
        with self._lock:
            if self._pending + len(events) > self.max_pending:
                if self.stats is not None:
                    self.stats.increment("telemetry_backpressure")
                raise BacklogFullError(
                    f"telemetry backlog is full "
                    f"({self._pending} pending events, cap "
                    f"{self.max_pending}); retry later",
                    details={
                        "pending": self._pending,
                        "max_pending": self.max_pending,
                    },
                )
            self._pending += len(events)
        tracer = get_tracer()
        try:
            with tracer.span(
                "telemetry.ingest", events=len(events)
            ) as span:
                with self._lock:
                    try:
                        self._validate_batch(events)
                    except TelemetryError:
                        self._rejected += len(events)
                        if self.stats is not None:
                            self.stats.increment(
                                "telemetry_events_rejected", len(events)
                            )
                        raise
                    accepted, duplicates = (
                        self._estimator.ingest_many(events)
                    )
                    self._batches += 1
                    self._duplicates += duplicates
                    self.save()
                span.set_attr("accepted", accepted)
                span.set_attr("duplicates", duplicates)
        finally:
            with self._lock:
                self._pending -= len(events)
        if self.stats is not None:
            self.stats.increment("telemetry_batches")
            if accepted:
                self.stats.increment(
                    "telemetry_events_ingested", accepted
                )
            if duplicates:
                self.stats.increment(
                    "telemetry_events_duplicate", duplicates
                )
            self.stats.set_gauge(
                "telemetry_parts", self._estimator.parts
            )
            self.stats.set_gauge(
                "telemetry_units", self._estimator.units
            )
        return {
            "accepted": accepted,
            "duplicates": duplicates,
            "events_total": self._estimator.events_total,
            "parts": self._estimator.parts,
            "units": self._estimator.units,
            "state_digest": self._estimator.state_digest(),
        }

    def _validate_batch(self, events: List[FieldEvent]) -> None:
        """Dry-run per-unit monotonicity so application cannot fail."""
        cursors: Dict[tuple, int] = {}
        for event in events:
            key = (event.part, event.unit)
            if key not in cursors:
                state = self._estimator.unit_state(event.part, event.unit)
                cursors[key] = (
                    state.last_tick
                    if state is not None
                    else self._estimator.start_tick
                )
            if event.ticks <= cursors[key]:
                state = self._estimator.unit_state(event.part, event.unit)
                if state is not None and event.event_id in state.seen:
                    continue  # replay: skipped at apply time
                raise OutOfOrderError(
                    f"event for {event.part!r}/{event.unit!r} at "
                    f"{event.time_hours} h is out of order within the "
                    "batch or behind the unit's accepted stream",
                    details={
                        "part": event.part,
                        "unit": event.unit,
                        "time_hours": event.time_hours,
                        "event_id": event.event_id,
                    },
                )
            else:
                cursors[key] = event.ticks

    # ------------------------------------------------------------------
    # status / fit / proposals
    # ------------------------------------------------------------------
    @property
    def estimator(self) -> RateEstimator:
        return self._estimator

    def counts(self) -> Dict[str, object]:
        """The ``/metrics`` telemetry section."""
        with self._lock:
            return {
                "events_total": self._estimator.events_total,
                "parts": self._estimator.parts,
                "units": self._estimator.units,
                "batches": self._batches,
                "duplicates": self._duplicates,
                "rejected": self._rejected,
                "pending": self._pending,
                "max_pending": self.max_pending,
                "proposals": self._proposals,
            }

    def summary(self, confidence: float = 0.95) -> Dict[str, object]:
        """The ``GET /v1/calibration`` status payload."""
        with self._lock:
            with get_tracer().span(
                "telemetry.fit", parts=self._estimator.parts
            ):
                fitted = self._estimator.fit(confidence=confidence)
            proposal = self._proposal
            return {
                "events_total": self._estimator.events_total,
                "parts": self._estimator.parts,
                "units": self._estimator.units,
                "window_hours": self._estimator.window_hours,
                "event_window": self._estimator.event_window(),
                "state_digest": self._estimator.state_digest(),
                "fitted": fitted.to_dict(),
                "proposal": (
                    None
                    if proposal is None
                    else {
                        "model": proposal.get("model"),
                        "proposal_digest": proposal.get("proposal_digest"),
                        "candidate_digest": proposal.get(
                            "candidate_digest"
                        ),
                        "drifted_parts": proposal.get("drift", {}).get(
                            "drifted_parts"
                        ),
                    }
                ),
            }

    def propose(
        self,
        model: DiagramBlockModel,
        engine: Engine,
        drift_config: Optional[DriftConfig] = None,
        options: object = "direct",
        window_end_hours: Optional[float] = None,
        confidence: float = 0.95,
    ) -> Dict[str, object]:
        """Build, remember, and persist a calibration proposal."""
        with self._lock:
            proposal = build_proposal(
                self._estimator,
                model,
                engine,
                drift_config=drift_config,
                options=options,
                window_end_hours=window_end_hours,
                confidence=confidence,
            )
            self._proposal = proposal
            self._proposals += 1
            self._kv_set("proposal", proposal)
        if self.stats is not None:
            self.stats.increment("telemetry_proposals")
        return proposal

    @property
    def last_proposal(self) -> Optional[Dict[str, object]]:
        with self._lock:
            return self._proposal

    def require_proposal(self) -> Dict[str, object]:
        proposal = self.last_proposal
        if proposal is None:
            raise NoProposalError(
                "no calibration proposal exists; propose first"
            )
        return proposal

    def publish(
        self,
        registry,
        name: str,
        tag: Optional[str] = None,
        force: bool = False,
        threshold: Optional[float] = None,
    ):
        """Publish the remembered proposal; the registry's result."""
        proposal = self.require_proposal()
        result = publish_proposal(
            registry,
            proposal,
            name,
            tag=tag,
            force=force,
            threshold=threshold,
        )
        if self.stats is not None:
            self.stats.increment("telemetry_published")
        return result
