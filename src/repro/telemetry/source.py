"""Reproducible synthetic field-event traces from a model.

The test/bench event source for the calibration loop, the component-
level sibling of :mod:`repro.validation.field_data`: where that module
plays whole *blocks* forward and logs system outages (what a site
operator records), this one plays each physical *unit* of each leaf
block — the granularity field telemetry actually reports — emitting
``failure`` / ``repair`` / ``latent_detect`` events whose ground-truth
rates are the model's own parameters.

Determinism: every unit gets its own ``numpy`` generator seeded from
the global seed plus a content hash of ``(server, path, copy)``, so
the trace is a pure function of ``(model, window, seed, shifts)`` —
independent of dict ordering, and stable across runs and machines.
``mtbf_shifts`` injects ground-truth drift: the events for a shifted
block are drawn at ``mtbf * factor`` while the model still encodes the
datasheet value, which is exactly the mismatch the drift detector and
the calibration refit must recover.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from ..core.block import DiagramBlockModel
from ..ident import digest_int64
from ..validation.field_data import FIFTEEN_MONTHS_HOURS
from .events import FieldEvent, TelemetryError


def _unit_seed(seed: int, server: str, path: str, copy: int) -> np.random.Generator:
    return np.random.default_rng(
        [seed, digest_int64(f"{server}|{path}|{copy}")]
    )


def reference_rates(model: DiagramBlockModel) -> Dict[str, float]:
    """Per-unit permanent failure rates the model's spec encodes.

    ``{block path: 1 / mtbf_hours}`` over the *leaf* blocks — the
    rates the drift detector tests the fitted rates against.
    """
    rates: Dict[str, float] = {}
    for _level, path, block in model.walk():
        if not block.has_subdiagram:
            rates[path] = 1.0 / block.parameters.mtbf_hours
    return rates


def synthetic_field_events(
    model: DiagramBlockModel,
    window_hours: float = FIFTEEN_MONTHS_HOURS,
    seed: int = 0,
    server: str = "server-A",
    mtbf_shifts: Optional[Mapping[str, float]] = None,
) -> List[FieldEvent]:
    """The field events one server's worth of units would report.

    Each copy of each leaf block alternates exponential up times (mean
    ``mtbf_hours``, scaled by its ``mtbf_shifts`` factor if named) and
    exponential repair times (mean MTTR + service response).  Failures
    in redundant groups additionally surface ``latent_detect`` events
    with probability ``p_latent_fault`` while the unit is still down.
    Events come back sorted by ``(tick, part, unit, kind)`` — one
    canonical stream for digests and replays.
    """
    if window_hours <= 0:
        raise TelemetryError(
            f"trace window must be positive, got {window_hours}"
        )
    shifts = dict(mtbf_shifts or {})
    paths = {path for _level, path, _block in model.walk()}
    for path, factor in shifts.items():
        if path not in paths:
            raise TelemetryError(
                f"mtbf shift names unknown block path {path!r}"
            )
        if not isinstance(factor, (int, float)) or factor <= 0:
            raise TelemetryError(
                f"mtbf shift factor for {path!r} must be positive, "
                f"got {factor!r}"
            )
    events: List[FieldEvent] = []
    for _level, path, block in model.walk():
        if block.has_subdiagram:
            continue
        parameters = block.parameters
        mtbf = parameters.mtbf_hours * float(shifts.get(path, 1.0))
        mttr = parameters.mttr_hours + parameters.service_response_hours
        redundant = parameters.quantity > parameters.min_required
        for copy in range(parameters.quantity):
            unit = f"{server}/{path}#{copy}"
            rng = _unit_seed(seed, server, path, copy)
            unit_events: List[FieldEvent] = []
            clock = 0.0
            while True:
                fail_at = clock + rng.exponential(mtbf)
                if fail_at >= window_hours:
                    break
                unit_events.append(
                    FieldEvent(path, unit, "failure", fail_at)
                )
                repair_at = fail_at + rng.exponential(mttr)
                if redundant and parameters.p_latent_fault > 0:
                    if rng.random() < parameters.p_latent_fault:
                        detect_at = fail_at + rng.exponential(
                            parameters.mttdlf_hours
                        )
                        if detect_at < min(repair_at, window_hours):
                            unit_events.append(
                                FieldEvent(
                                    path, unit, "latent_detect", detect_at
                                )
                            )
                if repair_at >= window_hours:
                    break
                unit_events.append(
                    FieldEvent(path, unit, "repair", repair_at)
                )
                clock = repair_at
            unit_events.sort(key=lambda event: event.ticks)
            # The tick grid is 1 ns; drop the (measure-zero) collisions
            # so each unit's stream stays strictly monotonic.
            last_tick = -1
            for event in unit_events:
                if event.ticks > last_tick:
                    events.append(event)
                    last_tick = event.ticks
    events.sort(key=lambda e: (e.ticks, e.part, e.unit, e.kind))
    return events
