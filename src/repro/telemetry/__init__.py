"""Streaming field-event telemetry and online rate calibration.

The ninth subsystem: the live path from observed field events back
into model parameters.  The paper validates its generated models
against 15 months of E10000 field data by hand; this package closes
that loop continuously:

* :mod:`.events` — validated failure/repair/latent-detect records on
  an integer tick grid, with content-digest ids for idempotent replay;
* :mod:`.estimator` — mergeable, checkpointable per-FRU exposure-time
  MLE rate estimators (chi-square intervals via the *shared*
  :mod:`repro.validation.intervals` implementation), following the
  associative-merge discipline of the obs histograms;
* :mod:`.drift` — deterministic windowed-LLR CUSUM drift detection
  against the rates a registry model's spec encodes;
* :mod:`.calibrate` — re-fitted specs with diff lineage, solved
  through the engine and published to the registry with calibration
  provenance, still subject to the regression gate;
* :mod:`.source` — reproducible synthetic field traces (the
  test/bench event source, companion to ``repro.validation.field_data``);
* :mod:`.hub` — the serving-side state: bounded admission, atomic
  batches, persistence, proposals.
"""

from .calibrate import build_proposal, publish_proposal, refit_model
from .drift import (
    DETERIORATION,
    IMPROVEMENT,
    DriftConfig,
    DriftReport,
    PartDrift,
    detect_drift,
)
from .estimator import (
    FittedRates,
    PartFit,
    RateEstimator,
    STATE_FORMAT,
    UnitState,
)
from .events import (
    EVENT_KINDS,
    TICKS_PER_HOUR,
    BacklogFullError,
    FieldEvent,
    NoDriftError,
    NoProposalError,
    OutOfOrderError,
    TelemetryError,
    event_from_dict,
    events_from_field_log,
    from_ticks,
    parse_events,
    to_ticks,
)
from .hub import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_PENDING,
    TelemetryHub,
)
from .source import reference_rates, synthetic_field_events

__all__ = [
    "BacklogFullError",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_PENDING",
    "DETERIORATION",
    "DriftConfig",
    "DriftReport",
    "EVENT_KINDS",
    "FieldEvent",
    "FittedRates",
    "IMPROVEMENT",
    "NoDriftError",
    "NoProposalError",
    "OutOfOrderError",
    "PartDrift",
    "PartFit",
    "RateEstimator",
    "STATE_FORMAT",
    "TICKS_PER_HOUR",
    "TelemetryError",
    "TelemetryHub",
    "UnitState",
    "build_proposal",
    "detect_drift",
    "event_from_dict",
    "events_from_field_log",
    "from_ticks",
    "parse_events",
    "publish_proposal",
    "refit_model",
    "reference_rates",
    "synthetic_field_events",
    "to_ticks",
]
