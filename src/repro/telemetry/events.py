"""Field-event records: the wire format of the telemetry subsystem.

A *field event* is one observation a site would report about one
physical unit of one FRU: a permanent **failure**, the completing
**repair**, or the detection of a **latent fault** in a redundant
group.  Events carry

* ``part`` — the FRU identity, the ``/``-joined block path of the
  model (what :meth:`repro.core.block.DiagramBlockModel.walk` yields),
  so a fitted rate maps straight back onto a spec block;
* ``unit`` — which physical instance (``server-A/<path>#2``);
* ``time_hours`` — the event time, quantized onto a fixed integer
  **tick** grid (:data:`TICKS_PER_HOUR`, 1 tick = 1 ns) so that all
  downstream exposure accounting is integer arithmetic — exact,
  associative, and therefore bit-identical under any merge order;
* a **content-digest id** — SHA-256 over the canonical event fields —
  so replaying a batch (client retry, checkpoint resume) is idempotent
  instead of double-counting.

Per ``(part, unit)`` the stream must be strictly monotonic in time;
an event at or before the unit's last accepted tick is either a
replay (same id — silently skipped) or an :class:`OutOfOrderError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import RascadError
from ..ident import digest_id

#: The event kinds a site reports.
EVENT_KINDS = ("failure", "repair", "latent_detect")

#: Integer ticks per hour (1 tick = 1 ns).  All exposure accounting
#: happens on this grid so merges are exact integer additions.
TICKS_PER_HOUR = 3_600_000_000


class TelemetryError(RascadError):
    """A malformed event, batch, or estimator operation.

    The service maps this family onto structured 400 responses
    (``bad_request`` by default, more specific codes for subclasses) —
    bad field data is the reporter's fault, never a 500.
    """

    def __init__(
        self, message: str, details: Optional[Dict[str, object]] = None
    ) -> None:
        super().__init__(message)
        if details is not None:
            self.details = details


class OutOfOrderError(TelemetryError):
    """An event at or before its unit's last accepted timestamp."""


class BacklogFullError(TelemetryError):
    """Ingest admission refused: the pending-event backlog is full.

    Maps to ``429 backlog_full`` with ``Retry-After`` — backpressure,
    not failure.
    """


class NoDriftError(TelemetryError):
    """A calibration proposal was requested but no drift confirmed."""


class NoProposalError(TelemetryError):
    """No calibration proposal exists yet (propose first)."""


def to_ticks(hours: float) -> int:
    """An hour value quantized onto the integer tick grid."""
    if isinstance(hours, bool) or not isinstance(hours, (int, float)):
        raise TelemetryError(f"time must be a number, got {hours!r}")
    value = float(hours)
    if not math.isfinite(value):
        raise TelemetryError(f"time must be finite, got {value!r}")
    return round(value * TICKS_PER_HOUR)


def from_ticks(ticks: int) -> float:
    """Tick count back to hours (exact division of the grid)."""
    return ticks / TICKS_PER_HOUR


@dataclass(frozen=True)
class FieldEvent:
    """One validated field event, pinned to the tick grid."""

    part: str
    unit: str
    kind: str
    time_hours: float

    def __post_init__(self) -> None:
        if not self.part or not isinstance(self.part, str):
            raise TelemetryError(
                f"event part must be a non-empty string, got {self.part!r}"
            )
        if not self.unit or not isinstance(self.unit, str):
            raise TelemetryError(
                f"event unit must be a non-empty string, got {self.unit!r}"
            )
        if self.kind not in EVENT_KINDS:
            raise TelemetryError(
                f"unknown event kind {self.kind!r}; "
                f"known: {list(EVENT_KINDS)}"
            )
        ticks = to_ticks(self.time_hours)
        if ticks < 0:
            raise TelemetryError(
                f"event time must be non-negative, got {self.time_hours}"
            )
        object.__setattr__(self, "_ticks", ticks)

    @property
    def ticks(self) -> int:
        return self._ticks  # type: ignore[attr-defined]

    @property
    def event_id(self) -> str:
        """Content digest over the canonical event fields.

        Identity is *what* was observed — part, unit, kind, tick — so
        the same observation reported twice has the same id and dedups.
        """
        document = {
            "kind": self.kind,
            "part": self.part,
            "ticks": self.ticks,
            "unit": self.unit,
        }
        return digest_id("evt", document, 32)

    def to_dict(self) -> Dict[str, object]:
        return {
            "part": self.part,
            "unit": self.unit,
            "kind": self.kind,
            "time_hours": self.time_hours,
            "id": self.event_id,
        }


def event_from_dict(payload: Mapping[str, object]) -> FieldEvent:
    """Parse and validate one event body; :class:`TelemetryError` on
    anything malformed."""
    if not isinstance(payload, Mapping):
        raise TelemetryError(
            f"each event must be a JSON object, got {type(payload).__name__}"
        )
    for key in ("part", "unit", "kind", "time_hours"):
        if key not in payload:
            raise TelemetryError(f"event is missing required field {key!r}")
    part, unit, kind = payload["part"], payload["unit"], payload["kind"]
    if not isinstance(part, str) or not isinstance(unit, str):
        raise TelemetryError("event part and unit must be strings")
    if not isinstance(kind, str):
        raise TelemetryError(f"event kind must be a string, got {kind!r}")
    return FieldEvent(
        part=part,
        unit=unit,
        kind=kind,
        time_hours=payload["time_hours"],  # type: ignore[arg-type]
    )


def parse_events(raw: object) -> List[FieldEvent]:
    """Parse a batch body's ``events`` list.

    Malformed entries raise :class:`TelemetryError` naming the
    offending index, so a 400 pinpoints the bad record.
    """
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise TelemetryError(
            f"events must be a list, got {type(raw).__name__}"
        )
    events: List[FieldEvent] = []
    for index, entry in enumerate(raw):
        try:
            events.append(event_from_dict(entry))
        except TelemetryError as exc:
            raise TelemetryError(
                f"events[{index}]: {exc}",
                details={"index": index},
            ) from exc
    return events


def events_from_field_log(
    log: "FieldLog", part: str, unit: Optional[str] = None
) -> List[FieldEvent]:
    """A :class:`~repro.validation.field_data.FieldLog` outage log as a
    telemetry event stream.

    Each logged outage becomes a ``failure`` at its start and a
    ``repair`` at its end — the bridge between the batch field-data
    experiment and the streaming estimator, used by tests to check the
    two pipelines agree on downtime.
    """
    name = unit or log.server
    events: List[FieldEvent] = []
    for outage in log.events:
        events.append(
            FieldEvent(part, name, "failure", outage.start_hour)
        )
        if outage.end_hour <= log.window_hours:
            events.append(
                FieldEvent(part, name, "repair", outage.end_hour)
            )
    return events
