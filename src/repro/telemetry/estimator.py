"""Per-FRU online exposure-time MLE rate estimation, mergeable state.

The estimator consumes a monotonic event stream per ``(part, unit)``
and maintains, entirely in integers on the tick grid:

* up/down exposure (a unit is assumed up from the observation start;
  ``failure`` flips it down, ``repair`` flips it up);
* failure / repair / latent-detect counts;
* a per-window failure-count and up-exposure ladder (fixed window
  width, like an :class:`repro.obs.histogram.Histogram` bucket ladder)
  feeding the drift detector;
* the set of accepted event ids, so replays dedup instead of
  double-counting.

**Merge discipline.**  Exactly like the obs histograms: two estimator
states merge iff their configuration (observation start, window
ladder) matches, by summing integer accumulators — associative and
order-insensitive by construction, because everything is integer
arithmetic and each unit's stream lives wholly in one shard (merging
two states that both saw the same unit raises ``ValueError``; shard
event streams *by unit*, the way cluster workers do).  The fitted
rates are then a pure function of the merged integers, summed in
sorted key order — bit-identical however ingestion was interleaved,
sharded, checkpointed, or resumed.

**Estimate.**  The MLE of an exponential failure rate under exposure
censoring is ``n_failures / up_time``; the confidence interval is the
chi-square (Garwood) bound from the *shared* implementation in
:mod:`repro.validation.intervals` — the same function MEADEP quotes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ident import content_digest
from ..validation.intervals import poisson_rate_interval
from .events import (
    TICKS_PER_HOUR,
    FieldEvent,
    OutOfOrderError,
    TelemetryError,
    from_ticks,
    to_ticks,
)

#: Serialization format version, checked by :meth:`RateEstimator.from_dict`.
STATE_FORMAT = 1

_UP = "up"
_DOWN = "down"


@dataclass
class UnitState:
    """One unit's integer accumulators (internal to the estimator)."""

    first_tick: int
    last_tick: int
    status: str
    up_ticks: int = 0
    down_ticks: int = 0
    failures: int = 0
    repairs: int = 0
    latent_detects: int = 0
    window_failures: Dict[int, int] = field(default_factory=dict)
    window_up_ticks: Dict[int, int] = field(default_factory=dict)
    seen: Set[str] = field(default_factory=set)

    def to_dict(self) -> Dict[str, object]:
        return {
            "first_tick": self.first_tick,
            "last_tick": self.last_tick,
            "status": self.status,
            "up_ticks": self.up_ticks,
            "down_ticks": self.down_ticks,
            "failures": self.failures,
            "repairs": self.repairs,
            "latent_detects": self.latent_detects,
            "window_failures": {
                str(k): v for k, v in sorted(self.window_failures.items())
            },
            "window_up_ticks": {
                str(k): v for k, v in sorted(self.window_up_ticks.items())
            },
            "seen": sorted(self.seen),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "UnitState":
        return cls(
            first_tick=int(payload["first_tick"]),
            last_tick=int(payload["last_tick"]),
            status=str(payload["status"]),
            up_ticks=int(payload["up_ticks"]),
            down_ticks=int(payload["down_ticks"]),
            failures=int(payload["failures"]),
            repairs=int(payload["repairs"]),
            latent_detects=int(payload["latent_detects"]),
            window_failures={
                int(k): int(v)
                for k, v in payload["window_failures"].items()  # type: ignore
            },
            window_up_ticks={
                int(k): int(v)
                for k, v in payload["window_up_ticks"].items()  # type: ignore
            },
            seen=set(payload["seen"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class PartFit:
    """One part's fitted rates, counts, and confidence bounds."""

    part: str
    units: int
    failures: int
    repairs: int
    latent_detects: int
    up_hours: float
    down_hours: float
    failure_rate: float
    rate_low: float
    rate_high: float
    mtbf_hours: Optional[float]
    mttr_hours: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "part": self.part,
            "units": self.units,
            "failures": self.failures,
            "repairs": self.repairs,
            "latent_detects": self.latent_detects,
            "up_hours": self.up_hours,
            "down_hours": self.down_hours,
            "failure_rate": self.failure_rate,
            "rate_low": self.rate_low,
            "rate_high": self.rate_high,
            "mtbf_hours": self.mtbf_hours,
            "mttr_hours": self.mttr_hours,
        }


@dataclass(frozen=True)
class FittedRates:
    """The estimator's full fit: per-part rates plus the window."""

    confidence: float
    start_hours: float
    end_hours: Optional[float]
    parts: Tuple[PartFit, ...]

    def part(self, name: str) -> PartFit:
        for entry in self.parts:
            if entry.part == name:
                return entry
        raise TelemetryError(f"no fitted rates for part {name!r}")

    def rate(self, name: str) -> float:
        return self.part(name).failure_rate

    def to_dict(self) -> Dict[str, object]:
        return {
            "confidence": self.confidence,
            "start_hours": self.start_hours,
            "end_hours": self.end_hours,
            "parts": [entry.to_dict() for entry in self.parts],
        }

    def digest(self) -> str:
        """Content digest of the fit — the bit-identity witness."""
        return content_digest(self.to_dict())


class RateEstimator:
    """Mergeable, checkpointable per-FRU rate estimator state."""

    def __init__(
        self,
        start_hours: float = 0.0,
        window_hours: float = 168.0,
    ) -> None:
        if window_hours <= 0:
            raise TelemetryError(
                f"drift window must be positive, got {window_hours}"
            )
        self.start_tick = to_ticks(start_hours)
        if self.start_tick < 0:
            raise TelemetryError(
                f"observation start must be non-negative, got {start_hours}"
            )
        self.window_ticks = to_ticks(window_hours)
        if self.window_ticks <= 0:
            raise TelemetryError(
                f"drift window quantizes to zero ticks: {window_hours}"
            )
        self._units: Dict[str, Dict[str, UnitState]] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def start_hours(self) -> float:
        return from_ticks(self.start_tick)

    @property
    def window_hours(self) -> float:
        return from_ticks(self.window_ticks)

    @property
    def part_names(self) -> List[str]:
        return sorted(self._units)

    @property
    def parts(self) -> int:
        return len(self._units)

    @property
    def units(self) -> int:
        return sum(len(units) for units in self._units.values())

    @property
    def events_total(self) -> int:
        return sum(
            len(state.seen)
            for units in self._units.values()
            for state in units.values()
        )

    def unit_state(self, part: str, unit: str) -> Optional[UnitState]:
        return self._units.get(part, {}).get(unit)

    def part_windows(self, part: str) -> List[Tuple[int, int, int]]:
        """Sorted ``(window_index, up_ticks, failures)`` rows for one
        part, summed over its units — the drift detector's input."""
        up: Dict[int, int] = {}
        failures: Dict[int, int] = {}
        for unit in sorted(self._units.get(part, {})):
            state = self._units[part][unit]
            for index, ticks in state.window_up_ticks.items():
                up[index] = up.get(index, 0) + ticks
            for index, count in state.window_failures.items():
                failures[index] = failures.get(index, 0) + count
        return [
            (index, up.get(index, 0), failures.get(index, 0))
            for index in sorted(set(up) | set(failures))
        ]

    def event_window(self) -> Optional[Dict[str, object]]:
        """The observed event window ``{start_hours, end_hours,
        events}``, or ``None`` before any event."""
        first: Optional[int] = None
        last: Optional[int] = None
        for units in self._units.values():
            for state in units.values():
                if first is None or state.first_tick < first:
                    first = state.first_tick
                if last is None or state.last_tick > last:
                    last = state.last_tick
        if first is None or last is None:
            return None
        return {
            "start_hours": from_ticks(first),
            "end_hours": from_ticks(last),
            "events": self.events_total,
        }

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, event: FieldEvent) -> bool:
        """Apply one event; True if accepted, False if a replay.

        Raises :class:`OutOfOrderError` for an event at or before the
        unit's last accepted tick that is *not* a replay of an already
        accepted event.
        """
        units = self._units.get(event.part)
        state = units.get(event.unit) if units is not None else None
        if state is None:
            state = UnitState(
                first_tick=event.ticks,
                last_tick=self.start_tick,
                status=_UP,
            )
            created = True
        else:
            created = False
        event_id = event.event_id
        if event.ticks <= state.last_tick:
            if event_id in state.seen:
                return False
            raise OutOfOrderError(
                f"event {event_id} for {event.part!r}/{event.unit!r} at "
                f"{event.time_hours} h is not after the unit's last "
                f"accepted event at {from_ticks(state.last_tick)} h",
                details={
                    "part": event.part,
                    "unit": event.unit,
                    "event_id": event_id,
                    "time_hours": event.time_hours,
                    "last_hours": from_ticks(state.last_tick),
                },
            )
        if created:
            self._units.setdefault(event.part, {})[event.unit] = state
        self._accumulate(state, event.ticks)
        if event.kind == "failure":
            state.failures += 1
            window = event.ticks // self.window_ticks
            state.window_failures[window] = (
                state.window_failures.get(window, 0) + 1
            )
            state.status = _DOWN
        elif event.kind == "repair":
            state.repairs += 1
            state.status = _UP
        else:  # latent_detect: counted, no exposure state change
            state.latent_detects += 1
        state.last_tick = event.ticks
        if event.ticks < state.first_tick:  # pragma: no cover - guarded
            state.first_tick = event.ticks
        state.seen.add(event_id)
        return True

    def ingest_many(
        self, events: Iterable[FieldEvent]
    ) -> Tuple[int, int]:
        """Apply events in order; ``(accepted, duplicates)``."""
        accepted = duplicates = 0
        for event in events:
            if self.ingest(event):
                accepted += 1
            else:
                duplicates += 1
        return accepted, duplicates

    def _accumulate(self, state: UnitState, tick: int) -> None:
        """Charge the interval since the last event to the current
        status, splitting up-exposure across the window ladder."""
        start, end = state.last_tick, tick
        if end <= start:
            return
        if state.status == _DOWN:
            state.down_ticks += end - start
            return
        state.up_ticks += end - start
        cursor = start
        window = cursor // self.window_ticks
        while cursor < end:
            boundary = (window + 1) * self.window_ticks
            stop = min(end, boundary)
            state.window_up_ticks[window] = (
                state.window_up_ticks.get(window, 0) + (stop - cursor)
            )
            cursor = stop
            window += 1

    # ------------------------------------------------------------------
    # merge (the obs-histogram discipline)
    # ------------------------------------------------------------------
    def merge(self, other: "RateEstimator") -> "RateEstimator":
        """A new estimator combining two shards' states.

        Requires identical configuration (observation start, window
        ladder) — like histogram bucket ladders — and *disjoint units*:
        one unit's monotonic stream must live wholly in one shard.
        Associative and commutative: everything is integer addition
        over disjoint keys.
        """
        if not isinstance(other, RateEstimator):
            raise ValueError(
                f"cannot merge RateEstimator with {type(other).__name__}"
            )
        if (
            self.start_tick != other.start_tick
            or self.window_ticks != other.window_ticks
        ):
            raise ValueError(
                "cannot merge estimators with different configurations: "
                f"start {self.start_tick} vs {other.start_tick} ticks, "
                f"window {self.window_ticks} vs {other.window_ticks} ticks"
            )
        merged = RateEstimator(
            start_hours=self.start_hours, window_hours=self.window_hours
        )
        merged._units = copy.deepcopy(self._units)
        for part, units in other._units.items():
            target = merged._units.setdefault(part, {})
            for unit, state in units.items():
                if unit in target:
                    raise ValueError(
                        f"unit {part!r}/{unit!r} is present in both "
                        "estimators; shard event streams by unit"
                    )
                target[unit] = copy.deepcopy(state)
        return merged

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "format": STATE_FORMAT,
            "start_tick": self.start_tick,
            "window_ticks": self.window_ticks,
            "units": {
                part: {
                    unit: state.to_dict()
                    for unit, state in sorted(units.items())
                }
                for part, units in sorted(self._units.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RateEstimator":
        if not isinstance(payload, dict):
            raise TelemetryError("estimator state must be a JSON object")
        if payload.get("format") != STATE_FORMAT:
            raise TelemetryError(
                f"unsupported estimator state format "
                f"{payload.get('format')!r} (expected {STATE_FORMAT})"
            )
        estimator = cls.__new__(cls)
        estimator.start_tick = int(payload["start_tick"])
        estimator.window_ticks = int(payload["window_ticks"])
        estimator._units = {
            part: {
                unit: UnitState.from_dict(state)
                for unit, state in units.items()
            }
            for part, units in payload["units"].items()  # type: ignore
        }
        return estimator

    def state_digest(self) -> str:
        """Content digest of the full state (canonical JSON)."""
        return content_digest(self.to_dict())

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        window_end_hours: Optional[float] = None,
        confidence: float = 0.95,
    ) -> FittedRates:
        """Fit per-part rates from the merged integer accumulators.

        ``window_end_hours`` extends every unit's exposure to the end
        of the observation window (in its current status) without
        mutating state — pass the trace's window so quiet units still
        contribute uptime.  Everything is summed in sorted key order
        from integers, so the fit is bit-identical however the state
        was assembled.
        """
        end_tick = (
            None if window_end_hours is None else to_ticks(window_end_hours)
        )
        fits: List[PartFit] = []
        for part in sorted(self._units):
            failures = repairs = latent = 0
            up_ticks = down_ticks = 0
            units = self._units[part]
            for unit in sorted(units):
                state = units[unit]
                failures += state.failures
                repairs += state.repairs
                latent += state.latent_detects
                up_ticks += state.up_ticks
                down_ticks += state.down_ticks
                if end_tick is not None and end_tick > state.last_tick:
                    tail = end_tick - state.last_tick
                    if state.status == _UP:
                        up_ticks += tail
                    else:
                        down_ticks += tail
            up_hours = up_ticks / TICKS_PER_HOUR
            down_hours = down_ticks / TICKS_PER_HOUR
            if up_hours > 0:
                rate = failures / up_hours
                rate_low, rate_high = poisson_rate_interval(
                    failures, up_hours, confidence
                )
            else:
                rate, rate_low, rate_high = 0.0, 0.0, 0.0
            fits.append(
                PartFit(
                    part=part,
                    units=len(units),
                    failures=failures,
                    repairs=repairs,
                    latent_detects=latent,
                    up_hours=up_hours,
                    down_hours=down_hours,
                    failure_rate=rate,
                    rate_low=rate_low,
                    rate_high=rate_high,
                    mtbf_hours=(
                        up_hours / failures if failures > 0 else None
                    ),
                    mttr_hours=(
                        down_hours / repairs if repairs > 0 else None
                    ),
                )
            )
        return FittedRates(
            confidence=confidence,
            start_hours=self.start_hours,
            end_hours=window_end_hours,
            parts=tuple(fits),
        )
