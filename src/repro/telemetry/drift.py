"""Deterministic drift detection: windowed LLR with CUSUM thresholds.

Per part, the detector walks the estimator's fixed window ladder —
``(window index, up-exposure, failure count)`` rows, already merged
across units — and runs two one-sided Page CUSUM tests against the
reference rate ``lambda_0`` the registry model's spec encodes:

* **deterioration**: the per-window log-likelihood ratio of
  ``lambda = shift * lambda_0`` (``shift > 1``) against ``lambda_0``
  for a Poisson count ``n`` over exposure ``T`` is
  ``n * ln(shift) - (shift - 1) * lambda_0 * T``;
* **improvement**: the same statistic at ``1 / shift``.

Each side accumulates ``S = max(0, S + LLR)``; drift is *confirmed*
when a side's peak crosses ``threshold`` (log-likelihood units — the
classical CUSUM decision interval ``h``) and the part has at least
``min_events`` failures.  Everything is a pure float function of the
integer ladder, so two detectors over the same merged state agree
bit-for-bit — there is no randomness and no clock anywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .estimator import RateEstimator
from .events import TICKS_PER_HOUR, TelemetryError, to_ticks

#: Drift directions a part can confirm.
DETERIORATION = "deterioration"
IMPROVEMENT = "improvement"


@dataclass(frozen=True)
class DriftConfig:
    """Detection parameters; defaults suit month-scale field windows."""

    window_hours: float = 168.0
    shift: float = 2.0
    threshold: float = 8.0
    min_events: int = 5

    def __post_init__(self) -> None:
        if self.window_hours <= 0:
            raise TelemetryError(
                f"drift window must be positive, got {self.window_hours}"
            )
        if self.shift <= 1.0:
            raise TelemetryError(
                f"CUSUM shift must exceed 1, got {self.shift}"
            )
        if self.threshold <= 0:
            raise TelemetryError(
                f"CUSUM threshold must be positive, got {self.threshold}"
            )
        if self.min_events < 1:
            raise TelemetryError(
                f"min_events must be >= 1, got {self.min_events}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "window_hours": self.window_hours,
            "shift": self.shift,
            "threshold": self.threshold,
            "min_events": self.min_events,
        }


@dataclass(frozen=True)
class PartDrift:
    """One part's drift verdict and the statistics behind it."""

    part: str
    reference_rate: float
    fitted_rate: float
    failures: int
    exposure_hours: float
    windows: int
    statistic_up: float
    statistic_down: float
    threshold: float
    direction: Optional[str]
    drifted: bool
    first_window: Optional[int]

    def to_dict(self) -> Dict[str, object]:
        return {
            "part": self.part,
            "reference_rate": self.reference_rate,
            "fitted_rate": self.fitted_rate,
            "failures": self.failures,
            "exposure_hours": self.exposure_hours,
            "windows": self.windows,
            "statistic_up": self.statistic_up,
            "statistic_down": self.statistic_down,
            "threshold": self.threshold,
            "direction": self.direction,
            "drifted": self.drifted,
            "first_window": self.first_window,
        }


@dataclass(frozen=True)
class DriftReport:
    """All parts' verdicts under one configuration."""

    config: DriftConfig
    parts: Tuple[PartDrift, ...]

    @property
    def drifted_parts(self) -> List[str]:
        return sorted(
            entry.part for entry in self.parts if entry.drifted
        )

    @property
    def any_drift(self) -> bool:
        return any(entry.drifted for entry in self.parts)

    def part(self, name: str) -> PartDrift:
        for entry in self.parts:
            if entry.part == name:
                return entry
        raise TelemetryError(f"no drift verdict for part {name!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "parts": [entry.to_dict() for entry in self.parts],
            "drifted_parts": self.drifted_parts,
            "any_drift": self.any_drift,
        }


def _cusum(
    rows: List[Tuple[int, int, int]], rate: float, shift: float
) -> Tuple[float, Optional[int]]:
    """Peak CUSUM statistic and the first window index crossing it is
    reported by the caller; here: ``(peak, first_window_at_peak)``."""
    log_shift = math.log(shift)
    statistic = 0.0
    peak = 0.0
    first: Optional[int] = None
    for index, up_ticks, failures in rows:
        exposure = up_ticks / TICKS_PER_HOUR
        statistic = max(
            0.0,
            statistic
            + failures * log_shift
            - (shift - 1.0) * rate * exposure,
        )
        if statistic > peak:
            peak = statistic
            if first is None:
                first = index
    return peak, first


def detect_drift(
    estimator: RateEstimator,
    reference: Mapping[str, float],
    config: Optional[DriftConfig] = None,
) -> DriftReport:
    """Run the windowed-LLR CUSUM over every part with a reference.

    ``reference`` maps part (block path) to the rate the current spec
    encodes — see :func:`repro.telemetry.source.reference_rates`.
    Parts the estimator tracks without a reference rate are skipped
    (nothing to drift *from*); the config's window must match the
    estimator's ladder, exactly as histogram merges insist.
    """
    config = config or DriftConfig(
        window_hours=estimator.window_hours
    )
    if to_ticks(config.window_hours) != estimator.window_ticks:
        raise TelemetryError(
            f"drift window {config.window_hours} h does not match the "
            f"estimator's ladder of {estimator.window_hours} h"
        )
    fitted = estimator.fit()
    verdicts: List[PartDrift] = []
    for part in estimator.part_names:
        rate = reference.get(part)
        if rate is None:
            continue
        if rate <= 0:
            raise TelemetryError(
                f"reference rate for {part!r} must be positive, got {rate}"
            )
        rows = estimator.part_windows(part)
        up_peak, up_first = _cusum(rows, rate, config.shift)
        # Improvement: likelihood of a rate *shift times lower*.  The
        # same LLR formula at 1/shift rewards empty, long windows.
        down_peak, down_first = _cusum(rows, rate, 1.0 / config.shift)
        part_fit = fitted.part(part)
        direction: Optional[str] = None
        first: Optional[int] = None
        if (
            part_fit.failures >= config.min_events
            and up_peak >= config.threshold
        ):
            direction, first = DETERIORATION, up_first
        elif down_peak >= config.threshold:
            direction, first = IMPROVEMENT, down_first
        verdicts.append(
            PartDrift(
                part=part,
                reference_rate=rate,
                fitted_rate=part_fit.failure_rate,
                failures=part_fit.failures,
                exposure_hours=part_fit.up_hours,
                windows=len(rows),
                statistic_up=up_peak,
                statistic_down=down_peak,
                threshold=config.threshold,
                direction=direction,
                drifted=direction is not None,
                first_window=first,
            )
        )
    return DriftReport(config=config, parts=tuple(verdicts))
