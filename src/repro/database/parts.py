"""Part-number lookup for block RAS defaults."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Union

from ..errors import DatabaseError


@dataclass(frozen=True)
class PartRecord:
    """RAS defaults for one field-replaceable unit (FRU).

    Only the per-unit hardware characteristics live in the database;
    deployment-specific values (quantities, scenarios, service levels)
    belong in the model spec.
    """

    part_number: str
    description: str = ""
    mtbf_hours: float = 1.0e6
    transient_fit: float = 0.0
    diagnosis_minutes: float = 30.0
    corrective_minutes: float = 30.0
    verification_minutes: float = 30.0
    #: Per-unit acquisition cost in arbitrary currency units.  Zero
    #: means "not priced" — cost roll-ups count such parts as free
    #: rather than failing, so catalogs predating the field still load.
    cost: float = 0.0

    def __post_init__(self) -> None:
        if not self.part_number:
            raise DatabaseError("part number must be non-empty")
        if self.mtbf_hours <= 0:
            raise DatabaseError(
                f"{self.part_number}: MTBF must be positive, "
                f"got {self.mtbf_hours}"
            )
        if self.transient_fit < 0:
            raise DatabaseError(
                f"{self.part_number}: FIT must be non-negative, "
                f"got {self.transient_fit}"
            )
        if self.cost < 0:
            raise DatabaseError(
                f"{self.part_number}: cost must be non-negative, "
                f"got {self.cost}"
            )

    def as_block_fields(self) -> Dict[str, float]:
        """Fields in BlockParameters vocabulary (minus identification)."""
        return {
            "mtbf_hours": self.mtbf_hours,
            "transient_fit": self.transient_fit,
            "diagnosis_minutes": self.diagnosis_minutes,
            "corrective_minutes": self.corrective_minutes,
            "verification_minutes": self.verification_minutes,
            "description": self.description,
        }


class PartsDatabase:
    """An in-memory part-number -> :class:`PartRecord` catalog."""

    def __init__(self, records: Optional[Mapping[str, PartRecord]] = None):
        self._records: Dict[str, PartRecord] = {}
        for record in (records or {}).values():
            self.add(record)

    def add(self, record: PartRecord) -> None:
        if record.part_number in self._records:
            raise DatabaseError(
                f"duplicate part number {record.part_number!r}"
            )
        self._records[record.part_number] = record

    def lookup(self, part_number: str) -> PartRecord:
        try:
            return self._records[part_number]
        except KeyError:
            raise DatabaseError(
                f"unknown part number {part_number!r}; "
                f"{len(self._records)} parts in catalog"
            ) from None

    def __contains__(self, part_number: str) -> bool:
        return part_number in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PartRecord]:
        return iter(
            self._records[key] for key in sorted(self._records)
        )

    # ------------------------------------------------------------------
    # persistence (the enterprise-database substitute)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = [asdict(record) for record in self]
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "PartsDatabase":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DatabaseError(f"invalid parts-database JSON: {exc}") from exc
        if not isinstance(payload, list):
            raise DatabaseError("parts-database JSON must be a list")
        database = cls()
        for entry in payload:
            if not isinstance(entry, dict):
                raise DatabaseError(
                    f"parts-database entries must be objects, got {entry!r}"
                )
            try:
                database.add(PartRecord(**entry))
            except TypeError as exc:
                raise DatabaseError(f"bad parts-database entry: {exc}") from exc
        return database

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PartsDatabase":
        return cls.from_json(Path(path).read_text())


def model_cost(model, database: PartsDatabase) -> float:
    """Sum the catalog cost of every FRU a model deploys.

    The roll-up is solve-free: ``quantity x per-unit cost`` over every
    block carrying a ``part_number``, matching ``component_count``'s
    convention that quantities are per-diagram counts (not multiplied
    through parent levels).  Blocks without a part number — and parts
    priced at the 0.0 "not priced" default — contribute nothing.
    Unknown part numbers raise :class:`~repro.errors.DatabaseError`.
    """
    total = 0.0
    for _level, _path, block in model.walk():
        part_number = block.parameters.part_number
        if not part_number:
            continue
        record = database.lookup(part_number)
        total += block.parameters.quantity * record.cost
    return total
