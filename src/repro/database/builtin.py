"""Builtin FRU catalog.

A catalog of generic late-1990s/early-2000s server and storage FRUs in
the classes the paper's Figure 2 lists for the Server Box subdiagram
(System Board, CPU Module, power supply, fans, disks, ...).  MTBF and
FIT values are representative engineering-handbook magnitudes, *not*
Sun's proprietary numbers — the reproduction needs realistic scales and
contrasts (disks worst, passive parts best), not exact figures.
"""

from __future__ import annotations

from .parts import PartRecord, PartsDatabase

_BUILTIN_RECORDS = [
    PartRecord(
        part_number="SYSBD-01",
        description="System board (centerplane)",
        mtbf_hours=250_000.0,
        transient_fit=500.0,
        diagnosis_minutes=45.0,
        corrective_minutes=60.0,
        verification_minutes=30.0,
        cost=4_500.0,
    ),
    PartRecord(
        part_number="CPU-400",
        description="400 MHz CPU module",
        mtbf_hours=1_000_000.0,
        transient_fit=2_000.0,
        diagnosis_minutes=30.0,
        corrective_minutes=20.0,
        verification_minutes=15.0,
        cost=2_400.0,
    ),
    PartRecord(
        part_number="MEM-1G",
        description="1 GB memory bank (ECC)",
        mtbf_hours=800_000.0,
        transient_fit=5_000.0,
        diagnosis_minutes=25.0,
        corrective_minutes=15.0,
        verification_minutes=10.0,
        cost=1_800.0,
    ),
    PartRecord(
        part_number="PSU-650",
        description="650 W power supply unit",
        mtbf_hours=400_000.0,
        transient_fit=100.0,
        diagnosis_minutes=10.0,
        corrective_minutes=10.0,
        verification_minutes=5.0,
        cost=600.0,
    ),
    PartRecord(
        part_number="FAN-92",
        description="92 mm fan tray",
        mtbf_hours=300_000.0,
        transient_fit=0.0,
        diagnosis_minutes=5.0,
        corrective_minutes=5.0,
        verification_minutes=5.0,
        cost=80.0,
    ),
    PartRecord(
        part_number="HDD-36G",
        description="36 GB FC-AL disk drive",
        mtbf_hours=150_000.0,
        transient_fit=200.0,
        diagnosis_minutes=15.0,
        corrective_minutes=10.0,
        verification_minutes=120.0,  # data restore / resync dominates
        cost=900.0,
    ),
    PartRecord(
        part_number="IOB-PCI",
        description="PCI I/O board",
        mtbf_hours=500_000.0,
        transient_fit=800.0,
        diagnosis_minutes=30.0,
        corrective_minutes=25.0,
        verification_minutes=15.0,
        cost=1_200.0,
    ),
    PartRecord(
        part_number="NIC-GE",
        description="Gigabit Ethernet adapter",
        mtbf_hours=600_000.0,
        transient_fit=400.0,
        diagnosis_minutes=20.0,
        corrective_minutes=10.0,
        verification_minutes=10.0,
        cost=400.0,
    ),
    PartRecord(
        part_number="HBA-FC",
        description="Fibre Channel host adapter",
        mtbf_hours=550_000.0,
        transient_fit=300.0,
        diagnosis_minutes=20.0,
        corrective_minutes=10.0,
        verification_minutes=15.0,
        cost=700.0,
    ),
    PartRecord(
        part_number="RAIDC-01",
        description="RAID controller",
        mtbf_hours=450_000.0,
        transient_fit=600.0,
        diagnosis_minutes=25.0,
        corrective_minutes=20.0,
        verification_minutes=30.0,
        cost=1_500.0,
    ),
    PartRecord(
        part_number="BKPL-FCAL",
        description="FC-AL disk backplane",
        mtbf_hours=900_000.0,
        transient_fit=50.0,
        diagnosis_minutes=30.0,
        corrective_minutes=45.0,
        verification_minutes=15.0,
        cost=650.0,
    ),
    PartRecord(
        part_number="SWBD-16",
        description="16-port switch board",
        mtbf_hours=700_000.0,
        transient_fit=700.0,
        diagnosis_minutes=30.0,
        corrective_minutes=20.0,
        verification_minutes=15.0,
        cost=2_200.0,
    ),
    PartRecord(
        part_number="CLKBD-01",
        description="Clock board",
        mtbf_hours=1_200_000.0,
        transient_fit=100.0,
        diagnosis_minutes=30.0,
        corrective_minutes=30.0,
        verification_minutes=15.0,
        cost=950.0,
    ),
    PartRecord(
        part_number="SCBD-01",
        description="System controller board",
        mtbf_hours=800_000.0,
        transient_fit=400.0,
        diagnosis_minutes=30.0,
        corrective_minutes=25.0,
        verification_minutes=20.0,
        cost=1_700.0,
    ),
    PartRecord(
        part_number="TAPE-DLT",
        description="DLT tape drive",
        mtbf_hours=200_000.0,
        transient_fit=100.0,
        diagnosis_minutes=15.0,
        corrective_minutes=15.0,
        verification_minutes=20.0,
        cost=1_100.0,
    ),
]


def builtin_database() -> PartsDatabase:
    """A fresh copy of the builtin FRU catalog."""
    database = PartsDatabase()
    for record in _BUILTIN_RECORDS:
        database.add(record)
    return database
