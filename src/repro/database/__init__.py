"""Component RAS-parameter database.

RAScad integrates with Sun's enterprise component-MTBF database; this
package substitutes a local catalog with the same role: a block that
names a part number inherits that part's RAS defaults, which its own
spec fields may then override.
"""

from .parts import PartRecord, PartsDatabase, model_cost
from .builtin import builtin_database

__all__ = ["PartRecord", "PartsDatabase", "builtin_database", "model_cost"]
