"""Sojourn-time distributions for semi-Markov models.

Each distribution knows its mean (needed by the analytic steady-state
solver) and can sample (needed by the Monte Carlo transient solver).
All times are in hours, matching the library-wide convention.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..errors import ParameterError


class Distribution(ABC):
    """A non-negative sojourn-time distribution."""

    @abstractmethod
    def mean(self) -> float:
        """Expected value in hours."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one sample in hours."""

    @abstractmethod
    def variance(self) -> float:
        """Variance in hours squared (phase-type fitting needs it)."""

    def cv_squared(self) -> float:
        """Squared coefficient of variation; 0 for a point mass."""
        mean = self.mean()
        if mean == 0.0:
            return 0.0
        return self.variance() / (mean * mean)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fields = ", ".join(
            f"{key}={value!r}" for key, value in sorted(vars(self).items())
        )
        return f"{type(self).__name__}({fields})"


class Exponential(Distribution):
    """Exponential sojourn; a semi-Markov chain of these is a CTMC."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ParameterError(f"exponential rate must be positive, got {rate}")
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        if mean <= 0:
            raise ParameterError(f"exponential mean must be positive, got {mean}")
        return cls(1.0 / mean)

    def mean(self) -> float:
        return 1.0 / self.rate

    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))


class Deterministic(Distribution):
    """Fixed-duration sojourn (e.g. a scripted reboot)."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ParameterError(
                f"deterministic duration must be non-negative, got {value}"
            )
        self.value = float(value)

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator) -> float:
        return self.value


class Uniform(Distribution):
    """Uniform sojourn on [low, high]."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ParameterError(
                f"uniform bounds must satisfy 0 <= low <= high, "
                f"got [{low}, {high}]"
            )
        self.low = float(low)
        self.high = float(high)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def variance(self) -> float:
        width = self.high - self.low
        return width * width / 12.0

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


class Weibull(Distribution):
    """Weibull sojourn; shape < 1 models infant mortality, > 1 wear-out."""

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise ParameterError(
                f"Weibull shape and scale must be positive, "
                f"got shape={shape}, scale={scale}"
            )
        self.shape = float(shape)
        self.scale = float(scale)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale * self.scale * (g2 - g1 * g1)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))


class Lognormal(Distribution):
    """Lognormal sojourn, the classic fit for manual repair times.

    Parameterized by the underlying normal's mu and sigma.
    """

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise ParameterError(f"lognormal sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "Lognormal":
        """Build from an arithmetic mean and coefficient of variation."""
        if mean <= 0 or cv <= 0:
            raise ParameterError(
                f"mean and cv must be positive, got mean={mean}, cv={cv}"
            )
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - 0.5 * sigma2
        return cls(mu, math.sqrt(sigma2))

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma * self.sigma)

    def variance(self) -> float:
        sigma2 = self.sigma * self.sigma
        return (math.exp(sigma2) - 1.0) * math.exp(2.0 * self.mu + sigma2)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))


class Erlang(Distribution):
    """Erlang-k sojourn (sum of k exponentials); CV = 1/sqrt(k)."""

    def __init__(self, k: int, rate: float) -> None:
        if k < 1 or int(k) != k:
            raise ParameterError(f"Erlang k must be a positive integer, got {k}")
        if rate <= 0:
            raise ParameterError(f"Erlang rate must be positive, got {rate}")
        self.k = int(k)
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean: float, k: int) -> "Erlang":
        if mean <= 0:
            raise ParameterError(f"Erlang mean must be positive, got {mean}")
        return cls(k, k / mean)

    def mean(self) -> float:
        return self.k / self.rate

    def variance(self) -> float:
        return self.k / (self.rate * self.rate)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.k, 1.0 / self.rate))
