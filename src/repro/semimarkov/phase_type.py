"""Phase-type expansion of semi-Markov processes.

RAScad's model solution ultimately rests on CTMCs; the classic way to
evaluate a *semi-Markov* model analytically is to approximate each
non-exponential sojourn by a **phase-type (PH) distribution** — a small
network of exponential stages — and expand the process into an ordinary
CTMC that every solver in :mod:`repro.markov` already handles.

Fitting is two-moment matching:

* ``cv^2 == 1`` — a single exponential stage (exact).
* ``cv^2 < 1`` — Tijms' mixture of Erlang(k-1) and Erlang(k) with a
  common stage rate, where ``1/k <= cv^2``; matches mean and variance
  exactly (a point mass is capped at ``max_stages`` Erlang stages).
* ``cv^2 > 1`` — a two-phase hyperexponential with balanced means;
  matches mean and variance exactly.

The expansion preserves reward structure (every stage inherits its
semi-Markov state's reward) and is *exact in steady state* — the ratio
formula depends only on the sojourn means, which PH fitting preserves —
while transient measures converge as the fit tightens.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ModelError, SolverError
from ..markov.chain import MarkovChain
from .distributions import Distribution
from .process import SemiMarkovProcess


@dataclass(frozen=True)
class PhaseBranch:
    """One branch of a PH fit: a linear chain of exponential stages.

    Entered with probability ``probability``; traverses ``stages``
    stages, each with rate ``rate``, then absorbs.
    """

    probability: float
    stages: int
    rate: float

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise SolverError(
                f"branch probability must lie in (0, 1], got "
                f"{self.probability}"
            )
        if self.stages < 1:
            raise SolverError(f"branch needs >= 1 stage, got {self.stages}")
        if self.rate <= 0:
            raise SolverError(f"stage rate must be positive, got {self.rate}")

    def mean(self) -> float:
        return self.stages / self.rate

    def second_moment(self) -> float:
        # E[X^2] of Erlang(stages, rate).
        return self.stages * (self.stages + 1) / (self.rate * self.rate)


@dataclass(frozen=True)
class PhaseTypeFit:
    """A fitted PH distribution: a probabilistic mixture of branches."""

    branches: Tuple[PhaseBranch, ...]

    def __post_init__(self) -> None:
        total = sum(branch.probability for branch in self.branches)
        if abs(total - 1.0) > 1e-9:
            raise SolverError(
                f"branch probabilities sum to {total:.12g}, expected 1"
            )

    def mean(self) -> float:
        return sum(b.probability * b.mean() for b in self.branches)

    def variance(self) -> float:
        second = sum(
            b.probability * b.second_moment() for b in self.branches
        )
        mean = self.mean()
        return second - mean * mean

    @property
    def total_stages(self) -> int:
        return sum(branch.stages for branch in self.branches)


def fit_phase_type(
    mean: float, cv_squared: float, max_stages: int = 64
) -> PhaseTypeFit:
    """Two-moment PH fit for a positive distribution.

    Args:
        mean: Target mean (hours).
        cv_squared: Target squared coefficient of variation.
        max_stages: Cap on Erlang length for very low variability; a
            point mass (``cv_squared == 0``) uses exactly this many
            stages, trading state space for sharpness.
    """
    if mean <= 0:
        raise SolverError(f"PH fitting needs a positive mean, got {mean}")
    if cv_squared < 0:
        raise SolverError(f"cv^2 must be non-negative, got {cv_squared}")
    if max_stages < 1:
        raise SolverError(f"max_stages must be >= 1, got {max_stages}")

    if abs(cv_squared - 1.0) < 1e-12:
        return PhaseTypeFit((PhaseBranch(1.0, 1, 1.0 / mean),))

    if cv_squared > 1.0:
        # Balanced-means hyperexponential H2.
        p1 = 0.5 * (1.0 + math.sqrt((cv_squared - 1.0) / (cv_squared + 1.0)))
        p2 = 1.0 - p1
        rate1 = 2.0 * p1 / mean
        rate2 = 2.0 * p2 / mean
        return PhaseTypeFit((
            PhaseBranch(p1, 1, rate1),
            PhaseBranch(p2, 1, rate2),
        ))

    # cv^2 < 1: Tijms' Erlang(k-1)/Erlang(k) mixture with common rate.
    if cv_squared < 1.0 / max_stages:
        # Too deterministic to match exactly within the stage budget:
        # use a plain Erlang(max_stages) preserving the mean.
        return PhaseTypeFit(
            (PhaseBranch(1.0, max_stages, max_stages / mean),)
        )
    k = max(2, math.ceil(1.0 / cv_squared))
    # Guard float edges so 1/k <= cv^2 <= 1/(k-1) holds.
    while k > 2 and cv_squared > 1.0 / (k - 1):
        k -= 1
    while cv_squared < 1.0 / k:
        k += 1
    q = (
        k * cv_squared
        - math.sqrt(k * (1.0 + cv_squared) - k * k * cv_squared)
    ) / (1.0 + cv_squared)
    q = min(max(q, 0.0), 1.0)
    rate = (k - q) / mean
    branches: List[PhaseBranch] = []
    if q > 0.0:
        branches.append(PhaseBranch(q, k - 1, rate))
    if q < 1.0:
        branches.append(PhaseBranch(1.0 - q, k, rate))
    return PhaseTypeFit(tuple(branches))


def fit_distribution(
    distribution: Distribution, max_stages: int = 64
) -> PhaseTypeFit:
    """PH fit matching a distribution's first two moments."""
    return fit_phase_type(
        distribution.mean(), distribution.cv_squared(), max_stages
    )


def expand_to_ctmc(
    process: SemiMarkovProcess,
    max_stages: int = 32,
    name: Optional[str] = None,
) -> MarkovChain:
    """Expand a semi-Markov process into a CTMC via PH sojourns.

    Every kernel entry ``(state, target, p, dist)`` becomes a PH stage
    chain; transitions *into* ``state`` split across its entries by
    their branch probabilities (the SMP picks destination on entry).
    Stage states are named ``State::arc<i>.b<j>.s<k>`` and inherit the
    state's reward; the first stage of the first branch of the first
    arc serves as the state's canonical entry alias.

    Absorbing semi-Markov states become absorbing CTMC states.
    """
    process.validate()

    chain = MarkovChain(name or f"{process.name}#ph")
    # entry_points[state] = [(probability, stage-state-name), ...]
    entry_points = {}

    # First pass: create all stage states.
    arc_layouts = {}
    for state_name in process.state_names:
        state = process.state(state_name)
        entries = process.kernel(state_name)
        if not entries:
            chain.add_state(
                state_name, reward=state.reward,
                meta={"smp_state": state_name, "kind": "absorbing"},
            )
            entry_points[state_name] = [(1.0, state_name)]
            continue
        entry_list = []
        layouts = []
        for arc_index, entry in enumerate(entries):
            fit = fit_distribution(entry.distribution, max_stages)
            branch_states = []
            for branch_index, branch in enumerate(fit.branches):
                stage_names = []
                for stage_index in range(branch.stages):
                    stage_name = (
                        f"{state_name}::arc{arc_index}"
                        f".b{branch_index}.s{stage_index}"
                    )
                    chain.add_state(
                        stage_name,
                        reward=state.reward,
                        meta={
                            "smp_state": state_name,
                            "kind": "stage",
                            "arc": arc_index,
                        },
                    )
                    stage_names.append(stage_name)
                branch_states.append((branch, stage_names))
                entry_list.append(
                    (entry.probability * branch.probability, stage_names[0])
                )
            layouts.append((entry, branch_states))
        entry_points[state_name] = entry_list
        arc_layouts[state_name] = layouts

    # Second pass: wire stage progressions and absorptions.
    for state_name, layouts in arc_layouts.items():
        for entry, branch_states in layouts:
            for branch, stage_names in branch_states:
                for a, b in zip(stage_names, stage_names[1:]):
                    chain.add_transition(a, b, branch.rate, label="stage")
                # Absorption: split across the *target* state's entries.
                last = stage_names[-1]
                for probability, target_entry in entry_points[entry.target]:
                    if probability <= 0.0:
                        continue
                    chain.add_transition(
                        last, target_entry, branch.rate * probability,
                        label=f"to {entry.target}",
                    )
    return chain


def smp_transient_availability(
    process: SemiMarkovProcess,
    t: float,
    max_stages: int = 32,
    start: Optional[str] = None,
) -> float:
    """Analytic point availability A(t) of a semi-Markov process.

    Expands to a CTMC and evaluates by uniformization.  Exact when all
    sojourns are exponential; otherwise a two-moment approximation that
    tightens as ``max_stages`` grows (for low-variance sojourns).
    """
    from ..markov.transient import transient_probabilities

    chain = expand_to_ctmc(process, max_stages=max_stages)
    start_state = start if start is not None else process.state_names[0]
    entries = _entry_distribution(chain, process, start_state, max_stages)
    import numpy as np

    p0 = np.zeros(chain.n_states)
    for probability, stage_name in entries:
        p0[chain.index(stage_name)] = probability
    probabilities = transient_probabilities(chain, t, p0=p0)
    rewards = chain.reward_vector()
    indicator = (rewards > 0).astype(float)
    return float(probabilities @ indicator)


def _entry_distribution(
    chain: MarkovChain,
    process: SemiMarkovProcess,
    state_name: str,
    max_stages: int = 32,
) -> List[Tuple[float, str]]:
    """The stage-level entry distribution for a semi-Markov state.

    ``max_stages`` must match the value the chain was expanded with so
    the refitted branch layout lines up with the generated stage names.
    """
    process.index(state_name)  # raises for unknown states
    entries = []
    kernel = process.kernel(state_name)
    if not kernel:
        return [(1.0, state_name)]
    for arc_index, entry in enumerate(kernel):
        fit = fit_distribution(entry.distribution, max_stages)
        for branch_index, branch in enumerate(fit.branches):
            stage_name = f"{state_name}::arc{arc_index}.b{branch_index}.s0"
            if stage_name in chain:
                entries.append(
                    (entry.probability * branch.probability, stage_name)
                )
    total = sum(p for p, _ in entries)
    if abs(total - 1.0) > 1e-6:
        raise ModelError(
            f"entry distribution for {state_name!r} sums to {total:.6g}"
        )
    return entries
