"""Analytic steady-state solution of semi-Markov processes.

Uses the classical ratio formula: with ``nu`` the stationary vector of
the embedded DTMC and ``m_i`` the mean sojourn in state i, the long-run
fraction of time in state i is ``nu_i m_i / sum_j nu_j m_j``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import ModelError, SolverError
from .process import SemiMarkovProcess


def embedded_dtmc_stationary(
    p: np.ndarray, tol: float = 1e-13
) -> np.ndarray:
    """Stationary vector of a DTMC transition matrix.

    Solved directly via ``nu (P - I) = 0`` with normalisation, falling
    back to least squares for defective inputs.
    """
    p = np.asarray(p, dtype=float)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        raise SolverError(f"transition matrix must be square, got {p.shape}")
    n = p.shape[0]
    row_sums = p.sum(axis=1)
    if (np.abs(row_sums - 1.0) > 1e-9).any():
        raise SolverError("DTMC rows do not sum to one")
    if (p < -1e-15).any():
        raise SolverError("DTMC has negative probabilities")
    if n == 1:
        return np.array([1.0])
    a = (p.T - np.eye(n)).copy()
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        nu = np.linalg.solve(a, b)
    except np.linalg.LinAlgError:
        nu, *_ = np.linalg.lstsq(a, b, rcond=None)
    nu = np.clip(nu, 0.0, None)
    total = nu.sum()
    if total <= 0 or not np.isfinite(total):
        raise SolverError("embedded DTMC stationary solve failed")
    return nu / total


def semi_markov_steady_state(process: SemiMarkovProcess) -> Dict[str, float]:
    """Long-run time fractions per state, keyed by state name."""
    process.validate()
    for name in process.state_names:
        if process.is_absorbing(name):
            raise ModelError(
                f"state {name!r} is absorbing; the steady state is "
                "degenerate — use simulate_time_to_failure instead"
            )
    nu = embedded_dtmc_stationary(process.embedded_matrix())
    sojourns = process.mean_sojourns()
    weights = nu * sojourns
    total = weights.sum()
    if total <= 0:
        raise SolverError(
            f"process {process.name!r} has zero total sojourn weight"
        )
    fractions = weights / total
    return dict(zip(process.state_names, fractions.tolist()))


def semi_markov_availability(process: SemiMarkovProcess) -> float:
    """Steady-state reward rate (availability for 0/1 rewards)."""
    fractions = semi_markov_steady_state(process)
    return sum(
        fractions[state.name] * state.reward for state in process
    )
