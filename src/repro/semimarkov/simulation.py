"""Monte Carlo evaluation of semi-Markov processes.

The transient behaviour of a general semi-Markov process has no closed
form, so GMB-style tools evaluate it by simulation.  The same machinery
doubles as an independent oracle for CTMCs (embed the chain with
:meth:`SemiMarkovProcess.from_markov_chain` and simulate), which the
validation benchmarks use as their "third tool".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ModelError, SolverError
from .process import SemiMarkovProcess


@dataclass(frozen=True)
class SimulationResult:
    """A Monte Carlo estimate with a normal-approximation confidence bound.

    Attributes:
        mean: Point estimate.
        half_width: Half-width of the two-sided confidence interval.
        confidence: Confidence level the half-width corresponds to.
        replications: Number of independent replications used.
    """

    mean: float
    half_width: float
    confidence: float
    replications: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the confidence interval."""
        return self.low <= value <= self.high


_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_for(confidence: float) -> float:
    try:
        return _Z_VALUES[confidence]
    except KeyError:
        raise SolverError(
            f"unsupported confidence level {confidence}; "
            f"choose one of {sorted(_Z_VALUES)}"
        ) from None


def _summarize(
    samples: np.ndarray, confidence: float
) -> SimulationResult:
    n = samples.size
    if n < 2:
        raise SolverError("at least two replications are required")
    mean = float(samples.mean())
    std_err = float(samples.std(ddof=1)) / math.sqrt(n)
    return SimulationResult(
        mean=mean,
        half_width=_z_for(confidence) * std_err,
        confidence=confidence,
        replications=n,
    )


def simulate_interval_availability(
    process: SemiMarkovProcess,
    horizon: float,
    replications: int = 200,
    start: Optional[str] = None,
    seed: Optional[int] = None,
    confidence: float = 0.95,
) -> SimulationResult:
    """Estimate expected fraction of ``(0, horizon)`` spent in up states."""
    process.validate()
    if horizon <= 0:
        raise SolverError(f"horizon must be positive, got {horizon}")
    rng = np.random.default_rng(seed)
    start_name = start if start is not None else process.state_names[0]
    process.index(start_name)  # raises for unknown names
    samples = np.empty(replications)
    for r in range(replications):
        samples[r] = _one_availability_run(process, horizon, start_name, rng)
    return _summarize(samples, confidence)


def _one_availability_run(
    process: SemiMarkovProcess,
    horizon: float,
    start: str,
    rng: np.random.Generator,
) -> float:
    clock = 0.0
    up_time = 0.0
    current = start
    while clock < horizon:
        entries = process.kernel(current)
        state = process.state(current)
        if not entries:
            # Absorbing: remain here until the horizon.
            if state.is_up:
                up_time += horizon - clock
            break
        entry = _draw_entry(entries, rng)
        sojourn = entry.distribution.sample(rng)
        occupied = min(sojourn, horizon - clock)
        if state.is_up:
            up_time += occupied * state.reward
        clock += sojourn
        current = entry.target
    return up_time / horizon


def simulate_time_to_failure(
    process: SemiMarkovProcess,
    replications: int = 200,
    start: Optional[str] = None,
    seed: Optional[int] = None,
    confidence: float = 0.95,
    max_transitions: int = 10_000_000,
) -> SimulationResult:
    """Estimate the mean time until the first entry into a down state."""
    process.validate()
    if not process.down_states():
        raise ModelError(
            f"process {process.name!r} has no down state; TTF is infinite"
        )
    rng = np.random.default_rng(seed)
    start_name = start if start is not None else process.state_names[0]
    if not process.state(start_name).is_up:
        raise ModelError(f"start state {start_name!r} is already down")
    samples = np.empty(replications)
    for r in range(replications):
        samples[r] = _one_ttf_run(process, start_name, rng, max_transitions)
    return _summarize(samples, confidence)


def _one_ttf_run(
    process: SemiMarkovProcess,
    start: str,
    rng: np.random.Generator,
    max_transitions: int,
) -> float:
    clock = 0.0
    current = start
    for _step in range(max_transitions):
        entries = process.kernel(current)
        if not entries:
            raise SolverError(
                f"trajectory absorbed in up state {current!r} before failure"
            )
        entry = _draw_entry(entries, rng)
        clock += entry.distribution.sample(rng)
        current = entry.target
        if not process.state(current).is_up:
            return clock
    raise SolverError(
        f"no failure within {max_transitions} transitions; "
        "the failure states may be practically unreachable"
    )


def _draw_entry(entries, rng: np.random.Generator):
    u = rng.random()
    cumulative = 0.0
    for entry in entries:
        cumulative += entry.probability
        if u <= cumulative:
            return entry
    return entries[-1]
