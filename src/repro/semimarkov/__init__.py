"""Semi-Markov process engine (the GMB semi-Markov substrate).

A semi-Markov process generalizes a CTMC by allowing arbitrarily
distributed sojourn times.  RAScad's GMB module exposes semi-Markov
modeling for RAS experts; this package provides the same capability:
kernel construction from (branch probability, sojourn distribution)
pairs, steady-state solution via the embedded DTMC, and Monte Carlo
transient evaluation.
"""

from .distributions import (
    Distribution,
    Exponential,
    Deterministic,
    Uniform,
    Weibull,
    Lognormal,
    Erlang,
)
from .process import SemiMarkovProcess, SemiMarkovState
from .steady_state import (
    embedded_dtmc_stationary,
    semi_markov_steady_state,
    semi_markov_availability,
)
from .simulation import (
    SimulationResult,
    simulate_interval_availability,
    simulate_time_to_failure,
)
from .phase_type import (
    PhaseBranch,
    PhaseTypeFit,
    fit_phase_type,
    fit_distribution,
    expand_to_ctmc,
    smp_transient_availability,
)

__all__ = [
    "Distribution",
    "Exponential",
    "Deterministic",
    "Uniform",
    "Weibull",
    "Lognormal",
    "Erlang",
    "SemiMarkovProcess",
    "SemiMarkovState",
    "embedded_dtmc_stationary",
    "semi_markov_steady_state",
    "semi_markov_availability",
    "SimulationResult",
    "simulate_interval_availability",
    "simulate_time_to_failure",
    "PhaseBranch",
    "PhaseTypeFit",
    "fit_phase_type",
    "fit_distribution",
    "expand_to_ctmc",
    "smp_transient_availability",
]
