"""Semi-Markov process representation.

The kernel is destination-dependent: each transition carries a branch
probability and a sojourn distribution, the most general discrete-state
semi-Markov form (GMB's semi-Markov chains map directly onto it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

import numpy as np

from ..errors import ModelError
from ..markov.chain import MarkovChain
from .distributions import Distribution, Exponential


@dataclass(frozen=True)
class SemiMarkovState:
    """A named semi-Markov state with a reward rate."""

    name: str
    reward: float = 1.0
    meta: Mapping[str, object] = field(default_factory=dict)

    @property
    def is_up(self) -> bool:
        return self.reward > 0.0


@dataclass(frozen=True)
class KernelEntry:
    """One kernel transition: go to ``target`` w.p. ``probability`` after a
    sojourn drawn from ``distribution``."""

    target: str
    probability: float
    distribution: Distribution


class SemiMarkovProcess:
    """A finite semi-Markov process with reward-annotated states."""

    def __init__(self, name: str = "smp") -> None:
        self.name = name
        self._states: Dict[str, SemiMarkovState] = {}
        self._order: List[str] = []
        self._kernel: Dict[str, List[KernelEntry]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_state(
        self,
        name: str,
        reward: float = 1.0,
        meta: Optional[Mapping[str, object]] = None,
    ) -> SemiMarkovState:
        if name in self._states:
            raise ModelError(f"duplicate state {name!r} in process {self.name!r}")
        if reward < 0:
            raise ModelError(f"state {name!r} has negative reward {reward}")
        state = SemiMarkovState(name=name, reward=reward, meta=dict(meta or {}))
        self._states[name] = state
        self._order.append(name)
        self._kernel[name] = []
        return state

    def add_transition(
        self,
        source: str,
        target: str,
        probability: float,
        distribution: Distribution,
    ) -> None:
        if source not in self._states:
            raise ModelError(f"unknown source state {source!r}")
        if target not in self._states:
            raise ModelError(f"unknown target state {target!r}")
        if not 0.0 <= probability <= 1.0:
            raise ModelError(
                f"branch probability must lie in [0, 1], got {probability}"
            )
        if probability == 0.0:
            return
        self._kernel[source].append(
            KernelEntry(target, float(probability), distribution)
        )

    @classmethod
    def from_markov_chain(cls, chain: MarkovChain) -> "SemiMarkovProcess":
        """Embed a CTMC as the equivalent semi-Markov process."""
        process = cls(f"{chain.name}#smp")
        for state in chain:
            process.add_state(state.name, reward=state.reward, meta=state.meta)
        for state in chain:
            exit_rate = chain.exit_rate(state.name)
            if exit_rate == 0.0:
                continue
            sojourn = Exponential(exit_rate)
            for transition in chain.transitions():
                if transition.source != state.name:
                    continue
                process.add_transition(
                    state.name,
                    transition.target,
                    transition.rate / exit_rate,
                    sojourn,
                )
        return process

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return len(self._order)

    @property
    def state_names(self) -> List[str]:
        return list(self._order)

    def __iter__(self) -> Iterator[SemiMarkovState]:
        return (self._states[name] for name in self._order)

    def state(self, name: str) -> SemiMarkovState:
        try:
            return self._states[name]
        except KeyError:
            raise ModelError(
                f"process {self.name!r} has no state {name!r}"
            ) from None

    def index(self, name: str) -> int:
        try:
            return self._order.index(name)
        except ValueError:
            raise ModelError(
                f"process {self.name!r} has no state {name!r}"
            ) from None

    def kernel(self, source: str) -> List[KernelEntry]:
        if source not in self._kernel:
            raise ModelError(f"process {self.name!r} has no state {source!r}")
        return list(self._kernel[source])

    def up_states(self) -> List[str]:
        return [name for name in self._order if self._states[name].is_up]

    def down_states(self) -> List[str]:
        return [name for name in self._order if not self._states[name].is_up]

    def is_absorbing(self, name: str) -> bool:
        return not self._kernel[name]

    def validate(self) -> None:
        """Check branch probabilities sum to one for non-absorbing states."""
        if not self._order:
            raise ModelError(f"process {self.name!r} has no states")
        for name in self._order:
            entries = self._kernel[name]
            if not entries:
                continue
            total = sum(entry.probability for entry in entries)
            if abs(total - 1.0) > 1e-9:
                raise ModelError(
                    f"branch probabilities out of state {name!r} sum to "
                    f"{total:.12g}, expected 1"
                )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def embedded_matrix(self) -> np.ndarray:
        """The embedded DTMC transition matrix (absorbing rows self-loop)."""
        n = self.n_states
        p = np.zeros((n, n))
        index = {name: i for i, name in enumerate(self._order)}
        for name in self._order:
            entries = self._kernel[name]
            if not entries:
                p[index[name], index[name]] = 1.0
                continue
            for entry in entries:
                p[index[name], index[entry.target]] += entry.probability
        return p

    def mean_sojourns(self) -> np.ndarray:
        """Expected holding time in each state (hours).

        Absorbing states get sojourn 0; they carry no steady-state weight
        through the ratio formula (and validated availability processes
        have none).
        """
        means = np.zeros(self.n_states)
        for i, name in enumerate(self._order):
            entries = self._kernel[name]
            means[i] = sum(
                entry.probability * entry.distribution.mean()
                for entry in entries
            )
        return means

    def reward_vector(self) -> np.ndarray:
        return np.array(
            [self._states[name].reward for name in self._order]
        )

    def __repr__(self) -> str:
        arcs = sum(len(entries) for entries in self._kernel.values())
        return (
            f"SemiMarkovProcess({self.name!r}, states={self.n_states}, "
            f"transitions={arcs})"
        )
