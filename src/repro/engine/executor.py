"""Batch execution: a process-pool fan-out with a serial fallback.

The engine's workloads — sweep points, Monte-Carlo samples, simulation
replications — are embarrassingly parallel batches of pure tasks.  This
module runs such a batch with

* ``jobs`` worker processes (``jobs=1`` runs inline, no pool, no
  pickling — the fallback used on single-core boxes and in tests);
* a per-task ``timeout`` (enforced in pool mode; a timed-out task is
  re-submitted, the stuck worker is left to finish in the background);
* bounded ``retries`` per task before the whole batch fails;
* crash recovery — a worker process dying (OOM kill, segfault) breaks
  the whole pool, so the runner rebuilds it, resubmits every
  unfinished task, and charges an attempt only to the task that was
  being collected; exhausted budgets surface as typed
  :class:`~repro.errors.EngineError`, never a raw pool exception;
* deterministic per-task seeding via :func:`repro.engine.keys.task_seed`
  — seeds depend only on ``(base seed, task index)``, never on which
  worker runs the task, so serial and parallel runs of a seeded batch
  produce identical numbers.

Task functions must be module-level (picklable) when ``jobs > 1``;
results always come back in task order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import EngineError
from ..obs.clock import Stopwatch
from ..obs.trace import (
    capture_spans,
    current_carrier,
    export_remote,
    get_tracer,
)
from .keys import task_seed
from .stats import StatsCollector

__all__ = ["run_batch", "seeded_tasks"]


def seeded_tasks(
    tasks: Sequence[Tuple],
    base_seed: Optional[int],
) -> List[Tuple]:
    """Append a deterministic per-task seed to every task tuple."""
    return [
        tuple(task) + (task_seed(base_seed, index),)
        for index, task in enumerate(tasks)
    ]


def _timed_call(
    fn: Callable,
    args: Tuple,
    carrier: Optional[Dict[str, object]] = None,
):
    """Run one task in a worker and report its execution time.

    With a trace ``carrier`` the call runs under
    :func:`repro.obs.trace.capture_spans`: every span the task finishes
    in this worker travels back with the result for the parent to
    re-export, parent links intact across the process boundary.
    """
    watch = Stopwatch()
    if carrier is None:
        result = fn(*args)
        return result, watch.elapsed, None
    with capture_spans(carrier) as spans:
        with get_tracer().span("engine.task"):
            result = fn(*args)
    return result, watch.elapsed, spans


def run_batch(
    fn: Callable,
    tasks: Sequence[Tuple],
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    stats: Optional[StatsCollector] = None,
) -> List:
    """Run ``fn(*task)`` for every task and return results in order.

    Args:
        fn: The task function; module-level when ``jobs > 1``.
        tasks: Argument tuples, one per task.
        jobs: Worker processes; 1 executes inline (serial fallback).
        timeout: Per-attempt wall-clock limit in seconds (pool mode
            only; inline execution cannot be pre-empted).
        retries: Additional attempts allowed per task after its first
            failure or timeout.
        stats: Optional collector for submitted/completed/retried/
            failed counters and busy time.

    Raises:
        EngineError: When any task still fails after all retries.
    """
    if jobs < 1:
        raise EngineError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise EngineError(f"retries must be >= 0, got {retries}")
    stats = stats or StatsCollector()
    stats.set_jobs(jobs)
    tasks = list(tasks)
    stats.increment("tasks_submitted", len(tasks))
    if not tasks:
        return []
    with get_tracer().span("engine.batch", tasks=len(tasks), jobs=jobs):
        if jobs == 1:
            return _run_serial(fn, tasks, retries, stats)
        return _run_pool(fn, tasks, jobs, timeout, retries, stats)


def _run_serial(
    fn: Callable,
    tasks: List[Tuple],
    retries: int,
    stats: StatsCollector,
) -> List:
    results = []
    for index, task in enumerate(tasks):
        for attempt in range(retries + 1):
            watch = Stopwatch()
            try:
                result = fn(*task)
            except Exception as error:
                stats.add_busy(watch.elapsed)
                if attempt < retries:
                    stats.increment("tasks_retried")
                    continue
                stats.increment("tasks_failed")
                raise EngineError(
                    f"task {index} failed after {attempt + 1} attempt(s): "
                    f"{error}"
                ) from error
            stats.add_busy(watch.elapsed)
            results.append(result)
            stats.increment("tasks_completed")
            break
    return results


def _run_pool(
    fn: Callable,
    tasks: List[Tuple],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    stats: StatsCollector,
) -> List:
    results: List = [None] * len(tasks)
    attempts = [0] * len(tasks)
    pool = ProcessPoolExecutor(max_workers=jobs)
    pending: "dict" = {}
    # Snapshot the active span once; every task ships the same carrier
    # so worker-side spans link back to this batch.  None when tracing
    # is off — workers then skip the capture machinery entirely.
    carrier = current_carrier()

    def submit(index: int) -> None:
        pending[pool.submit(_timed_call, fn, tasks[index], carrier)] = index

    try:
        for index in range(len(tasks)):
            submit(index)
        while pending:
            # Collect in submission order; .result() blocks with the
            # per-task timeout, so a hung worker surfaces as a retry
            # instead of wedging the whole batch.
            future, index = next(iter(pending.items()))
            del pending[future]
            try:
                result, busy, spans = future.result(timeout=timeout)
            except BrokenProcessPool as error:
                # A worker died (OOM kill, SIGKILL, segfault).  The
                # whole pool is unusable: every sibling future fails
                # with the same error through no fault of its own, so
                # only the observed task spends an attempt.  Rebuild
                # the pool and resubmit everything unfinished.
                attempts[index] += 1
                stats.increment("pool_breaks")
                pool.shutdown(wait=False)
                pool = ProcessPoolExecutor(max_workers=jobs)
                if attempts[index] > retries:
                    stats.increment("tasks_failed")
                    raise EngineError(
                        f"task {index} crashed the worker pool after "
                        f"{attempts[index]} attempt(s): {error}"
                    ) from error
                stats.increment("tasks_retried")
                outstanding = [index] + sorted(pending.values())
                pending.clear()
                for open_index in outstanding:
                    submit(open_index)
                continue
            except (Exception, FutureTimeoutError) as error:
                future.cancel()
                attempts[index] += 1
                if attempts[index] <= retries:
                    stats.increment("tasks_retried")
                    submit(index)
                    continue
                stats.increment("tasks_failed")
                for open_future in pending:
                    open_future.cancel()
                kind = (
                    "timed out"
                    if isinstance(error, FutureTimeoutError)
                    else "failed"
                )
                raise EngineError(
                    f"task {index} {kind} after {attempts[index]} "
                    f"attempt(s): {error}"
                ) from error
            results[index] = result
            stats.add_busy(busy)
            stats.increment("tasks_completed")
            if spans:
                export_remote(
                    spans,
                    sampled=bool(carrier.get("sampled", True))
                    if carrier
                    else True,
                )
    except BaseException:
        # Abandon the pool without joining: a worker stuck in a
        # timed-out task must not wedge the error path too.
        pool.shutdown(wait=False)
        raise
    pool.shutdown(wait=True)
    return results
