"""Canonical content hashing for models, parameters and chains.

The evaluation engine keys its caches by a *content digest*: a SHA-256
over a canonical JSON encoding of the object.  Canonical means

* mapping keys are emitted sorted, so the digest is independent of the
  order an engineering spec happens to list its fields in;
* every field is included with its actual value (defaults too), so a
  spec that spells a default out and one that omits it digest equal —
  exactly the invariance :func:`repro.spec.writer.model_to_spec`
  round-trips rely on;
* floats are encoded via ``repr``, which is exact for IEEE doubles, so
  two parameters digest equal iff they solve bit-identically;
* pure annotations (``description``, ``part_number``) are excluded —
  they never reach the chain generator, so structurally identical
  blocks share one key regardless of labeling.

Digests are stable within a repository revision; they are *not*
promised stable across releases (the disk cache embeds a format
version for that reason).
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, List, Optional, Union

from ..ident import content_digest, digest_int64

from ..core.block import DiagramBlockModel, MGBlock, MGDiagram
from ..core.parameters import BlockParameters, GlobalParameters, Scenario
from ..errors import EngineError
from ..markov.chain import MarkovChain
from ..num import SolverOptions, as_options

#: Annotation-only BlockParameters fields that never affect a solve.
_ANNOTATION_FIELDS = frozenset({"description", "part_number"})


def _scalar(value: object) -> object:
    """A JSON-safe, canonical encoding of one field value."""
    if isinstance(value, Scenario):
        return value.value
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        # repr() round-trips doubles exactly; format via it so 1.0 and
        # 1 digest differently from each other but identically to
        # themselves across runs.
        return f"f:{value!r}"
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return value
    raise EngineError(
        f"cannot canonicalize field value of type {type(value).__name__}"
    )


def _dataclass_payload(instance: object, skip: frozenset = frozenset()):
    return {
        f.name: _scalar(getattr(instance, f.name))
        for f in fields(instance)
        if f.name not in skip
    }


def canonical_payload(obj: object) -> Dict[str, object]:
    """The canonical nested structure an object digests from.

    Exposed for tests and debugging; most callers want the digest
    helpers below.
    """
    if isinstance(obj, BlockParameters):
        return {
            "kind": "block_parameters",
            "fields": _dataclass_payload(obj, _ANNOTATION_FIELDS),
        }
    if isinstance(obj, GlobalParameters):
        return {
            "kind": "global_parameters",
            "fields": _dataclass_payload(obj),
        }
    if isinstance(obj, MGBlock):
        payload: Dict[str, object] = {
            "kind": "block",
            "parameters": canonical_payload(obj.parameters),
        }
        if obj.subdiagram is not None:
            payload["subdiagram"] = canonical_payload(obj.subdiagram)
        return payload
    if isinstance(obj, MGDiagram):
        return {
            "kind": "diagram",
            "name": obj.name,
            "blocks": [canonical_payload(block) for block in obj],
        }
    if isinstance(obj, DiagramBlockModel):
        return {
            "kind": "model",
            "name": obj.name,
            "globals": canonical_payload(obj.global_parameters),
            "root": canonical_payload(obj.root),
        }
    if isinstance(obj, MarkovChain):
        return {
            "kind": "chain",
            "name": obj.name,
            "states": [
                {
                    "name": state.name,
                    "reward": _scalar(float(state.reward)),
                }
                for state in obj
            ],
            "transitions": sorted(
                [t.source, t.target, _scalar(float(t.rate))]
                for t in obj.transitions()
            ),
        }
    raise EngineError(
        f"cannot canonicalize object of type {type(obj).__name__}"
    )


def _digest(payload: Dict[str, object], context: List[object]) -> str:
    return content_digest({"payload": payload, "context": context})


def method_token(method: Union[str, SolverOptions]) -> str:
    """The canonical solver-options token digested into cache keys.

    Legacy method strings and full :class:`~repro.num.SolverOptions`
    values canonicalise to the same token space, so ``"direct"`` and
    ``SolverOptions()`` share cached results while distinct backends
    (or tolerances) can never alias each other.
    """
    return as_options(method).cache_token()


def block_digest(
    effective: BlockParameters,
    global_parameters: GlobalParameters,
    method: Union[str, SolverOptions] = "direct",
) -> str:
    """Cache key for one block-chain solve.

    Two calls share a key exactly when :func:`repro.core.translator.
    solve_block_chain` would return bit-identical results for them.
    """
    return _digest(
        canonical_payload(effective),
        [canonical_payload(global_parameters), method_token(method)],
    )


def model_digest(
    model: DiagramBlockModel, method: Union[str, SolverOptions] = "direct"
) -> str:
    """Cache key for a whole-model solve (``translate``)."""
    return _digest(canonical_payload(model), [method_token(method)])


def chain_digest(
    chain: MarkovChain, method: Union[str, SolverOptions] = "direct"
) -> str:
    """Cache key for a raw CTMC steady-state solve (GMB/library chains)."""
    return _digest(canonical_payload(chain), [method_token(method)])


def task_seed(base_seed: Optional[int], index: int) -> Optional[int]:
    """Deterministic per-task seed derived from a base seed.

    The derivation hashes ``(base, index)`` so neighbouring tasks get
    statistically independent streams and the assignment is identical
    no matter how tasks are distributed over workers — the property
    that makes serial and parallel runs produce the same numbers.
    ``None`` stays ``None`` (explicitly unseeded runs stay unseeded).
    """
    if base_seed is None:
        return None
    return digest_int64(f"rascad-task:{int(base_seed)}:{int(index)}")
