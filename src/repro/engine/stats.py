"""Engine instrumentation: counters, timings, and the ``rascad stats`` view.

Every :class:`repro.engine.Engine` owns a :class:`StatsCollector`.  The
hot paths record into it (cheap, lock-guarded increments); callers take
an immutable :class:`EngineStats` snapshot whenever they want numbers —
after a sweep, at CLI exit, or inside a benchmark.  CLI runs persist
their final snapshot as JSON next to the disk cache so a later
``rascad stats`` invocation can show what the last batch did.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

#: File name of the persisted last-run snapshot inside a cache dir.
STATS_FILENAME = "stats.json"


@dataclass(frozen=True)
class EngineStats:
    """An immutable snapshot of one engine's activity.

    Attributes:
        system_solves: Whole-model solves actually computed.
        system_cache_hits: Whole-model solves answered from cache.
        block_solves: Block-chain solves actually computed.
        block_cache_hits: Block-chain solves answered from cache
            (memory or disk).
        disk_hits: The subset of ``block_cache_hits`` served by the
            persistent layer.
        tasks_submitted: Tasks handed to the batch executor.
        tasks_completed: Tasks that returned a result.
        tasks_retried: Re-submissions after a failure or timeout.
        tasks_failed: Tasks abandoned after exhausting retries.
        jobs: Worker count of the executor runs recorded (last wins).
        busy_seconds: Summed per-task execution time.
        stage_seconds: Wall time per named stage (``solve``, ``sweep``,
            ``uncertainty``, ``simulate``, ...).
    """

    system_solves: int = 0
    system_cache_hits: int = 0
    block_solves: int = 0
    block_cache_hits: int = 0
    disk_hits: int = 0
    tasks_submitted: int = 0
    tasks_completed: int = 0
    tasks_retried: int = 0
    tasks_failed: int = 0
    jobs: int = 1
    busy_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def block_lookups(self) -> int:
        """Total block-solve requests (hits + computed)."""
        return self.block_cache_hits + self.block_solves

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of block-solve requests served from cache."""
        lookups = self.block_lookups
        if lookups == 0:
            return 0.0
        return self.block_cache_hits / lookups

    @property
    def wall_seconds(self) -> float:
        """Total wall time across all recorded stages."""
        return sum(self.stage_seconds.values())

    @property
    def worker_utilization(self) -> float:
        """Busy time as a fraction of ``jobs * wall`` capacity."""
        capacity = self.jobs * self.wall_seconds
        if capacity <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)

    def to_dict(self) -> Dict[str, object]:
        return {
            "system_solves": self.system_solves,
            "system_cache_hits": self.system_cache_hits,
            "block_solves": self.block_solves,
            "block_cache_hits": self.block_cache_hits,
            "disk_hits": self.disk_hits,
            "tasks_submitted": self.tasks_submitted,
            "tasks_completed": self.tasks_completed,
            "tasks_retried": self.tasks_retried,
            "tasks_failed": self.tasks_failed,
            "jobs": self.jobs,
            "busy_seconds": self.busy_seconds,
            "stage_seconds": dict(self.stage_seconds),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EngineStats":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C401
        return cls(**{k: v for k, v in payload.items() if k in known})

    def format(self) -> str:
        """The human-readable block the ``rascad stats`` command prints."""
        lines = [
            f"system solves        : {self.system_solves} computed, "
            f"{self.system_cache_hits} cached",
            f"block solves         : {self.block_solves} computed, "
            f"{self.block_cache_hits} cached "
            f"({self.disk_hits} from disk)",
            f"block cache hit rate : {self.cache_hit_rate:.1%} "
            f"of {self.block_lookups} lookups",
            f"executor             : {self.tasks_completed}/"
            f"{self.tasks_submitted} tasks ok, "
            f"{self.tasks_retried} retried, {self.tasks_failed} failed "
            f"(jobs={self.jobs})",
            f"worker utilization   : {self.worker_utilization:.1%} "
            f"({self.busy_seconds:.3f}s busy / "
            f"{self.wall_seconds:.3f}s wall)",
        ]
        for stage in sorted(self.stage_seconds):
            lines.append(
                f"stage {stage:<15}: {self.stage_seconds[stage]:.3f}s"
            )
        return "\n".join(lines)


class StatsCollector:
    """Thread-safe accumulator behind :class:`EngineStats` snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._stage_seconds: Dict[str, float] = {}
        self._busy_seconds = 0.0
        self._jobs = 1

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def add_busy(self, seconds: float) -> None:
        with self._lock:
            self._busy_seconds += seconds

    def set_jobs(self, jobs: int) -> None:
        with self._lock:
            self._jobs = max(1, int(jobs))

    def add_stage_time(self, stage: str, seconds: float) -> None:
        with self._lock:
            self._stage_seconds[stage] = (
                self._stage_seconds.get(stage, 0.0) + seconds
            )

    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Attribute the wall time of a ``with`` body to ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_stage_time(stage, time.perf_counter() - start)

    def snapshot(self) -> EngineStats:
        with self._lock:
            return EngineStats(
                system_solves=self._counters.get("system_solves", 0),
                system_cache_hits=self._counters.get("system_cache_hits", 0),
                block_solves=self._counters.get("block_solves", 0),
                block_cache_hits=self._counters.get("block_cache_hits", 0),
                disk_hits=self._counters.get("disk_hits", 0),
                tasks_submitted=self._counters.get("tasks_submitted", 0),
                tasks_completed=self._counters.get("tasks_completed", 0),
                tasks_retried=self._counters.get("tasks_retried", 0),
                tasks_failed=self._counters.get("tasks_failed", 0),
                jobs=self._jobs,
                busy_seconds=self._busy_seconds,
                stage_seconds=dict(self._stage_seconds),
            )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._stage_seconds.clear()
            self._busy_seconds = 0.0
            self._jobs = 1


def save_stats(stats: EngineStats, directory: Union[str, Path]) -> Path:
    """Persist a snapshot as ``stats.json`` under ``directory``."""
    directory = Path(directory).expanduser()
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / STATS_FILENAME
    target.write_text(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
    return target


def load_stats(directory: Union[str, Path]) -> Optional[EngineStats]:
    """Load the last persisted snapshot, or None when there is none."""
    target = Path(directory).expanduser() / STATS_FILENAME
    try:
        payload = json.loads(target.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return EngineStats.from_dict(payload)
