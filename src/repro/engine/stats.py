"""Engine instrumentation: counters, timings, and the ``rascad stats`` view.

Every :class:`repro.engine.Engine` owns a :class:`StatsCollector`.  The
hot paths record into it (cheap, lock-guarded increments); callers take
an immutable :class:`EngineStats` snapshot whenever they want numbers —
after a sweep, at CLI exit, or inside a benchmark.  CLI runs persist
their final snapshot as JSON next to the disk cache so a later
``rascad stats`` invocation can show what the last batch did.

The collector also carries the serving-layer telemetry behind the
service's ``GET /metrics`` endpoint: gauges (queue depth, in-flight
requests), per-route request counters, and per-route latency as
fixed-bucket mergeable histograms
(:class:`~repro.obs.histogram.Histogram` — rendered as native
Prometheus ``_bucket``/``_sum``/``_count`` series).
:func:`metrics_payload` is the one serialization both
``rascad stats --json`` and the HTTP endpoint emit, so the two views
can never drift apart.
"""

from __future__ import annotations

import json
import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from ..obs.clock import Stopwatch
from ..obs.histogram import Histogram
from ..store import atomic_write_json

#: File name of the persisted last-run snapshot inside a cache dir.
STATS_FILENAME = "stats.json"

#: Counter names promoted to named :class:`EngineStats` fields; every
#: other counter lands in the generic ``counters`` mapping.
_NAMED_COUNTERS = (
    "system_solves",
    "system_cache_hits",
    "block_solves",
    "block_cache_hits",
    "disk_hits",
    "tasks_submitted",
    "tasks_completed",
    "tasks_retried",
    "tasks_failed",
)


@dataclass(frozen=True)
class EngineStats:
    """An immutable snapshot of one engine's activity.

    Attributes:
        system_solves: Whole-model solves actually computed.
        system_cache_hits: Whole-model solves answered from cache.
        block_solves: Block-chain solves actually computed.
        block_cache_hits: Block-chain solves answered from cache
            (memory or disk).
        disk_hits: The subset of ``block_cache_hits`` served by the
            persistent layer.
        tasks_submitted: Tasks handed to the batch executor.
        tasks_completed: Tasks that returned a result.
        tasks_retried: Re-submissions after a failure or timeout.
        tasks_failed: Tasks abandoned after exhausting retries.
        jobs: Worker count of the executor runs recorded (last wins).
        busy_seconds: Summed per-task execution time.
        stage_seconds: Wall time per named stage (``solve``, ``sweep``,
            ``uncertainty``, ``simulate``, ...).
        counters: Every other counter recorded on the collector (the
            service layer's admissions, dedup hits, rejections, ...).
        gauges: Point-in-time values (queue depth, in-flight requests).
        route_counts: Requests per ``"METHOD /path status"`` key.
        latency: Per-route latency histograms in the serialized shape
            of :meth:`repro.obs.histogram.Histogram.to_dict` —
            cumulative ``le``-keyed bucket counts plus ``sum`` and
            ``count``, all durations in seconds.
    """

    system_solves: int = 0
    system_cache_hits: int = 0
    block_solves: int = 0
    block_cache_hits: int = 0
    disk_hits: int = 0
    tasks_submitted: int = 0
    tasks_completed: int = 0
    tasks_retried: int = 0
    tasks_failed: int = 0
    jobs: int = 1
    busy_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    route_counts: Dict[str, int] = field(default_factory=dict)
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def block_lookups(self) -> int:
        """Total block-solve requests (hits + computed)."""
        return self.block_cache_hits + self.block_solves

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of block-solve requests served from cache."""
        lookups = self.block_lookups
        if lookups == 0:
            return 0.0
        return self.block_cache_hits / lookups

    @property
    def wall_seconds(self) -> float:
        """Total wall time across all recorded stages."""
        return sum(self.stage_seconds.values())

    @property
    def worker_utilization(self) -> float:
        """Busy time as a fraction of ``jobs * wall`` capacity."""
        capacity = self.jobs * self.wall_seconds
        if capacity <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)

    def to_dict(self) -> Dict[str, object]:
        return {
            "system_solves": self.system_solves,
            "system_cache_hits": self.system_cache_hits,
            "block_solves": self.block_solves,
            "block_cache_hits": self.block_cache_hits,
            "disk_hits": self.disk_hits,
            "tasks_submitted": self.tasks_submitted,
            "tasks_completed": self.tasks_completed,
            "tasks_retried": self.tasks_retried,
            "tasks_failed": self.tasks_failed,
            "jobs": self.jobs,
            "busy_seconds": self.busy_seconds,
            "stage_seconds": dict(self.stage_seconds),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "route_counts": dict(self.route_counts),
            "latency": {
                route: dict(summary)
                for route, summary in self.latency.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EngineStats":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C401
        return cls(**{k: v for k, v in payload.items() if k in known})

    def format(self) -> str:
        """The human-readable block the ``rascad stats`` command prints."""
        lines = [
            f"system solves        : {self.system_solves} computed, "
            f"{self.system_cache_hits} cached",
            f"block solves         : {self.block_solves} computed, "
            f"{self.block_cache_hits} cached "
            f"({self.disk_hits} from disk)",
            f"block cache hit rate : {self.cache_hit_rate:.1%} "
            f"of {self.block_lookups} lookups",
            f"executor             : {self.tasks_completed}/"
            f"{self.tasks_submitted} tasks ok, "
            f"{self.tasks_retried} retried, {self.tasks_failed} failed "
            f"(jobs={self.jobs})",
            f"worker utilization   : {self.worker_utilization:.1%} "
            f"({self.busy_seconds:.3f}s busy / "
            f"{self.wall_seconds:.3f}s wall)",
        ]
        for stage in sorted(self.stage_seconds):
            lines.append(
                f"stage {stage:<15}: {self.stage_seconds[stage]:.3f}s"
            )
        for name in sorted(self.counters):
            lines.append(f"{name:<21}: {self.counters[name]}")
        for name in sorted(self.gauges):
            lines.append(f"{name:<21}: {self.gauges[name]:g}")
        for key in sorted(self.route_counts):
            lines.append(f"route {key:<15}: {self.route_counts[key]}")
        for route in sorted(self.latency):
            summary = self.latency[route]
            if isinstance(summary, dict) and "buckets" in summary:
                try:
                    histogram = Histogram.from_dict(summary)
                except (ValueError, TypeError):
                    continue
                p50, p95, p99 = (
                    histogram.quantile(0.50),
                    histogram.quantile(0.95),
                    histogram.quantile(0.99),
                )
                count = histogram.count
            else:
                # A stats.json persisted before histograms existed.
                p50 = summary.get("p50", 0.0)
                p95 = summary.get("p95", 0.0)
                p99 = summary.get("p99", 0.0)
                count = summary.get("count", 0)
            lines.append(
                f"latency {route}: "
                f"p50={p50 * 1000:.1f}ms "
                f"p95={p95 * 1000:.1f}ms "
                f"p99={p99 * 1000:.1f}ms "
                f"({count:.0f} samples)"
            )
        return "\n".join(lines)


def _percentile(ordered: "list[float]", q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize_latencies(samples: "list[float]") -> Dict[str, float]:
    """Exact quantile summary of a raw sample list.

    ``/metrics`` latency now flows through
    :class:`~repro.obs.histogram.Histogram`; this helper remains for
    ad-hoc analysis of raw sample lists (benchmarks, tests).
    """
    if not samples:
        return {"count": 0.0}
    ordered = sorted(samples)
    return {
        "count": float(len(ordered)),
        "mean": sum(ordered) / len(ordered),
        "p50": _percentile(ordered, 50.0),
        "p95": _percentile(ordered, 95.0),
        "p99": _percentile(ordered, 99.0),
        "max": ordered[-1],
    }


class StatsCollector:
    """Thread-safe accumulator behind :class:`EngineStats` snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._stage_seconds: Dict[str, float] = {}
        self._busy_seconds = 0.0
        self._jobs = 1
        self._gauges: Dict[str, float] = {}
        self._route_counts: Dict[str, int] = {}
        self._latencies: Dict[str, Histogram] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value (queue depth, in-flight, ...)."""
        with self._lock:
            self._gauges[name] = float(value)

    def record_backend_solve(self, backend: str, n_states: int) -> None:
        """Count one computed solve against its numerical backend.

        Maintains the ``solves_by_backend.<name>`` counters and the
        high-water ``largest_n_states`` gauge surfaced by
        ``rascad stats`` and ``GET /metrics``.
        """
        with self._lock:
            key = f"solves_by_backend.{backend}"
            self._counters[key] = self._counters.get(key, 0) + 1
            if float(n_states) > self._gauges.get("largest_n_states", 0.0):
                self._gauges["largest_n_states"] = float(n_states)

    def record_request(self, route: str, status: int) -> None:
        """Count one served request under ``"<route> <status>"``."""
        key = f"{route} {status}"
        with self._lock:
            self._route_counts[key] = self._route_counts.get(key, 0) + 1

    def record_latency(self, route: str, seconds: float) -> None:
        """Add one latency sample to the route's histogram."""
        with self._lock:
            histogram = self._latencies.get(route)
            if histogram is None:
                histogram = Histogram()
                self._latencies[route] = histogram
            histogram.observe(float(seconds))

    def add_busy(self, seconds: float) -> None:
        with self._lock:
            self._busy_seconds += seconds

    def set_jobs(self, jobs: int) -> None:
        with self._lock:
            self._jobs = max(1, int(jobs))

    def add_stage_time(self, stage: str, seconds: float) -> None:
        with self._lock:
            self._stage_seconds[stage] = (
                self._stage_seconds.get(stage, 0.0) + seconds
            )

    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Attribute the wall time of a ``with`` body to ``stage``."""
        watch = Stopwatch()
        try:
            yield
        finally:
            self.add_stage_time(stage, watch.elapsed)

    def snapshot(self) -> EngineStats:
        with self._lock:
            return EngineStats(
                system_solves=self._counters.get("system_solves", 0),
                system_cache_hits=self._counters.get("system_cache_hits", 0),
                block_solves=self._counters.get("block_solves", 0),
                block_cache_hits=self._counters.get("block_cache_hits", 0),
                disk_hits=self._counters.get("disk_hits", 0),
                tasks_submitted=self._counters.get("tasks_submitted", 0),
                tasks_completed=self._counters.get("tasks_completed", 0),
                tasks_retried=self._counters.get("tasks_retried", 0),
                tasks_failed=self._counters.get("tasks_failed", 0),
                jobs=self._jobs,
                busy_seconds=self._busy_seconds,
                stage_seconds=dict(self._stage_seconds),
                counters={
                    name: value
                    for name, value in self._counters.items()
                    if name not in _NAMED_COUNTERS
                },
                gauges=dict(self._gauges),
                route_counts=dict(self._route_counts),
                latency={
                    route: histogram.to_dict()
                    for route, histogram in self._latencies.items()
                },
            )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._stage_seconds.clear()
            self._busy_seconds = 0.0
            self._jobs = 1
            self._gauges.clear()
            self._route_counts.clear()
            self._latencies.clear()


def save_stats(stats: EngineStats, directory: Union[str, Path]) -> Path:
    """Persist a snapshot as ``stats.json`` under ``directory``.

    The write is atomic (temp file + rename, the same discipline the
    disk cache uses), so a reader — or a process killed mid-write —
    never observes a truncated snapshot.
    """
    directory = Path(directory).expanduser()
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / STATS_FILENAME
    atomic_write_json(target, stats.to_dict(), indent=2, prefix=".stats-")
    return target


def load_stats(directory: Union[str, Path]) -> Optional[EngineStats]:
    """Load the last persisted snapshot, or None when there is none."""
    target = Path(directory).expanduser() / STATS_FILENAME
    try:
        payload = json.loads(target.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return EngineStats.from_dict(payload)


def metrics_payload(
    stats: Optional[EngineStats],
    disk_usage: Optional[Tuple[int, int]] = None,
    service: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The machine-readable metrics document.

    One serialization shared by ``rascad stats --json`` and the
    service's ``GET /metrics``: engine counters, derived rates, the
    persistent cache's footprint, and (on the service) the serving
    section.

    Args:
        stats: The snapshot to report; ``None`` yields ``engine: null``
            (a ``rascad stats --json`` run before any engine run).
        disk_usage: ``(entries, bytes)`` of the persistent cache.
        service: Serving-layer extras (uptime, queue depth, ...).
    """
    payload: Dict[str, object] = {
        "engine": stats.to_dict() if stats is not None else None,
    }
    if stats is not None:
        payload["derived"] = {
            "cache_hit_rate": stats.cache_hit_rate,
            "block_lookups": stats.block_lookups,
            "wall_seconds": stats.wall_seconds,
            "worker_utilization": stats.worker_utilization,
        }
        prefix = "solves_by_backend."
        payload["solvers"] = {
            "solves_by_backend": {
                name[len(prefix):]: count
                for name, count in sorted(stats.counters.items())
                if name.startswith(prefix)
            },
            "largest_n_states": int(
                stats.gauges.get("largest_n_states", 0.0)
            ),
        }
    if disk_usage is not None:
        entries, size = disk_usage
        payload["cache"] = {"disk_entries": entries, "disk_bytes": size}
    if service is not None:
        payload["service"] = dict(service)
    return payload
