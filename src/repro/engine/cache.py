"""The solve cache: an in-memory LRU with an optional persistent layer.

Two namespaces share one cache object:

* **block** entries hold :class:`repro.core.ChainSolve` results — the
  expensive, context-free per-block solves.  These are what make sweep
  points cheap: every sweep variant shares all unchanged blocks.
* **system** entries hold whole-model :class:`SystemSolution` objects,
  so a repeated ``solve`` of a byte-identical spec is free.

Block entries can additionally persist to disk (``~/.cache/rascad`` or
an explicit ``cache_dir``) as pickle files named by their content
digest, giving cold *processes* warm starts.  Entries are written
atomically and validated on load; anything unreadable or from another
cache format version is treated as a miss and deleted.  Cached objects
are shared between callers and must be treated as immutable.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from pathlib import Path
from threading import Lock
from typing import Iterator, Optional, Tuple, Union

from ..store import atomic_write_bytes

#: Bumped whenever the pickled payload layout changes; mismatched disk
#: entries are silently discarded.
CACHE_FORMAT_VERSION = 2

#: Default persistent-cache location (override per-engine or with the
#: ``RASCAD_CACHE_DIR`` environment variable).
def default_cache_dir() -> Path:
    """The persistent cache location (``RASCAD_CACHE_DIR`` overrides)."""
    override = os.environ.get("RASCAD_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "rascad"


class _LRU:
    """A small thread-safe LRU mapping (digest -> object)."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = Lock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()

    def get(self, key: str) -> Optional[object]:
        with self._lock:
            try:
                value = self._entries.pop(key)
            except KeyError:
                return None
            self._entries[key] = value  # re-insert as most recent
            return value

    def put(self, key: str, value: object) -> None:
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def pop(self, key: str) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._entries))


class SolveCache:
    """Block- and system-level solve cache with optional persistence.

    Args:
        max_block_entries: LRU capacity for per-block chain solves.
        max_system_entries: LRU capacity for whole-model solutions
            (solutions hold full chain hierarchies, so keep this small).
        cache_dir: Directory for the persistent block layer; ``None``
            keeps the cache memory-only.
    """

    def __init__(
        self,
        max_block_entries: int = 4096,
        max_system_entries: int = 64,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self._blocks = _LRU(max_block_entries)
        self._systems = _LRU(max_system_entries)
        self.cache_dir = (
            Path(cache_dir).expanduser() if cache_dir is not None else None
        )

    # ------------------------------------------------------------------
    # block namespace (memory + disk)
    # ------------------------------------------------------------------
    def get_block(self, key: str) -> Tuple[Optional[object], str]:
        """Look up a block solve; returns ``(value, layer)``.

        ``layer`` is ``"memory"``, ``"disk"`` or ``"miss"`` so the
        engine can attribute hits in its stats.
        """
        value = self._blocks.get(key)
        if value is not None:
            return value, "memory"
        value = self._disk_read(key)
        if value is not None:
            self._blocks.put(key, value)  # promote for next time
            return value, "disk"
        return None, "miss"

    def put_block(self, key: str, value: object) -> None:
        self._blocks.put(key, value)
        self._disk_write(key, value)

    # ------------------------------------------------------------------
    # system namespace (memory only)
    # ------------------------------------------------------------------
    def get_system(self, key: str) -> Optional[object]:
        return self._systems.get(key)

    def put_system(self, key: str, value: object) -> None:
        self._systems.put(key, value)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self, key: str) -> None:
        """Drop one digest from every layer."""
        self._blocks.pop(key)
        self._systems.pop(key)
        path = self._block_path(key)
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass

    def clear(self, disk: bool = False) -> None:
        """Empty the in-memory layers (and optionally the disk layer)."""
        self._blocks.clear()
        self._systems.clear()
        if disk:
            self.clear_disk()

    def clear_disk(self) -> None:
        for path in self._disk_entries():
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def block_entries(self) -> int:
        return len(self._blocks)

    @property
    def system_entries(self) -> int:
        return len(self._systems)

    def disk_usage(self) -> Tuple[int, int]:
        """``(entry count, total bytes)`` of the persistent layer."""
        count = 0
        total = 0
        for path in self._disk_entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
        return count, total

    # ------------------------------------------------------------------
    # persistent layer
    # ------------------------------------------------------------------
    def _block_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / "blocks" / f"{key}.pkl"

    def _disk_entries(self):
        if self.cache_dir is None:
            return []
        return sorted((self.cache_dir / "blocks").glob("*.pkl"))

    def _disk_read(self, key: str) -> Optional[object]:
        path = self._block_path(key)
        if path is None:
            return None
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            # Unpickling arbitrary corrupt bytes can raise nearly any
            # exception type; a damaged entry is always just a miss.
            self._discard(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_FORMAT_VERSION
        ):
            self._discard(path)
            return None
        return payload.get("value")

    def _disk_write(self, key: str, value: object) -> None:
        path = self._block_path(key)
        if path is None:
            return
        payload = {"version": CACHE_FORMAT_VERSION, "value": value}
        try:
            atomic_write_bytes(
                path, pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
            )
        except (OSError, pickle.PicklingError):
            # Persistence is best-effort: a full disk or an unpicklable
            # payload degrades to memory-only caching, never to failure.
            pass

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
