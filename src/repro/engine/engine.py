"""The evaluation engine: cached, parallel solving for batch workloads.

An :class:`Engine` is the serving layer every repeated-solve workload
routes through.  It composes the other three parts of this package —
content-addressed keys, the solve cache, and the batch executor — and
meters everything through a :class:`~repro.engine.stats.StatsCollector`:

* :meth:`Engine.solve` — a cached drop-in for
  :func:`repro.core.translate`; per-block chain solves are memoized by
  content digest, so structurally identical blocks anywhere in any
  model are solved exactly once per cache lifetime.
* :meth:`Engine.solve_chain` — the same for raw GMB/library CTMCs.
* :meth:`Engine.sweep_block_field` / :meth:`Engine.sweep_global_field`
  — parametric sweeps where only the changed block is re-solved per
  point, fanned out over workers when ``jobs > 1``.
* :meth:`Engine.propagate_uncertainty` — Monte-Carlo parameter
  uncertainty: values are drawn sequentially (bit-compatible with the
  historical implementation), the expensive solves fan out.
* :meth:`Engine.simulate_system` — simulation replications with
  deterministic per-replication seeding, so serial and parallel runs
  of the same seed agree exactly.

Workers are separate processes; each lazily builds a process-local
engine so consecutive tasks on one worker still share a block cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union
from pathlib import Path

import numpy as np

from ..core.block import DiagramBlockModel
from ..core.parameters import BlockParameters, GlobalParameters
from ..core.translator import (
    ChainSolve,
    ChainSolver,
    SystemSolution,
    solve_block_chain,
    translate,
)
from ..errors import SolverError
from ..markov.chain import MarkovChain
from ..markov.rewards import crossing_frequency
from ..markov.steady_state import steady_state
from ..num import SolverOptions, as_options
from ..obs.trace import get_tracer
from ..units import MINUTES_PER_YEAR, availability_to_yearly_downtime_minutes
from .cache import SolveCache, default_cache_dir
from .executor import run_batch, seeded_tasks
from .keys import block_digest, chain_digest, model_digest
from .stats import EngineStats, StatsCollector, save_stats

#: Anything the engine accepts as a solve method: a legacy method name
#: ("direct", "gth", ...) or a full :class:`~repro.num.SolverOptions`.
MethodLike = Union[str, SolverOptions]


class Engine:
    """Cached, parallel evaluation engine.

    Args:
        jobs: Worker processes for batch methods (1 = serial fallback).
        cache: ``True`` for a fresh in-memory cache, ``False``/``None``
            to disable caching, or a :class:`SolveCache` to share one.
        cache_dir: Enables the persistent block layer at this directory
            (only when ``cache`` is ``True``; a shared
            :class:`SolveCache` keeps its own setting).
        timeout: Per-task wall-clock limit for pool runs, in seconds.
        retries: Extra attempts per failed/timed-out task.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Union[bool, SolveCache, None] = True,
        cache_dir: Optional[Union[str, Path]] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
    ) -> None:
        if jobs < 1:
            raise SolverError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        if isinstance(cache, SolveCache):
            self.cache: Optional[SolveCache] = cache
        elif cache:
            self.cache = SolveCache(cache_dir=cache_dir)
        else:
            self.cache = None
        self.stats = StatsCollector()
        self.stats.set_jobs(jobs)

    @property
    def _worker_cache_config(self) -> Tuple[Optional[Path], bool]:
        """(cache_dir, enabled) that pool workers should mirror."""
        if self.cache is None:
            return None, False
        return self.cache.cache_dir, True

    # ------------------------------------------------------------------
    # cached solving
    # ------------------------------------------------------------------
    def chain_solver(self, method: MethodLike = "direct") -> ChainSolver:
        """A memoizing chain solver for :func:`repro.core.translate`."""
        options = as_options(method)

        def solver(
            effective: BlockParameters,
            global_parameters: GlobalParameters,
            solve_options: SolverOptions = options,
        ) -> ChainSolve:
            # Detail-level: one span per *block* solve floods traces of
            # sweep-heavy workloads, so it is opt-in (``--trace-detail``).
            with get_tracer().span_detail(
                "engine.block_solve", method=solve_options.steady_method
            ) as span:
                if self.cache is None:
                    span.set_attr("cache", "off")
                    return self._record_block_solve(
                        solve_block_chain(
                            effective, global_parameters, solve_options
                        ),
                        span,
                    )
                key = block_digest(
                    effective, global_parameters, solve_options
                )
                value, layer = self.cache.get_block(key)
                if value is not None:
                    self.stats.increment("block_cache_hits")
                    if layer == "disk":
                        self.stats.increment("disk_hits")
                    span.set_attr("cache", layer or "memory")
                    return value
                solved = self._record_block_solve(
                    solve_block_chain(
                        effective, global_parameters, solve_options
                    ),
                    span,
                )
                span.set_attr("cache", "miss")
                self.cache.put_block(key, solved)
                return solved

        return solver

    def _record_block_solve(self, solved: ChainSolve, span) -> ChainSolve:
        """Count one computed block solve and annotate its span."""
        self.stats.increment("block_solves")
        self.stats.record_backend_solve(solved.backend, solved.n_states)
        span.set_attr("backend", solved.backend)
        span.set_attr("representation", solved.representation)
        span.set_attr("n_states", solved.n_states)
        span.set_attr("nnz", solved.nnz)
        return solved

    def solve(
        self, model: DiagramBlockModel, method: MethodLike = "direct"
    ) -> SystemSolution:
        """Cached, instrumented equivalent of ``translate(model)``.

        Cached solutions are shared objects — treat them as immutable.
        """
        with self.stats.timer("solve"):
            return self._solve(model, method)

    def _solve(
        self, model: DiagramBlockModel, method: MethodLike
    ) -> SystemSolution:
        method = as_options(method)
        with get_tracer().span(
            "engine.solve", method=method.steady_method
        ) as span:
            if self.cache is not None:
                key = model_digest(model, method)
                cached = self.cache.get_system(key)
                if cached is not None:
                    self.stats.increment("system_cache_hits")
                    span.set_attr("cache", "hit")
                    return cached
            solution = translate(
                model,
                method=method,
                chain_solver=self.chain_solver(method),
            )
            self.stats.increment("system_solves")
            if self.cache is not None:
                span.set_attr("cache", "miss")
                self.cache.put_system(key, solution)
            else:
                span.set_attr("cache", "off")
            return solution

    async def solve_async(
        self, model: DiagramBlockModel, method: MethodLike = "direct"
    ) -> SystemSolution:
        """:meth:`solve` without blocking the event loop.

        The submit API the service layer builds on: the solve runs on a
        worker thread (the collector's locks make the caches and stats
        safe under concurrent submissions) while the caller's event
        loop keeps serving other requests.
        """
        import asyncio

        return await asyncio.to_thread(self.solve, model, method)

    def solve_many(
        self,
        models: Sequence[DiagramBlockModel],
        method: MethodLike = "direct",
    ) -> List[SystemSolution]:
        """Solve several *distinct* models as one batch.

        With ``jobs > 1`` the solves fan out over the process pool
        (each worker keeps a process-local block cache mirroring this
        engine's persistent layer); results are merged back into this
        engine's system cache so follow-up :meth:`solve` calls of the
        same specs hit locally.  Serial engines just loop.
        """
        models = list(models)
        method = as_options(method)
        if not models:
            return []
        if self.jobs == 1 or len(models) == 1:
            return [self.solve(model, method) for model in models]
        cache_dir, use_cache = self._worker_cache_config
        with self.stats.timer("solve"):
            solutions = run_batch(
                _solve_model_task,
                [
                    (model, method, cache_dir, use_cache)
                    for model in models
                ],
                jobs=self.jobs,
                timeout=self.timeout,
                retries=self.retries,
                stats=self.stats,
            )
        self.stats.increment("system_solves", len(solutions))
        if self.cache is not None:
            for model, solution in zip(models, solutions):
                self.cache.put_system(
                    model_digest(model, method), solution
                )
        return solutions

    def solve_chain(
        self, chain: MarkovChain, method: MethodLike = "direct"
    ) -> Dict[str, float]:
        """Cached steady-state solve of a raw CTMC.

        Returns the steady-state distribution; availability and failure
        frequency are derived and cached alongside under the keys
        ``"__availability__"`` and ``"__failure_frequency__"``.
        """
        options = as_options(method)
        key = (
            chain_digest(chain, options) if self.cache is not None else None
        )
        if key is not None:
            value, layer = self.cache.get_block(key)
            if value is not None:
                self.stats.increment("block_cache_hits")
                if layer == "disk":
                    self.stats.increment("disk_hits")
                return value
        pi = dict(steady_state(chain, method=options))
        # Derive the failure frequency from the distribution already in
        # hand (the solve is deterministic, so this matches what a
        # second markov.rewards.failure_frequency solve would sum).
        frequency = crossing_frequency(chain, pi, up_to_down=True)
        # Reward-weighted, in chain state order — bit-identical to
        # markov.rewards.steady_state_availability.
        pi["__availability__"] = sum(
            pi[state.name] * state.reward for state in chain
        )
        pi["__failure_frequency__"] = frequency
        self.stats.increment("block_solves")
        self.stats.record_backend_solve(
            options.steady_method, chain.n_states
        )
        if key is not None:
            self.cache.put_block(key, pi)
        return pi

    # ------------------------------------------------------------------
    # batch workloads
    # ------------------------------------------------------------------
    def map(
        self, fn, tasks: Sequence[Tuple], stage: str = "batch"
    ) -> List:
        """Run a raw task batch under this engine's executor policy."""
        with self.stats.timer(stage):
            return run_batch(
                fn,
                tasks,
                jobs=self.jobs,
                timeout=self.timeout,
                retries=self.retries,
                stats=self.stats,
            )

    def sweep_block_field(
        self,
        model: DiagramBlockModel,
        path: str,
        field: str,
        values: Sequence[object],
        method: MethodLike = "direct",
    ) -> List["SweepPoint"]:
        """Engine-backed :func:`repro.analysis.sweep_block_field`."""
        return self._sweep(model, path, field, values, method)

    def sweep_global_field(
        self,
        model: DiagramBlockModel,
        field: str,
        values: Sequence[object],
        method: MethodLike = "direct",
    ) -> List["SweepPoint"]:
        """Engine-backed :func:`repro.analysis.sweep_global_field`."""
        return self._sweep(model, None, field, values, method)

    def _sweep(
        self,
        model: DiagramBlockModel,
        path: Optional[str],
        field: str,
        values: Sequence[object],
        method: MethodLike,
    ) -> List["SweepPoint"]:
        from ..analysis.parametric import SweepPoint

        values = list(values)
        method = as_options(method)
        with self.stats.timer("sweep"):
            if self.jobs == 1:
                availabilities = [
                    _sweep_point_task(
                        model, path, field, value, method, self
                    )
                    for value in values
                ]
            else:
                cache_dir, use_cache = self._worker_cache_config
                availabilities = run_batch(
                    _sweep_point_task,
                    [
                        (model, path, field, value, method, None,
                         cache_dir, use_cache)
                        for value in values
                    ],
                    jobs=self.jobs,
                    timeout=self.timeout,
                    retries=self.retries,
                    stats=self.stats,
                )
        return [
            SweepPoint(
                value=float(value),  # type: ignore[arg-type]
                availability=availability,
                yearly_downtime_minutes=(
                    availability_to_yearly_downtime_minutes(availability)
                ),
            )
            for value, availability in zip(values, availabilities)
        ]

    def propagate_uncertainty(
        self,
        model: DiagramBlockModel,
        uncertain: Sequence["UncertainField"],
        samples: int = 100,
        seed: Optional[int] = None,
    ) -> "UncertaintyResult":
        """Engine-backed :func:`repro.analysis.propagate_uncertainty`.

        Sample values are drawn sequentially from one generator (the
        exact draw order of the historical serial implementation), so
        results are bit-identical across ``jobs`` settings *and* with
        the pre-engine code; only the model solves fan out.
        """
        from ..analysis.parametric import with_block_changes
        from ..analysis.uncertainty import UncertaintyResult

        if samples < 2:
            raise SolverError(f"need at least 2 samples, got {samples}")
        if not uncertain:
            raise SolverError("no uncertain fields given")
        rng = np.random.default_rng(seed)
        with self.stats.timer("uncertainty"):
            variants = []
            for _ in range(samples):
                variant = model
                for entry in uncertain:
                    value = entry.distribution.sample(rng)
                    variant = with_block_changes(
                        variant, entry.path, **{entry.field: value}
                    )
                variants.append(variant)
            if self.jobs == 1:
                availabilities = np.array([
                    self._solve(variant, "direct").availability
                    for variant in variants
                ])
            else:
                cache_dir, use_cache = self._worker_cache_config
                availabilities = np.array(
                    run_batch(
                        _solve_availability_task,
                        [
                            (variant, "direct", cache_dir, use_cache)
                            for variant in variants
                        ],
                        jobs=self.jobs,
                        timeout=self.timeout,
                        retries=self.retries,
                        stats=self.stats,
                    )
                )
        downtimes = (1.0 - availabilities) * MINUTES_PER_YEAR
        p05, p50, p95 = np.percentile(downtimes, [5.0, 50.0, 95.0])
        return UncertaintyResult(
            samples=samples,
            mean_availability=float(availabilities.mean()),
            std_availability=float(availabilities.std(ddof=1)),
            downtime_p05=float(p05),
            downtime_p50=float(p50),
            downtime_p95=float(p95),
            availability_samples=tuple(availabilities.tolist()),
        )

    def simulate_system(
        self,
        solution: SystemSolution,
        horizon: float = 87_600.0,
        replications: int = 60,
        seed: Optional[int] = None,
        confidence: float = 0.95,
    ) -> "SimulationResult":
        """Engine-backed Monte-Carlo availability of a solved model.

        Every replication gets its own deterministic seed derived from
        ``(seed, replication index)``, so a seeded run returns the same
        interval at any ``jobs`` setting.  (This stream differs from
        the historical single-generator implementation in
        :func:`repro.validation.simulate_system_availability`, which is
        preserved there for backwards compatibility.)
        """
        from ..semimarkov.simulation import _summarize
        from ..validation.simulator import contributing_blocks

        contributing = contributing_blocks(solution)
        g = solution.model.global_parameters
        with self.stats.timer("simulate"):
            samples = run_batch(
                _replication_task,
                seeded_tasks(
                    [(contributing, g, horizon)] * replications, seed
                ),
                jobs=self.jobs,
                timeout=self.timeout,
                retries=self.retries,
                stats=self.stats,
            )
        return _summarize(np.asarray(samples, dtype=float), confidence)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> EngineStats:
        """An immutable copy of the engine's counters and timings."""
        return self.stats.snapshot()

    def save_stats(
        self, directory: Optional[Union[str, Path]] = None
    ) -> Path:
        """Persist the current snapshot for ``rascad stats``."""
        target = directory if directory is not None else default_cache_dir()
        return save_stats(self.stats_snapshot(), target)


# ----------------------------------------------------------------------
# module-level task functions (picklable; run inside worker processes)
# ----------------------------------------------------------------------

#: Per-process engine for workers, so tasks that land on the same
#: worker share a block cache.  Built lazily; memory-only by design.
_PROCESS_ENGINE: Optional[Engine] = None


def _process_engine(
    cache_dir: Optional[Path] = None, use_cache: bool = True
) -> Engine:
    """The pool worker's process-local engine (first task configures it).

    Mirrors the parent engine's cache policy so a parallel run reads
    and populates the same persistent layer a serial run would.
    """
    global _PROCESS_ENGINE
    if _PROCESS_ENGINE is None:
        _PROCESS_ENGINE = Engine(
            jobs=1, cache=use_cache, cache_dir=cache_dir
        )
    return _PROCESS_ENGINE


def _sweep_point_task(
    model: DiagramBlockModel,
    path: Optional[str],
    field: str,
    value: object,
    method: MethodLike,
    engine: Optional[Engine] = None,
    cache_dir: Optional[Path] = None,
    use_cache: bool = True,
) -> float:
    from ..analysis.parametric import (
        with_block_changes,
        with_global_changes,
    )

    if engine is None:
        engine = _process_engine(cache_dir, use_cache)
    if path is None:
        variant = with_global_changes(model, **{field: value})
    else:
        variant = with_block_changes(model, path, **{field: value})
    return engine._solve(variant, method).availability


def _solve_model_task(
    model: DiagramBlockModel,
    method: MethodLike,
    cache_dir: Optional[Path] = None,
    use_cache: bool = True,
) -> SystemSolution:
    engine = _process_engine(cache_dir, use_cache)
    return engine._solve(model, method)


def _solve_availability_task(
    model: DiagramBlockModel,
    method: MethodLike,
    cache_dir: Optional[Path] = None,
    use_cache: bool = True,
) -> float:
    engine = _process_engine(cache_dir, use_cache)
    return engine._solve(model, method).availability


def _replication_task(
    contributing: Sequence[Tuple[BlockParameters, int]],
    global_parameters: GlobalParameters,
    horizon: float,
    seed: Optional[int],
) -> float:
    from ..validation.simulator import _run_redundant, _run_type0

    rng = np.random.default_rng(seed)
    product = 1.0
    for parameters, multiplicity in contributing:
        runner = (
            _run_redundant if parameters.is_redundant else _run_type0
        )
        for _copy in range(multiplicity):
            product *= runner(parameters, global_parameters, horizon, rng)
    return product


# ----------------------------------------------------------------------
# the shared default engine
# ----------------------------------------------------------------------

_DEFAULT_ENGINE: Optional[Engine] = None


def get_default_engine() -> Engine:
    """The process-wide engine behind the thin analysis wrappers.

    Memory-only cache, serial executor — safe defaults that still give
    every caller of :func:`repro.analysis.sweep_block_field` and
    friends cross-call block reuse for free.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine(jobs=1)
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[Engine]) -> None:
    """Replace (or with ``None``, reset) the process-wide engine."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
