"""Evaluation engine — cached, parallel solving with instrumentation.

The serving layer for batch workloads: repeated solves (sweeps,
Monte-Carlo sampling, simulation replications) route through an
:class:`Engine` that memoizes per-block chain solves by content digest,
fans tasks out over worker processes, and meters everything it does.

* :mod:`.keys` — canonical, key-order-independent content digests.
* :mod:`.cache` — the in-memory LRU solve cache with an optional
  persistent on-disk layer.
* :mod:`.executor` — the process-pool/serial batch runner (per-task
  timeout, bounded retry, deterministic per-task seeding).
* :mod:`.stats` — counters and timings, surfaced as
  :class:`EngineStats` snapshots and the ``rascad stats`` CLI view.
* :mod:`.engine` — the :class:`Engine` facade tying them together.
"""

from .cache import SolveCache, default_cache_dir
from .engine import Engine, get_default_engine, set_default_engine
from .executor import run_batch, seeded_tasks
from .keys import (
    block_digest,
    canonical_payload,
    chain_digest,
    method_token,
    model_digest,
    task_seed,
)
from .stats import (
    EngineStats,
    StatsCollector,
    load_stats,
    metrics_payload,
    save_stats,
    summarize_latencies,
)

__all__ = [
    "Engine",
    "get_default_engine",
    "set_default_engine",
    "SolveCache",
    "default_cache_dir",
    "run_batch",
    "seeded_tasks",
    "block_digest",
    "canonical_payload",
    "chain_digest",
    "method_token",
    "model_digest",
    "task_seed",
    "EngineStats",
    "StatsCollector",
    "load_stats",
    "metrics_payload",
    "save_stats",
    "summarize_latencies",
]
