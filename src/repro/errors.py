"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`RascadError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class RascadError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(RascadError):
    """An engineering-language specification is malformed or inconsistent."""


class ParameterError(SpecError):
    """A block or global parameter is missing, negative, or out of range."""


class ModelError(RascadError):
    """A mathematical model is structurally invalid (e.g. not a CTMC)."""


class SolverError(RascadError):
    """A numerical solution failed or did not converge."""


class UnknownBackendError(SolverError):
    """A solver backend name is not registered.

    Attributes:
        name: The unknown name that was requested.
        valid: The registered names that would have been accepted.
    """

    def __init__(self, name: str, valid: tuple) -> None:
        self.name = name
        self.valid = tuple(valid)
        super().__init__(
            f"unknown solver backend {name!r}; "
            f"expected one of {sorted(self.valid)}"
        )


class BracketError(SolverError):
    """A root-finding bracket does not span the requested target.

    Raised with the evaluated endpoints attached, so callers (and the
    HTTP error envelope) can show *why* the search is hopeless instead
    of a bare "did not converge".

    Attributes:
        low / high: The bracket endpoints that were evaluated.
        low_value / high_value: The objective at each endpoint.
        target: The requested objective value.
        details: The same numbers as a JSON-ready mapping.
    """

    def __init__(
        self,
        low: float,
        high: float,
        low_value: float,
        high_value: float,
        target: float,
    ) -> None:
        self.low = low
        self.high = high
        self.low_value = low_value
        self.high_value = high_value
        self.target = target
        self.details = {
            "low": low,
            "high": high,
            "low_value": low_value,
            "high_value": high_value,
            "target": target,
        }
        super().__init__(
            f"bracket [{low}, {high}] does not span the target: "
            f"f({low}) = {low_value:.8f}, f({high}) = {high_value:.8f}, "
            f"target {target:.8f}"
        )


class DatabaseError(RascadError):
    """A part-number lookup against the component database failed."""


class EngineError(RascadError):
    """The evaluation engine failed (task timeout, retries exhausted,
    or an unusable cache entry)."""


class StoreError(RascadError):
    """A durable-state (SQLite) operation failed structurally."""


class StoreBusyError(StoreError):
    """The database stayed locked past the bounded busy-retry budget.

    Transient by construction: another writer holds the lock.  The
    service maps it to HTTP 503 ``store_busy`` with a ``Retry-After``
    hint, and the jobs runner treats it as retryable.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)
