"""Unit conversions used throughout the library.

The paper's engineering language mixes units: MTBF in hours, transient
failure rates in FIT (failures per 10**9 hours), MTTR components in
minutes, service response in hours.  Internally every duration is in
**hours** and every rate is in **events per hour**; these helpers are the
only place conversions happen, so a unit bug cannot hide in model code.
"""

from __future__ import annotations

from .errors import ParameterError

#: Hours per year used for downtime conversions (365 * 24).
HOURS_PER_YEAR = 8760.0

#: Minutes per year used for yearly-downtime reporting.
MINUTES_PER_YEAR = HOURS_PER_YEAR * 60.0

#: One FIT is one failure per 10**9 device-hours.
HOURS_PER_FIT_UNIT = 1e9


def minutes(value: float) -> float:
    """Convert a duration in minutes to hours."""
    return value / 60.0


def hours_to_minutes(value: float) -> float:
    """Convert a duration in hours to minutes."""
    return value * 60.0


def fit_to_rate(fit: float) -> float:
    """Convert a FIT value (failures / 10**9 hours) to a rate per hour."""
    if fit < 0:
        raise ParameterError(f"FIT value must be non-negative, got {fit}")
    return fit / HOURS_PER_FIT_UNIT


def rate_to_fit(rate_per_hour: float) -> float:
    """Convert a rate per hour to FIT."""
    return rate_per_hour * HOURS_PER_FIT_UNIT


def mtbf_to_rate(mtbf_hours: float) -> float:
    """Convert an MTBF in hours to a failure rate per hour.

    An MTBF of zero or ``inf`` means "never fails" and maps to rate 0, the
    convention used for placeholder blocks in the component database.
    """
    if mtbf_hours < 0:
        raise ParameterError(f"MTBF must be non-negative, got {mtbf_hours}")
    if mtbf_hours == 0 or mtbf_hours == float("inf"):
        return 0.0
    return 1.0 / mtbf_hours


def availability_to_yearly_downtime_minutes(availability: float) -> float:
    """Map a steady-state availability to expected downtime minutes/year."""
    if not 0.0 <= availability <= 1.0 + 1e-12:
        raise ParameterError(
            f"availability must lie in [0, 1], got {availability}"
        )
    return max(0.0, 1.0 - availability) * MINUTES_PER_YEAR


def yearly_downtime_minutes_to_availability(downtime_minutes: float) -> float:
    """Inverse of :func:`availability_to_yearly_downtime_minutes`."""
    if downtime_minutes < 0:
        raise ParameterError(
            f"downtime must be non-negative, got {downtime_minutes}"
        )
    return 1.0 - downtime_minutes / MINUTES_PER_YEAR


def nines(availability: float) -> float:
    """Express availability as a number of nines (e.g. 0.999 -> 3.0)."""
    import math

    if availability >= 1.0:
        return float("inf")
    if availability < 0.0:
        raise ParameterError(
            f"availability must be non-negative, got {availability}"
        )
    return -math.log10(1.0 - availability)
