"""Transient solution of CTMCs.

The production path is Jensen's uniformization (randomization), the
standard approach in availability tools (Reibman/Smith/Trivedi 1989 is
the paper's reference [6]).  Matrix-exponential and ODE paths exist as
independent cross-checks for the validation benchmarks.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

import numpy as np
from scipy import linalg as sla
from scipy.integrate import solve_ivp

from ..errors import SolverError
from .chain import MarkovChain
from .steady_state import _as_generator, _check_generator


def uniformization_terms(
    q: np.ndarray, t: float, tol: float = 1e-12
) -> Tuple[np.ndarray, float, int]:
    """Uniformized DTMC, uniformization rate, and Poisson truncation point.

    Returns ``(P, lam, n_terms)`` such that
    ``exp(Q t) = sum_k pois(k; lam*t) P^k`` truncated after ``n_terms``
    terms with total truncated probability mass below ``tol``.
    """
    _check_generator(q)
    if t < 0:
        raise SolverError(f"time must be non-negative, got {t}")
    lam = float(-q.diagonal().min())
    if lam == 0.0:
        return np.eye(q.shape[0]), 0.0, 1
    lam *= 1.0 + 1e-9  # guard against a zero row in P from rounding
    p = np.eye(q.shape[0]) + q / lam
    mean = lam * t
    # Find the smallest m with P(Poisson(mean) > m) < tol by accumulating
    # the series directly in log space for large means.
    if mean == 0.0:
        return p, lam, 1
    n_terms = int(mean + 10.0 * np.sqrt(mean) + 20.0)
    while _poisson_tail(mean, n_terms) > tol:
        n_terms = int(n_terms * 1.5) + 1
        if n_terms > 50_000_000:
            raise SolverError(
                f"uniformization would need more than {n_terms} terms; "
                "the horizon is too stiff — use transient_probabilities_ode"
            )
    return p, lam, n_terms + 1


def _poisson_pmf_series(mean: float, n_terms: int) -> np.ndarray:
    """Poisson pmf values 0..n_terms-1, computed stably in log space."""
    k = np.arange(n_terms, dtype=float)
    from scipy.special import gammaln

    log_pmf = k * np.log(mean) - mean - gammaln(k + 1.0) if mean > 0 else (
        np.where(k == 0, 0.0, -np.inf)
    )
    return np.exp(log_pmf)


def _poisson_tail(mean: float, m: int) -> float:
    """P(Poisson(mean) > m)."""
    from scipy.stats import poisson

    return float(poisson.sf(m, mean))


def transient_probabilities(
    model: Union[MarkovChain, np.ndarray],
    t: float,
    p0: Optional[np.ndarray] = None,
    tol: float = 1e-12,
) -> np.ndarray:
    """State probabilities at time ``t`` by uniformization."""
    q = _as_generator(model)
    n = q.shape[0]
    if p0 is None:
        if isinstance(model, MarkovChain):
            p0 = model.initial_distribution()
        else:
            p0 = np.zeros(n)
            p0[0] = 1.0
    p0 = np.asarray(p0, dtype=float)
    if p0.shape != (n,):
        raise SolverError(f"initial vector has shape {p0.shape}, expected ({n},)")
    if abs(p0.sum() - 1.0) > 1e-9 or (p0 < -1e-12).any():
        raise SolverError("initial vector is not a probability distribution")
    if t == 0.0:
        return p0.copy()

    p, lam, n_terms = uniformization_terms(q, t, tol=tol)
    if lam == 0.0:
        return p0.copy()
    weights = _poisson_pmf_series(lam * t, n_terms)
    acc = np.zeros(n)
    v = p0.copy()
    for k in range(n_terms):
        acc += weights[k] * v
        v = v @ p
    # Renormalize the truncated series.
    mass = weights.sum()
    if mass <= 0:
        raise SolverError("Poisson weights vanished; horizon too stiff")
    result = acc / mass
    return np.clip(result, 0.0, 1.0)


def transient_probabilities_expm(
    model: Union[MarkovChain, np.ndarray],
    t: float,
    p0: Optional[np.ndarray] = None,
) -> np.ndarray:
    """State probabilities at time ``t`` via ``scipy.linalg.expm``."""
    q = _as_generator(model)
    n = q.shape[0]
    if p0 is None:
        p0 = np.zeros(n)
        p0[0] = 1.0
        if isinstance(model, MarkovChain):
            p0 = model.initial_distribution()
    p0 = np.asarray(p0, dtype=float)
    result = p0 @ sla.expm(q * t)
    return np.clip(result, 0.0, 1.0)


def transient_probabilities_ode(
    model: Union[MarkovChain, np.ndarray],
    t: float,
    p0: Optional[np.ndarray] = None,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> np.ndarray:
    """State probabilities at time ``t`` by stiff ODE integration.

    Solves the Kolmogorov forward equations dp/dt = p Q with an implicit
    method, suitable when uniformization's ``lam * t`` is astronomically
    large (e.g. a 15-month horizon against minute-scale reboot rates).
    """
    q = _as_generator(model)
    n = q.shape[0]
    if p0 is None:
        p0 = np.zeros(n)
        p0[0] = 1.0
        if isinstance(model, MarkovChain):
            p0 = model.initial_distribution()
    p0 = np.asarray(p0, dtype=float)
    if t == 0.0:
        return p0.copy()
    qt = q.T

    def forward(_time: float, p: np.ndarray) -> np.ndarray:
        return qt @ p

    solution = solve_ivp(
        forward,
        (0.0, t),
        p0,
        method="BDF",
        jac=lambda _time, _p: qt,
        rtol=rtol,
        atol=atol,
    )
    if not solution.success:
        raise SolverError(f"ODE transient solve failed: {solution.message}")
    result = solution.y[:, -1]
    result = np.clip(result, 0.0, 1.0)
    total = result.sum()
    if total <= 0:
        raise SolverError("ODE transient solve lost all probability mass")
    return result / total


def transient_curve(
    model: Union[MarkovChain, np.ndarray],
    times: Iterable[float],
    p0: Optional[np.ndarray] = None,
    method: str = "uniformization",
) -> List[np.ndarray]:
    """State probability vectors at each requested time point."""
    methods = {
        "uniformization": transient_probabilities,
        "expm": transient_probabilities_expm,
        "ode": transient_probabilities_ode,
    }
    try:
        solver = methods[method]
    except KeyError:
        raise SolverError(
            f"unknown transient method {method!r}; expected {sorted(methods)}"
        ) from None
    return [solver(model, float(t), p0=p0) for t in times]
