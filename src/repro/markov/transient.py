"""Transient solution of CTMCs — compatibility shims over ``repro.num``.

The production path is Jensen's uniformization (randomization), the
standard approach in availability tools (Reibman/Smith/Trivedi 1989 is
the paper's reference [6]).  Matrix-exponential and ODE paths exist as
independent cross-checks for the validation benchmarks.

The Poisson-truncation machinery and the uniformization power sequence
live once in :mod:`repro.num.uniformization`; this module keeps the
historic signatures (including the test-visible
:func:`uniformization_terms` helper) working unchanged, and
:func:`transient_curve` now evaluates the whole grid from a single
power sequence via :func:`repro.num.transient_grid`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

import numpy as np
from scipy import linalg as sla
from scipy.integrate import solve_ivp

from ..errors import SolverError
from ..num import (
    as_operator,
    poisson_pmf_series,
    poisson_tail,
    poisson_truncation,
    transient_grid,
    validate_generator,
)
from .chain import MarkovChain


def uniformization_terms(
    q: np.ndarray, t: float, tol: float = 1e-12
) -> Tuple[np.ndarray, float, int]:
    """Uniformized DTMC, uniformization rate, and Poisson truncation point.

    Returns ``(P, lam, n_terms)`` such that
    ``exp(Q t) = sum_k pois(k; lam*t) P^k`` truncated after ``n_terms``
    terms with total truncated probability mass below ``tol``.
    """
    validate_generator(q)
    if t < 0:
        raise SolverError(f"time must be non-negative, got {t}")
    lam = float(-q.diagonal().min())
    if lam == 0.0:
        return np.eye(q.shape[0]), 0.0, 1
    lam *= 1.0 + 1e-9  # guard against a zero row in P from rounding
    p = np.eye(q.shape[0]) + q / lam
    mean = lam * t
    if mean == 0.0:
        return p, lam, 1
    return p, lam, poisson_truncation(mean, tol)


def _poisson_pmf_series(mean: float, n_terms: int) -> np.ndarray:
    """Poisson pmf values 0..n_terms-1, computed stably in log space."""
    return poisson_pmf_series(mean, n_terms)


def _poisson_tail(mean: float, m: int) -> float:
    """P(Poisson(mean) > m)."""
    return poisson_tail(mean, m)


def _initial_vector(
    model: Union[MarkovChain, np.ndarray],
    n: int,
    p0: Optional[np.ndarray],
) -> np.ndarray:
    if p0 is None:
        if isinstance(model, MarkovChain):
            p0 = model.initial_distribution()
        else:
            p0 = np.zeros(n)
            p0[0] = 1.0
    return np.asarray(p0, dtype=float)


def transient_probabilities(
    model: Union[MarkovChain, np.ndarray],
    t: float,
    p0: Optional[np.ndarray] = None,
    tol: float = 1e-12,
) -> np.ndarray:
    """State probabilities at time ``t`` by uniformization."""
    op = as_operator(model, validate=False)
    p0 = _initial_vector(model, op.n, p0)
    if p0.shape != (op.n,):
        raise SolverError(
            f"initial vector has shape {p0.shape}, expected ({op.n},)"
        )
    if abs(p0.sum() - 1.0) > 1e-9 or (p0 < -1e-12).any():
        raise SolverError("initial vector is not a probability distribution")
    if t == 0.0:
        return p0.copy()
    op.validate()
    return transient_grid(op, [t], p0=p0, tol=tol)[0]


def transient_probabilities_expm(
    model: Union[MarkovChain, np.ndarray],
    t: float,
    p0: Optional[np.ndarray] = None,
) -> np.ndarray:
    """State probabilities at time ``t`` via ``scipy.linalg.expm``."""
    op = as_operator(model, validate=False)
    n = op.n
    if p0 is None:
        p0 = np.zeros(n)
        p0[0] = 1.0
        if isinstance(model, MarkovChain):
            p0 = model.initial_distribution()
    p0 = np.asarray(p0, dtype=float)
    result = p0 @ sla.expm(op.dense() * t)
    return np.clip(result, 0.0, 1.0)


def transient_probabilities_ode(
    model: Union[MarkovChain, np.ndarray],
    t: float,
    p0: Optional[np.ndarray] = None,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> np.ndarray:
    """State probabilities at time ``t`` by stiff ODE integration.

    Solves the Kolmogorov forward equations dp/dt = p Q with an implicit
    method, suitable when uniformization's ``lam * t`` is astronomically
    large (e.g. a 15-month horizon against minute-scale reboot rates).
    """
    op = as_operator(model, validate=False)
    n = op.n
    if p0 is None:
        p0 = np.zeros(n)
        p0[0] = 1.0
        if isinstance(model, MarkovChain):
            p0 = model.initial_distribution()
    p0 = np.asarray(p0, dtype=float)
    if t == 0.0:
        return p0.copy()
    qt = op.dense().T

    def forward(_time: float, p: np.ndarray) -> np.ndarray:
        return qt @ p

    solution = solve_ivp(
        forward,
        (0.0, t),
        p0,
        method="BDF",
        jac=lambda _time, _p: qt,
        rtol=rtol,
        atol=atol,
    )
    if not solution.success:
        raise SolverError(f"ODE transient solve failed: {solution.message}")
    result = solution.y[:, -1]
    result = np.clip(result, 0.0, 1.0)
    total = result.sum()
    if total <= 0:
        raise SolverError("ODE transient solve lost all probability mass")
    return result / total


def transient_curve(
    model: Union[MarkovChain, np.ndarray],
    times: Iterable[float],
    p0: Optional[np.ndarray] = None,
    method: str = "uniformization",
) -> List[np.ndarray]:
    """State probability vectors at each requested time point.

    With the default uniformization method the whole grid shares one
    vector-matrix power sequence (see :func:`repro.num.transient_grid`);
    results stay bit-identical to point-by-point evaluation.
    """
    methods = {
        "uniformization": transient_probabilities,
        "expm": transient_probabilities_expm,
        "ode": transient_probabilities_ode,
    }
    try:
        solver = methods[method]
    except KeyError:
        raise SolverError(
            f"unknown transient method {method!r}; expected {sorted(methods)}"
        ) from None
    times = [float(t) for t in times]
    if method == "uniformization" and times:
        op = as_operator(model)
        grid_p0 = _initial_vector(model, op.n, p0)
        return transient_grid(op, times, p0=grid_p0)
    return [solver(model, t, p0=p0) for t in times]
