"""Markov reward measures.

RAScad assigns each state a reward rate (1 = up, 0 = down) and derives
system measures from reward-weighted probabilities [Goal/Lavenberg/Trivedi
1987; Trivedi 1982].  This module provides the steady-state and interval
(cumulative) reward measures the paper lists in Section 4.

The interval integrals share the uniformization core in
:mod:`repro.num.uniformization` with the transient and reliability
paths; steady-state measures accept any registered solver backend via
:class:`~repro.num.SolverOptions`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
from scipy.integrate import solve_ivp

from ..errors import SolverError
from ..num import SolverOptions, as_operator, interval_reward_value
from .chain import MarkovChain


def expected_reward_rate(pi: np.ndarray, rewards: np.ndarray) -> float:
    """Expected reward rate under a state distribution."""
    pi = np.asarray(pi, dtype=float)
    rewards = np.asarray(rewards, dtype=float)
    if pi.shape != rewards.shape:
        raise SolverError(
            f"distribution shape {pi.shape} != reward shape {rewards.shape}"
        )
    return float(pi @ rewards)


def steady_state_availability(
    chain: MarkovChain, method: Union[str, SolverOptions] = "direct"
) -> float:
    """Steady-state availability: reward-weighted stationary probability."""
    from .steady_state import steady_state

    pi = steady_state(chain, method=method)
    return sum(
        pi[state.name] * state.reward for state in chain
    )


def interval_reward(
    chain: Union[MarkovChain, np.ndarray],
    horizon: float,
    rewards: Optional[np.ndarray] = None,
    p0: Optional[np.ndarray] = None,
    method: str = "auto",
    tol: float = 1e-12,
) -> float:
    """Time-averaged expected reward over ``(0, horizon)``.

    This is the paper's *interval availability* when rewards are the 0/1
    up-state indicators.  Two methods:

    * ``"uniformization"`` — exact truncated series
      ``(1/(T*lam)) * sum_k P(Poisson(lam*T) > k) * (p0 P^k r)``.
    * ``"ode"`` — augments the forward equations with a cumulative-reward
      integrator; preferred when ``lam * T`` exceeds ~1e6.

    ``"auto"`` picks between them by stiffness.
    """
    op = as_operator(chain, validate=False)
    n = op.n
    if rewards is None:
        if not isinstance(chain, MarkovChain):
            raise SolverError("rewards are required for a bare generator")
        rewards = chain.reward_vector()
    rewards = np.asarray(rewards, dtype=float)
    if p0 is None:
        if isinstance(chain, MarkovChain):
            p0 = chain.initial_distribution()
        else:
            p0 = np.zeros(n)
            p0[0] = 1.0
    p0 = np.asarray(p0, dtype=float)
    if horizon < 0:
        raise SolverError(f"horizon must be non-negative, got {horizon}")
    if horizon == 0:
        return float(p0 @ rewards)

    lam = op.uniformization_rate()
    if method == "auto":
        method = "ode" if lam * horizon > 1e6 else "uniformization"

    if method == "uniformization":
        op.validate()
        return interval_reward_value(op, horizon, rewards, p0, tol=tol)
    if method == "ode":
        return _interval_reward_ode(op.dense(), horizon, rewards, p0)
    raise SolverError(
        f"unknown interval-reward method {method!r}; "
        "expected 'auto', 'uniformization' or 'ode'"
    )


def _interval_reward_ode(
    q: np.ndarray, horizon: float, rewards: np.ndarray, p0: np.ndarray
) -> float:
    n = q.shape[0]
    qt = q.T

    def forward(_time: float, y: np.ndarray) -> np.ndarray:
        p = y[:n]
        dp = qt @ p
        dc = float(p @ rewards)
        return np.concatenate([dp, [dc]])

    y0 = np.concatenate([p0, [0.0]])
    solution = solve_ivp(
        forward, (0.0, horizon), y0, method="BDF", rtol=1e-10, atol=1e-13
    )
    if not solution.success:
        raise SolverError(f"interval-reward ODE failed: {solution.message}")
    cumulative = float(solution.y[n, -1])
    return min(max(cumulative / horizon, 0.0), float(rewards.max(initial=1.0)))


def interval_availability(
    chain: MarkovChain,
    horizon: float,
    p0: Optional[np.ndarray] = None,
    method: str = "auto",
) -> float:
    """Expected fraction of ``(0, horizon)`` spent in up states."""
    indicator = np.array(
        [1.0 if state.is_up else 0.0 for state in chain]
    )
    return interval_reward(chain, horizon, rewards=indicator, p0=p0, method=method)


def failure_frequency(
    chain: MarkovChain, method: Union[str, SolverOptions] = "direct"
) -> float:
    """Steady-state system failure frequency (events per hour).

    The rate of up -> down crossings: ``sum_{i up} pi_i sum_{j down} q_ij``.
    """
    return _crossing_frequency(chain, up_to_down=True, method=method)


def recovery_frequency(
    chain: MarkovChain, method: Union[str, SolverOptions] = "direct"
) -> float:
    """Steady-state system recovery frequency (down -> up crossings)."""
    return _crossing_frequency(chain, up_to_down=False, method=method)


def _crossing_reward_vector(
    chain: MarkovChain, up_to_down: bool
) -> np.ndarray:
    """Per-state instantaneous crossing rate (the 'reward' whose
    expectation is the failure/recovery frequency)."""
    up = set(chain.up_states())
    rates = np.zeros(chain.n_states)
    for transition in chain.transitions():
        source_up = transition.source in up
        target_up = transition.target in up
        crosses = (
            source_up and not target_up
            if up_to_down
            else not source_up and target_up
        )
        if crosses:
            rates[chain.index(transition.source)] += transition.rate
    return rates


def interval_failure_frequency(
    chain: MarkovChain,
    horizon: float,
    p0: Optional[np.ndarray] = None,
    method: str = "auto",
) -> float:
    """Time-averaged system failure frequency over ``(0, horizon)``.

    The paper's "interval ... failure rate for (0, T)" on the
    availability model: ``(1/T) * integral of sum_{i up} p_i(t) q_{i,down} dt``
    — the expected number of up->down crossings per hour.  Converges to
    :func:`failure_frequency` as the horizon grows.
    """
    rewards = _crossing_reward_vector(chain, up_to_down=True)
    return interval_reward(
        chain, horizon, rewards=rewards, p0=p0, method=method
    )


def interval_recovery_frequency(
    chain: MarkovChain,
    horizon: float,
    p0: Optional[np.ndarray] = None,
    method: str = "auto",
) -> float:
    """Time-averaged system recovery frequency over ``(0, horizon)``."""
    rewards = _crossing_reward_vector(chain, up_to_down=False)
    return interval_reward(
        chain, horizon, rewards=rewards, p0=p0, method=method
    )


def crossing_frequency(
    chain: MarkovChain,
    pi: dict,
    up_to_down: bool = True,
) -> float:
    """Steady-state crossing frequency from a precomputed distribution.

    ``pi`` maps state names to stationary probabilities (the result of
    :func:`~repro.markov.steady_state.steady_state`); callers that have
    already solved the chain avoid a second full solve.
    """
    up = set(chain.up_states())
    total = 0.0
    for transition in chain.transitions():
        source_up = transition.source in up
        target_up = transition.target in up
        crosses = (
            source_up and not target_up
            if up_to_down
            else not source_up and target_up
        )
        if crosses:
            total += pi[transition.source] * transition.rate
    return total


def _crossing_frequency(
    chain: MarkovChain,
    up_to_down: bool,
    method: Union[str, SolverOptions],
) -> float:
    from .steady_state import steady_state

    pi = steady_state(chain, method=method)
    return crossing_frequency(chain, pi, up_to_down=up_to_down)
