"""Steady-state solution of CTMCs.

Three independent numerical paths are provided on purpose: the direct
linear solve is the production path; Grassmann-Taksar-Heyman (GTH)
elimination is subtraction-free and therefore robust for stiff RAS models
whose rates span nine orders of magnitude (FIT-level transients vs.
minute-level reboots); uniformized power iteration is the third opinion
used by the E4/E5 cross-validation benchmarks, mirroring how RAScad was
validated against SHARPE and MEADEP.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from ..errors import SolverError
from .chain import MarkovChain


def _as_generator(model: Union[MarkovChain, np.ndarray]) -> np.ndarray:
    if isinstance(model, MarkovChain):
        return model.generator_matrix()
    q = np.asarray(model, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise SolverError(f"generator must be square, got shape {q.shape}")
    return q


def _check_generator(q: np.ndarray) -> None:
    n = q.shape[0]
    off_diag = q - np.diag(np.diag(q))
    if (off_diag < -1e-15).any():
        raise SolverError("generator has negative off-diagonal rates")
    row_sums = np.abs(q.sum(axis=1))
    scale = max(1.0, float(np.abs(q).max()))
    if (row_sums > 1e-8 * scale).any():
        raise SolverError("generator rows do not sum to zero")
    if n == 0:
        raise SolverError("empty generator")


def solve_steady_state(model: Union[MarkovChain, np.ndarray]) -> np.ndarray:
    """Solve pi Q = 0, sum(pi) = 1 by a direct linear solve.

    The singular system is made determinate by replacing one balance
    equation with the normalisation constraint.
    """
    q = _as_generator(model)
    _check_generator(q)
    n = q.shape[0]
    if n == 1:
        return np.array([1.0])
    a = q.T.copy()
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        pi = np.linalg.solve(a, b)
    except np.linalg.LinAlgError:
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    if not np.isfinite(pi).all():
        raise SolverError("direct steady-state solve produced non-finite values")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError("direct steady-state solve produced a zero vector")
    return pi / total


def solve_steady_state_gth(model: Union[MarkovChain, np.ndarray]) -> np.ndarray:
    """Grassmann-Taksar-Heyman elimination.

    GTH performs Gaussian elimination using only additions, multiplications
    and divisions of non-negative quantities, so it suffers no catastrophic
    cancellation even on extremely stiff generators.  O(n^3).
    """
    q = _as_generator(model)
    _check_generator(q)
    n = q.shape[0]
    if n == 1:
        return np.array([1.0])
    p = q.copy().astype(float)
    # Work on the off-diagonal rate matrix; the diagonal is implied.
    np.fill_diagonal(p, 0.0)
    for k in range(n - 1, 0, -1):
        total = p[k, :k].sum()
        if total <= 0.0:
            # State k cannot reach eliminated block; treat as unreachable
            # in steady state by leaving a zero pivot (handled below).
            continue
        p[:k, :k] += np.outer(p[:k, k], p[k, :k]) / total

    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        total = p[k, :k].sum()
        if total <= 0.0:
            pi[k] = 0.0
            continue
        pi[k] = pi[:k] @ p[:k, k] / total
    norm = pi.sum()
    if norm <= 0 or not np.isfinite(norm):
        raise SolverError("GTH elimination failed to normalise")
    return pi / norm


def solve_steady_state_power(
    model: Union[MarkovChain, np.ndarray],
    tol: float = 1e-12,
    max_iterations: int = 2_000_000,
) -> np.ndarray:
    """Uniformized power iteration.

    The CTMC is uniformized into the DTMC ``P = I + Q / Lambda`` whose
    stationary vector equals the CTMC's; power iteration then converges
    for any irreducible chain.  Slow but entirely independent of the
    direct solvers, which is exactly what a validation oracle needs.
    """
    q = _as_generator(model)
    _check_generator(q)
    n = q.shape[0]
    if n == 1:
        return np.array([1.0])
    lam = float(-q.diagonal().min()) * 1.05
    if lam <= 0:
        # All-absorbing generator: steady state is the initial state; the
        # convention here is uniform over states, but this never occurs
        # for validated availability chains.
        raise SolverError("generator has no transitions; no unique steady state")
    p = np.eye(n) + q / lam
    pi = np.full(n, 1.0 / n)
    for iteration in range(max_iterations):
        nxt = pi @ p
        # Aitken-free plain iteration; chains here are small and well mixed.
        delta = np.abs(nxt - pi).max()
        pi = nxt
        if delta < tol:
            pi = np.clip(pi, 0.0, None)
            return pi / pi.sum()
    raise SolverError(
        f"power iteration did not converge within {max_iterations} steps "
        f"(residual {delta:.3e})"
    )


def steady_state(
    chain: MarkovChain, method: str = "direct"
) -> Dict[str, float]:
    """Steady-state probabilities keyed by state name.

    Args:
        chain: The chain to solve.
        method: ``"direct"``, ``"gth"`` or ``"power"``.
    """
    solvers = {
        "direct": solve_steady_state,
        "gth": solve_steady_state_gth,
        "power": solve_steady_state_power,
    }
    try:
        solver = solvers[method]
    except KeyError:
        raise SolverError(
            f"unknown steady-state method {method!r}; "
            f"expected one of {sorted(solvers)}"
        ) from None
    pi = solver(chain)
    return dict(zip(chain.state_names, pi.tolist()))
