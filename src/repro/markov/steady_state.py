"""Steady-state solution of CTMCs — compatibility shims over ``repro.num``.

Three independent numerical paths are provided on purpose: the direct
linear solve is the production path; Grassmann-Taksar-Heyman (GTH)
elimination is subtraction-free and therefore robust for stiff RAS models
whose rates span nine orders of magnitude (FIT-level transients vs.
minute-level reboots); uniformized power iteration is the third opinion
used by the E4/E5 cross-validation benchmarks, mirroring how RAScad was
validated against SHARPE and MEADEP.

The implementations live in :mod:`repro.num` (see
:func:`repro.num.solve_steady` and the backend registry); this module
keeps the historic one-call-per-method signatures working unchanged.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from ..errors import SolverError, UnknownBackendError
from ..num import (
    SolverOptions,
    as_operator,
    as_options,
    backend_names,
    power_iteration,
    solve_steady,
)
from .chain import MarkovChain


def solve_steady_state(model: Union[MarkovChain, np.ndarray]) -> np.ndarray:
    """Solve pi Q = 0, sum(pi) = 1 by a direct linear solve.

    The singular system is made determinate by replacing one balance
    equation with the normalisation constraint.
    """
    return solve_steady(model, SolverOptions(steady_method="dense-direct"))


def solve_steady_state_gth(model: Union[MarkovChain, np.ndarray]) -> np.ndarray:
    """Grassmann-Taksar-Heyman elimination.

    GTH performs Gaussian elimination using only additions, multiplications
    and divisions of non-negative quantities, so it suffers no catastrophic
    cancellation even on extremely stiff generators.  O(n^3).
    """
    return solve_steady(model, SolverOptions(steady_method="gth"))


def solve_steady_state_power(
    model: Union[MarkovChain, np.ndarray],
    tol: float = 1e-12,
    max_iterations: int = 2_000_000,
) -> np.ndarray:
    """Uniformized power iteration.

    The CTMC is uniformized into the DTMC ``P = I + Q / Lambda`` whose
    stationary vector equals the CTMC's; power iteration then converges
    for any irreducible chain.  Slow but entirely independent of the
    direct solvers, which is exactly what a validation oracle needs.
    """
    return power_iteration(
        as_operator(model), tol=tol, max_iterations=max_iterations
    )


def steady_state(
    chain: MarkovChain,
    method: Union[str, SolverOptions] = "direct",
) -> Dict[str, float]:
    """Steady-state probabilities keyed by state name.

    Args:
        chain: The chain to solve.
        method: A backend name (``"direct"``, ``"gth"``, ``"power"``,
            ``"sparse-direct"``, ``"sparse-iterative"``) or a full
            :class:`~repro.num.SolverOptions` value.
    """
    try:
        options = as_options(method)
    except UnknownBackendError:
        legacy = sorted(set(backend_names()) | {"direct"})
        raise SolverError(
            f"unknown steady-state method {method!r}; "
            f"expected one of {legacy}"
        ) from None
    pi = solve_steady(chain, options)
    return dict(zip(chain.state_names, pi.tolist()))
