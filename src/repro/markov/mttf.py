"""Reliability measures via absorbing-chain analysis.

For reliability (as opposed to availability) RAScad treats the first
entry into any down state as mission failure.  This module derives the
absorbing variant of an availability chain and computes MTTF, the
reliability function R(t), the hazard rate, and the paper's interval
failure rate over ``(0, T)``.

Generator construction, the MTTF fundamental-matrix solve and the
uniformization power sequence all live in :mod:`repro.num`;
:func:`reliability_curve` evaluates the whole time grid from a single
power sequence instead of re-running uniformization per point.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..errors import ModelError, SolverError
from ..num import (
    SolverOptions,
    absorption_times,
    as_operator,
    as_options,
    transient_grid,
)
from .chain import MarkovChain
from .transient import transient_probabilities, transient_probabilities_ode


def absorbing_variant(chain: MarkovChain) -> MarkovChain:
    """A copy of ``chain`` in which every down state is absorbing.

    Transitions out of down states are dropped; transitions between down
    states are also dropped (once failed, the mission is over).
    """
    down = set(chain.down_states())
    if not down:
        raise ModelError(
            f"chain {chain.name!r} has no down state; reliability is 1"
        )
    variant = MarkovChain(f"{chain.name}#absorbing")
    for state in chain:
        variant.add_state(state.name, reward=state.reward, meta=state.meta)
    for transition in chain.transitions():
        if transition.source in down:
            continue
        variant.add_transition(
            transition.source, transition.target, transition.rate,
            transition.label,
        )
    return variant


def _transient_partition(chain: MarkovChain) -> List[int]:
    """Indices of up (transient-in-the-absorbing-chain) states."""
    return [chain.index(name) for name in chain.up_states()]


def mean_time_to_failure(
    chain: MarkovChain,
    start: Optional[str] = None,
    options: Union[None, str, SolverOptions] = None,
) -> float:
    """MTTF from ``start`` (default: first state) until any down state.

    Solves the fundamental-matrix system ``Q_UU tau = -1`` restricted to
    up states; ``tau_i`` is the expected time to absorption from state i.
    The solve is dense LAPACK or sparse SuperLU depending on the
    operator representation selected by ``options``.
    """
    up_index = _transient_partition(chain)
    if not up_index:
        raise ModelError(f"chain {chain.name!r} has no up state")
    if len(up_index) == chain.n_states:
        return float("inf")
    opts = as_options(options)
    op = as_operator(chain, representation=opts.representation, validate=False)
    tau = absorption_times(op, up_index, opts)
    start_name = start if start is not None else chain.state_names[0]
    position = chain.index(start_name)
    if position not in up_index:
        raise ModelError(f"start state {start_name!r} is a down state")
    return float(tau[up_index.index(position)])


def reliability_at(
    chain: MarkovChain,
    t: float,
    start: Optional[str] = None,
    method: str = "uniformization",
) -> float:
    """R(t): probability no down state has been entered by time ``t``."""
    absorbing = absorbing_variant(chain)
    p0 = absorbing.initial_distribution(start)
    if method == "ode":
        probabilities = transient_probabilities_ode(absorbing, t, p0=p0)
    else:
        probabilities = transient_probabilities(absorbing, t, p0=p0)
    up_index = _transient_partition(absorbing)
    return float(np.clip(probabilities[up_index].sum(), 0.0, 1.0))


def reliability_curve(
    chain: MarkovChain,
    times: Sequence[float],
    start: Optional[str] = None,
    options: Union[None, str, SolverOptions] = None,
) -> List[float]:
    """R(t) sampled at each time point.

    The absorbing variant is built once and the whole grid shares a
    single uniformization power sequence; each value is bit-identical
    to calling :func:`reliability_at` point by point.
    """
    times = [float(t) for t in times]
    if not times:
        return []
    opts = as_options(options)
    absorbing = absorbing_variant(chain)
    p0 = absorbing.initial_distribution(start)
    op = as_operator(absorbing, representation=opts.representation)
    up_index = _transient_partition(absorbing)
    grid = transient_grid(op, times, p0=p0, tol=opts.uniformization_tol)
    return [
        float(np.clip(probabilities[up_index].sum(), 0.0, 1.0))
        for probabilities in grid
    ]


def hazard_rate(
    chain: MarkovChain,
    t: float,
    start: Optional[str] = None,
    dt: Optional[float] = None,
) -> float:
    """Instantaneous hazard h(t) = -d/dt ln R(t), by central difference.

    This is the paper's "hazard rate for the time increment in a loop":
    RAScad evaluates it numerically on a time grid, as we do here.
    """
    if t < 0:
        raise SolverError(f"time must be non-negative, got {t}")
    step = dt if dt is not None else max(t, 1.0) * 1e-4
    lo = max(t - step, 0.0)
    hi = t + step
    r_lo, r_hi = reliability_curve(chain, [lo, hi], start=start)
    if r_lo <= 0.0 or r_hi <= 0.0:
        raise SolverError(
            f"reliability vanished near t={t}; hazard rate undefined"
        )
    return float(-(np.log(r_hi) - np.log(r_lo)) / (hi - lo))


def interval_failure_rate(
    chain: MarkovChain, horizon: float, start: Optional[str] = None
) -> float:
    """Average failure rate over ``(0, T)``: ``-ln R(T) / T``.

    The exponential-equivalent rate that would produce the same mission
    reliability; this is the conventional reading of the paper's
    "interval failure rate for (0, T)".
    """
    if horizon <= 0:
        raise SolverError(f"horizon must be positive, got {horizon}")
    r = reliability_at(chain, horizon, start=start)
    if r <= 0.0:
        return float("inf")
    return float(-np.log(r) / horizon)
