"""Parametric sensitivity of chain measures.

RAScad advertises "graphical output and parametric analysis capability";
the numerical core of that feature is evaluating a measure as a function
of a model parameter.  Two mechanisms are provided:

* *factory-based* finite differences (:func:`sweep`,
  :func:`parametric_sensitivity`) — models are expressed as callables
  mapping a parameter value to a :class:`MarkovChain`, so the same
  machinery serves hand-built GMB chains and MG-generated ones;
* *analytic* stationary-vector derivatives
  (:func:`stationary_derivative`, :func:`rate_sensitivity`) — exact
  dpi/dq_ij from the linear system d(pi)Q = -pi dQ, no step-size tuning.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

import numpy as np

from ..errors import SolverError
from ..num import as_operator
from .chain import MarkovChain

ChainFactory = Callable[[float], MarkovChain]
Measure = Callable[[MarkovChain], float]


def sweep(
    factory: ChainFactory,
    measure: Measure,
    values: Iterable[float],
) -> List[Tuple[float, float]]:
    """Evaluate ``measure(factory(v))`` over each parameter value."""
    results: List[Tuple[float, float]] = []
    for value in values:
        chain = factory(float(value))
        results.append((float(value), float(measure(chain))))
    return results


def parametric_sensitivity(
    factory: ChainFactory,
    measure: Measure,
    at: float,
    relative_step: float = 1e-4,
) -> float:
    """Central-difference derivative d(measure)/d(parameter) at ``at``.

    The step is relative to the parameter magnitude so the same call works
    for FIT-scale rates and hour-scale durations.
    """
    if at == 0.0:
        raise SolverError(
            "cannot take a relative step at parameter value 0; "
            "evaluate at a small positive value instead"
        )
    step = abs(at) * relative_step
    hi = measure(factory(at + step))
    lo = measure(factory(at - step))
    return float((hi - lo) / (2.0 * step))


def stationary_derivative(
    chain: MarkovChain, source: str, target: str
) -> Dict[str, float]:
    """Exact d(pi)/d(q) for a unit increase of the rate ``source -> target``.

    Differentiating the determinate system ``pi M = e_n`` (M is Q with
    its last column replaced by the normalisation ones-column) gives
    ``d(pi) = -pi dM M^{-1}``, where dM is the perturbation direction
    ``E_{st} - E_{ss}`` with the normalisation column zeroed.  Exact up
    to linear-solve round-off — no finite-difference step to tune.
    """
    if source == target:
        raise SolverError("self-loop rates do not exist in a CTMC")
    n = chain.n_states
    i = chain.index(source)
    j = chain.index(target)
    if n < 2:
        raise SolverError("sensitivity needs at least two states")

    from .steady_state import solve_steady_state

    pi = solve_steady_state(chain)
    m = as_operator(chain, representation="dense", validate=False).dense().copy()
    m[:, -1] = 1.0
    direction = np.zeros((n, n))
    direction[i, j] += 1.0
    direction[i, i] -= 1.0
    direction[:, -1] = 0.0
    rhs = -(pi @ direction)
    try:
        # Solve d(pi) M = rhs  <=>  M^T d(pi)^T = rhs^T.
        dpi = np.linalg.solve(m.T, rhs)
    except np.linalg.LinAlgError as exc:
        raise SolverError(f"sensitivity system is singular: {exc}") from exc
    return dict(zip(chain.state_names, dpi.tolist()))


def rate_sensitivity(
    chain: MarkovChain, source: str, target: str
) -> float:
    """Exact d(availability)/d(rate) for the arc ``source -> target``.

    Positive means increasing that rate *raises* availability (repair
    arcs); negative means it lowers it (failure arcs).
    """
    dpi = stationary_derivative(chain, source, target)
    return sum(
        dpi[state.name] * (1.0 if state.is_up else 0.0) for state in chain
    )


def all_rate_sensitivities(chain: MarkovChain) -> List[Tuple[str, str, float]]:
    """``(source, target, dA/dq)`` for every arc, largest magnitude first.

    The RAS-engineering reading: which transition rate is worth
    engineering effort.  Multiply by the rate itself to get elasticity.
    """
    results = [
        (t.source, t.target, rate_sensitivity(chain, t.source, t.target))
        for t in chain.transitions()
    ]
    results.sort(key=lambda item: abs(item[2]), reverse=True)
    return results
