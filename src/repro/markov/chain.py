"""Reward-annotated continuous-time Markov chains.

A :class:`MarkovChain` is the internal matrix representation that RAScad
generates for each MG block ("Due to the variation on the model size, the
internal matrix representation ... of the Markov models are generated in
the implementation").  States carry a *reward rate*: 1 marks an
operational (up) state, 0 a failure (down) state; fractional rewards are
allowed for performability-style models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ModelError


@dataclass(frozen=True)
class State:
    """A named state with a reward rate.

    Attributes:
        name: Unique state name within its chain.
        reward: Reward rate; 1.0 = up, 0.0 = down, intermediate values
            model degraded performability levels.
        meta: Free-form annotations (e.g. which redundancy level the MG
            generator assigned the state to).
    """

    name: str
    reward: float = 1.0
    meta: Mapping[str, object] = field(default_factory=dict)

    @property
    def is_up(self) -> bool:
        """True when the state counts as operational (reward > 0)."""
        return self.reward > 0.0


@dataclass(frozen=True)
class Transition:
    """A rate transition between two named states."""

    source: str
    target: str
    rate: float
    label: str = ""


class MarkovChain:
    """A finite CTMC with named, reward-annotated states.

    States keep insertion order, which fixes the row/column order of the
    generator matrix.  Parallel transitions between the same pair of
    states accumulate their rates (the usual CTMC superposition rule).

    Example:
        >>> chain = MarkovChain("pair")
        >>> chain.add_state("Ok", reward=1.0)
        >>> chain.add_state("Down", reward=0.0)
        >>> chain.add_transition("Ok", "Down", 0.001)
        >>> chain.add_transition("Down", "Ok", 0.5)
        >>> chain.generator_matrix().shape
        (2, 2)
    """

    def __init__(self, name: str = "chain") -> None:
        self.name = name
        self._states: Dict[str, State] = {}
        self._order: List[str] = []
        self._rates: Dict[Tuple[str, str], float] = {}
        self._labels: Dict[Tuple[str, str], str] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_state(
        self,
        name: str,
        reward: float = 1.0,
        meta: Optional[Mapping[str, object]] = None,
    ) -> State:
        """Add a state; re-adding an existing name is an error."""
        if name in self._states:
            raise ModelError(f"duplicate state {name!r} in chain {self.name!r}")
        if reward < 0:
            raise ModelError(f"state {name!r} has negative reward {reward}")
        state = State(name=name, reward=reward, meta=dict(meta or {}))
        self._states[name] = state
        self._order.append(name)
        return state

    def ensure_state(
        self, name: str, reward: float = 1.0,
        meta: Optional[Mapping[str, object]] = None,
    ) -> State:
        """Return the existing state or create it."""
        if name in self._states:
            return self._states[name]
        return self.add_state(name, reward=reward, meta=meta)

    def add_transition(
        self, source: str, target: str, rate: float, label: str = ""
    ) -> None:
        """Add a rate transition; parallel arcs accumulate."""
        if source not in self._states:
            raise ModelError(f"unknown source state {source!r}")
        if target not in self._states:
            raise ModelError(f"unknown target state {target!r}")
        if source == target:
            raise ModelError(f"self-loop on {source!r} is meaningless in a CTMC")
        if rate < 0:
            raise ModelError(
                f"negative rate {rate} on {source!r} -> {target!r}"
            )
        if rate == 0:
            return
        key = (source, target)
        self._rates[key] = self._rates.get(key, 0.0) + rate
        if label:
            existing = self._labels.get(key)
            self._labels[key] = f"{existing} + {label}" if existing else label

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return len(self._order)

    @property
    def state_names(self) -> List[str]:
        return list(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._states

    def __iter__(self) -> Iterator[State]:
        return (self._states[name] for name in self._order)

    def state(self, name: str) -> State:
        try:
            return self._states[name]
        except KeyError:
            raise ModelError(
                f"chain {self.name!r} has no state {name!r}"
            ) from None

    def index(self, name: str) -> int:
        try:
            return self._order.index(name)
        except ValueError:
            raise ModelError(
                f"chain {self.name!r} has no state {name!r}"
            ) from None

    def transitions(self) -> List[Transition]:
        """All transitions in deterministic (source, target) order."""
        ordered = sorted(
            self._rates.items(),
            key=lambda item: (self.index(item[0][0]), self.index(item[0][1])),
        )
        return [
            Transition(src, dst, rate, self._labels.get((src, dst), ""))
            for (src, dst), rate in ordered
        ]

    def rate(self, source: str, target: str) -> float:
        """Rate of the arc ``source -> target`` (0.0 when absent)."""
        return self._rates.get((source, target), 0.0)

    def exit_rate(self, name: str) -> float:
        """Total outgoing rate of a state."""
        return sum(
            rate for (src, _dst), rate in self._rates.items() if src == name
        )

    def up_states(self) -> List[str]:
        return [name for name in self._order if self._states[name].is_up]

    def down_states(self) -> List[str]:
        return [name for name in self._order if not self._states[name].is_up]

    def reward_vector(self) -> np.ndarray:
        return np.array(
            [self._states[name].reward for name in self._order], dtype=float
        )

    def generator_matrix(self) -> np.ndarray:
        """Dense infinitesimal generator Q (rows sum to zero)."""
        n = self.n_states
        q = np.zeros((n, n), dtype=float)
        index = {name: i for i, name in enumerate(self._order)}
        for (src, dst), rate in self._rates.items():
            q[index[src], index[dst]] += rate
        np.fill_diagonal(q, q.diagonal() - q.sum(axis=1))
        return q

    def initial_distribution(
        self, start: Optional[str] = None
    ) -> np.ndarray:
        """Point mass on ``start`` (default: the first state added)."""
        if not self._order:
            raise ModelError(f"chain {self.name!r} has no states")
        chosen = start if start is not None else self._order[0]
        p0 = np.zeros(self.n_states)
        p0[self.index(chosen)] = 1.0
        return p0

    # ------------------------------------------------------------------
    # structure checks / derived chains
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ModelError` unless the chain is a sensible CTMC.

        Checks: at least one state, at least one up state, and — unless a
        state is deliberately absorbing — every state can eventually reach
        every other (irreducibility), which steady-state solution needs.
        """
        if not self._order:
            raise ModelError(f"chain {self.name!r} has no states")
        if not self.up_states():
            raise ModelError(f"chain {self.name!r} has no up state")
        absorbing = self.absorbing_states()
        if not absorbing and not self.is_irreducible():
            raise ModelError(
                f"chain {self.name!r} is reducible; steady-state "
                "probabilities would depend on the initial state"
            )

    def absorbing_states(self) -> List[str]:
        return [
            name for name in self._order if self.exit_rate(name) == 0.0
        ]

    def is_irreducible(self) -> bool:
        """True when the transition graph is strongly connected."""
        n = self.n_states
        if n <= 1:
            return True
        adjacency: Dict[str, List[str]] = {name: [] for name in self._order}
        reverse: Dict[str, List[str]] = {name: [] for name in self._order}
        for (src, dst), rate in self._rates.items():
            if rate > 0:
                adjacency[src].append(dst)
                reverse[dst].append(src)

        def reachable(start: str, edges: Dict[str, List[str]]) -> int:
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in edges[node]:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return len(seen)

        root = self._order[0]
        return reachable(root, adjacency) == n and reachable(root, reverse) == n

    def copy(self, name: Optional[str] = None) -> "MarkovChain":
        clone = MarkovChain(name or self.name)
        for state in self:
            clone.add_state(state.name, reward=state.reward, meta=state.meta)
        for (src, dst), rate in self._rates.items():
            clone.add_transition(src, dst, rate, self._labels.get((src, dst), ""))
        return clone

    def scaled(self, factor: float, name: Optional[str] = None) -> "MarkovChain":
        """A copy with every rate multiplied by ``factor`` (time rescaling)."""
        if factor <= 0:
            raise ModelError(f"scale factor must be positive, got {factor}")
        clone = MarkovChain(name or f"{self.name}*{factor:g}")
        for state in self:
            clone.add_state(state.name, reward=state.reward, meta=state.meta)
        for (src, dst), rate in self._rates.items():
            clone.add_transition(src, dst, rate * factor)
        return clone

    def __repr__(self) -> str:
        return (
            f"MarkovChain({self.name!r}, states={self.n_states}, "
            f"transitions={len(self._rates)})"
        )
