"""Continuous-time Markov chain engine (the GMB Markov substrate).

This package provides the general Markov modeling capability that RAScad's
Graphical Model Builder exposes: reward-annotated CTMCs, steady-state and
transient solution, Markov reward measures, absorbing-chain reliability
analysis, and parametric sensitivity.
"""

from .chain import MarkovChain, State, Transition
from .steady_state import (
    solve_steady_state,
    solve_steady_state_gth,
    solve_steady_state_power,
    steady_state,
)
from .transient import (
    transient_probabilities,
    transient_probabilities_expm,
    transient_probabilities_ode,
    transient_curve,
    uniformization_terms,
)
from .rewards import (
    crossing_frequency,
    expected_reward_rate,
    steady_state_availability,
    interval_reward,
    interval_availability,
    interval_failure_frequency,
    interval_recovery_frequency,
    failure_frequency,
    recovery_frequency,
)
from .mttf import (
    absorbing_variant,
    mean_time_to_failure,
    reliability_at,
    reliability_curve,
    hazard_rate,
    interval_failure_rate,
)
from .lumping import is_lumpable, lump, lump_by_meta
from .sensitivity import (
    parametric_sensitivity,
    sweep,
    stationary_derivative,
    rate_sensitivity,
    all_rate_sensitivities,
)

__all__ = [
    "MarkovChain",
    "State",
    "Transition",
    "solve_steady_state",
    "solve_steady_state_gth",
    "solve_steady_state_power",
    "steady_state",
    "transient_probabilities",
    "transient_probabilities_expm",
    "transient_probabilities_ode",
    "transient_curve",
    "uniformization_terms",
    "crossing_frequency",
    "expected_reward_rate",
    "steady_state_availability",
    "interval_reward",
    "interval_availability",
    "interval_failure_frequency",
    "interval_recovery_frequency",
    "failure_frequency",
    "recovery_frequency",
    "absorbing_variant",
    "mean_time_to_failure",
    "reliability_at",
    "reliability_curve",
    "hazard_rate",
    "interval_failure_rate",
    "is_lumpable",
    "lump",
    "lump_by_meta",
    "parametric_sensitivity",
    "sweep",
    "stationary_derivative",
    "rate_sensitivity",
    "all_rate_sensitivities",
]
