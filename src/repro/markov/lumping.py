"""Exact (ordinary) lumping of Markov chains.

MG's generated chains already exploit symmetry — all redundant units of
a block are interchangeable, so states track only the *count* of faulty
units.  This module provides the underlying operation explicitly for
GMB users: given a partition of states, check ordinary lumpability
(every state in a class has the same aggregate rate into every other
class) and construct the quotient chain.  Lumping a hand-drawn
per-unit model down to its count form reproduces exactly what the MG
generator emits — which the tests use as a consistency check between
the two modules.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ModelError
from .chain import MarkovChain

Partition = Sequence[Sequence[str]]


def _check_partition(chain: MarkovChain, partition: Partition) -> None:
    seen: Dict[str, int] = {}
    for index, block in enumerate(partition):
        if not block:
            raise ModelError(f"partition class {index} is empty")
        for name in block:
            if name not in chain:
                raise ModelError(f"partition names unknown state {name!r}")
            if name in seen:
                raise ModelError(
                    f"state {name!r} appears in classes {seen[name]} "
                    f"and {index}"
                )
            seen[name] = index
    missing = set(chain.state_names) - set(seen)
    if missing:
        raise ModelError(
            f"partition misses states {sorted(missing)}"
        )


def _class_rates(
    chain: MarkovChain, partition: Partition
) -> Dict[str, List[float]]:
    """Per-state aggregate rate into each partition class."""
    class_of: Dict[str, int] = {}
    for index, block in enumerate(partition):
        for name in block:
            class_of[name] = index
    rates: Dict[str, List[float]] = {
        name: [0.0] * len(partition) for name in chain.state_names
    }
    for transition in chain.transitions():
        rates[transition.source][class_of[transition.target]] += (
            transition.rate
        )
    return rates


def is_lumpable(
    chain: MarkovChain, partition: Partition, tolerance: float = 1e-9
) -> bool:
    """True when the partition is ordinarily lumpable with equal rewards."""
    _check_partition(chain, partition)
    rates = _class_rates(chain, partition)
    for block_index, block in enumerate(partition):
        reference = rates[block[0]]
        reward = chain.state(block[0]).reward
        for name in block[1:]:
            if chain.state(name).reward != reward:
                return False
            candidate = rates[name]
            for class_index in range(len(partition)):
                if class_index == block_index:
                    continue  # internal churn is allowed to differ
                if abs(candidate[class_index] - reference[class_index]) > (
                    tolerance * max(1.0, abs(reference[class_index]))
                ):
                    return False
    return True


def lump(
    chain: MarkovChain,
    partition: Partition,
    names: Optional[Sequence[str]] = None,
    tolerance: float = 1e-9,
) -> MarkovChain:
    """The quotient chain for an ordinarily lumpable partition.

    Raises :class:`ModelError` if the partition is not lumpable (use
    :func:`is_lumpable` to probe first).  Class rewards are the shared
    member reward; class names default to ``"+"``-joined member names.
    """
    if not is_lumpable(chain, partition, tolerance=tolerance):
        raise ModelError(
            "partition is not ordinarily lumpable on this chain"
        )
    if names is not None and len(names) != len(partition):
        raise ModelError(
            f"{len(names)} names given for {len(partition)} classes"
        )
    class_names = (
        list(names)
        if names is not None
        else ["+".join(block) for block in partition]
    )
    if len(set(class_names)) != len(class_names):
        raise ModelError("class names must be unique")

    quotient = MarkovChain(f"{chain.name}#lumped")
    for class_name, block in zip(class_names, partition):
        representative = chain.state(block[0])
        quotient.add_state(
            class_name,
            reward=representative.reward,
            meta={"members": tuple(block)},
        )
    rates = _class_rates(chain, partition)
    for block_index, (class_name, block) in enumerate(
        zip(class_names, partition)
    ):
        representative = rates[block[0]]
        for target_index, target_name in enumerate(class_names):
            if target_index == block_index:
                continue
            if representative[target_index] > 0.0:
                quotient.add_transition(
                    class_name, target_name, representative[target_index]
                )
    return quotient


def lump_by_meta(
    chain: MarkovChain, key: str, tolerance: float = 1e-9
) -> MarkovChain:
    """Lump by a state-metadata key (e.g. the expansion's ``smp_state``).

    Groups states sharing ``meta[key]``; raises if the grouping is not
    lumpable.  Handy for collapsing phase-type stage chains back to
    their semi-Markov states when the stage rates happen to permit it.
    """
    groups: Dict[object, List[str]] = {}
    for state in chain:
        if key not in state.meta:
            raise ModelError(
                f"state {state.name!r} lacks metadata key {key!r}"
            )
        groups.setdefault(state.meta[key], []).append(state.name)
    ordered = sorted(groups.items(), key=lambda item: str(item[0]))
    partition = [block for _value, block in ordered]
    names = [str(value) for value, _block in ordered]
    return lump(chain, partition, names=names, tolerance=tolerance)
