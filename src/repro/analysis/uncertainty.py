"""Parameter-uncertainty propagation.

Component MTBFs are estimates, not facts: a design-phase availability
number inherits their uncertainty.  This module samples uncertain block
parameters from user-chosen distributions (reusing the semi-Markov
distribution library), re-solves the model per sample, and reports the
resulting availability / downtime distribution — the error bars RAScad's
point estimates lack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.block import DiagramBlockModel
from ..core.translator import translate
from ..errors import SolverError
from ..semimarkov.distributions import Distribution
from ..units import MINUTES_PER_YEAR
from .parametric import with_block_changes


@dataclass(frozen=True)
class UncertainField:
    """One uncertain block parameter.

    Attributes:
        path: Block path (``"Model/Diagram/Block"`` form).
        field: BlockParameters field name (e.g. ``"mtbf_hours"``).
        distribution: Sampling distribution for the field's value.
    """

    path: str
    field: str
    distribution: Distribution


@dataclass(frozen=True)
class UncertaintyResult:
    """The propagated availability distribution."""

    samples: int
    mean_availability: float
    std_availability: float
    downtime_p05: float
    downtime_p50: float
    downtime_p95: float
    availability_samples: Sequence[float]

    @property
    def downtime_iqr90(self) -> float:
        """Width of the 5th-95th percentile downtime band (min/yr)."""
        return self.downtime_p95 - self.downtime_p05


def propagate_uncertainty(
    model: DiagramBlockModel,
    uncertain: Sequence[UncertainField],
    samples: int = 100,
    seed: Optional[int] = None,
) -> UncertaintyResult:
    """Monte Carlo propagation of parameter uncertainty.

    Each sample draws every uncertain field independently, rebuilds the
    model, and re-solves it.  Invalid draws (e.g. a probability
    distribution that produces a value a field rejects) raise — choose
    distributions whose support matches the field.
    """
    if samples < 2:
        raise SolverError(f"need at least 2 samples, got {samples}")
    if not uncertain:
        raise SolverError("no uncertain fields given")
    rng = np.random.default_rng(seed)
    availabilities = np.empty(samples)
    for index in range(samples):
        variant = model
        for entry in uncertain:
            value = entry.distribution.sample(rng)
            variant = with_block_changes(
                variant, entry.path, **{entry.field: value}
            )
        availabilities[index] = translate(variant).availability
    downtimes = (1.0 - availabilities) * MINUTES_PER_YEAR
    p05, p50, p95 = np.percentile(downtimes, [5.0, 50.0, 95.0])
    return UncertaintyResult(
        samples=samples,
        mean_availability=float(availabilities.mean()),
        std_availability=float(availabilities.std(ddof=1)),
        downtime_p05=float(p05),
        downtime_p50=float(p50),
        downtime_p95=float(p95),
        availability_samples=tuple(availabilities.tolist()),
    )
