"""Parameter-uncertainty propagation.

Component MTBFs are estimates, not facts: a design-phase availability
number inherits their uncertainty.  This module samples uncertain block
parameters from user-chosen distributions (reusing the semi-Markov
distribution library), re-solves the model per sample, and reports the
resulting availability / downtime distribution — the error bars RAScad's
point estimates lack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.block import DiagramBlockModel
from ..semimarkov.distributions import Distribution

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..engine import Engine


@dataclass(frozen=True)
class UncertainField:
    """One uncertain block parameter.

    Attributes:
        path: Block path (``"Model/Diagram/Block"`` form).
        field: BlockParameters field name (e.g. ``"mtbf_hours"``).
        distribution: Sampling distribution for the field's value.
    """

    path: str
    field: str
    distribution: Distribution


@dataclass(frozen=True)
class UncertaintyResult:
    """The propagated availability distribution."""

    samples: int
    mean_availability: float
    std_availability: float
    downtime_p05: float
    downtime_p50: float
    downtime_p95: float
    availability_samples: Sequence[float]

    @property
    def downtime_iqr90(self) -> float:
        """Width of the 5th-95th percentile downtime band (min/yr)."""
        return self.downtime_p95 - self.downtime_p05


def propagate_uncertainty(
    model: DiagramBlockModel,
    uncertain: Sequence[UncertainField],
    samples: int = 100,
    seed: Optional[int] = None,
    engine: "Optional[Engine]" = None,
) -> UncertaintyResult:
    """Monte Carlo propagation of parameter uncertainty.

    Each sample draws every uncertain field independently, rebuilds the
    model, and re-solves it.  Invalid draws (e.g. a probability
    distribution that produces a value a field rejects) raise — choose
    distributions whose support matches the field.

    A thin wrapper over
    :meth:`repro.engine.Engine.propagate_uncertainty`: values are drawn
    sequentially from one seeded generator (so numbers match the
    historical implementation exactly), while the per-sample solves go
    through the engine's cache and, with ``engine.jobs > 1``, its
    worker pool.
    """
    if engine is None:
        from ..engine import get_default_engine

        engine = get_default_engine()
    return engine.propagate_uncertainty(
        model, uncertain, samples=samples, seed=seed
    )
