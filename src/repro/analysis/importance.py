"""Component importance measures for the series system.

Birnbaum importance of block i in a series system is the partial
derivative of system availability with respect to the block's
availability — the product of all the *other* block availabilities.
Improvement potential is the availability gained by making the block
perfect.  Both rank blocks for hardening investment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.translator import SystemSolution, _block_contribution
from ..units import MINUTES_PER_YEAR


@dataclass(frozen=True)
class ImportanceRow:
    """Importance measures for one top-level block."""

    path: str
    availability: float
    birnbaum: float
    improvement_potential: float
    potential_downtime_minutes: float

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]


def birnbaum_importance(solution: SystemSolution) -> List[ImportanceRow]:
    """Birnbaum importance rows for the root diagram's blocks,
    sorted by improvement potential (largest first)."""
    contributions = [
        _block_contribution(block) for block in solution.blocks
    ]
    rows: List[ImportanceRow] = []
    for i, block in enumerate(solution.blocks):
        others = 1.0
        for j, availability in enumerate(contributions):
            if j != i:
                others *= availability
        # dA_sys/dA_i = prod_{j != i} A_j; improvement potential is the
        # system availability with block i made perfect, minus current.
        potential = others - solution.availability
        rows.append(
            ImportanceRow(
                path=block.path,
                availability=contributions[i],
                birnbaum=others,
                improvement_potential=potential,
                potential_downtime_minutes=potential * MINUTES_PER_YEAR,
            )
        )
    rows.sort(key=lambda row: row.improvement_potential, reverse=True)
    return rows
