"""Parametric analysis — RAScad's "graphical output and parametric
analysis capability", minus the GUI.

* :mod:`.parametric` — sweep any block or global field of a
  diagram/block model and tabulate availability / downtime.
* :mod:`.downtime` — downtime budgets: which blocks (and which states
  inside their chains) the yearly downtime comes from.
* :mod:`.importance` — Birnbaum importance and improvement potentials
  for the series system.
"""

from .parametric import (
    SweepPoint,
    expand_values,
    with_block_changes,
    with_global_changes,
    sweep_block_field,
    sweep_global_field,
)
from .downtime import BudgetRow, downtime_budget, state_kind_breakdown
from .importance import ImportanceRow, birnbaum_importance
from .uncertainty import (
    UncertainField,
    UncertaintyResult,
    propagate_uncertainty,
)
from .compare import ComparisonRow, compare_models, comparison_table
from .requirements import (
    RequirementCheck,
    check_requirement,
    solve_parameter_for_target,
)

__all__ = [
    "SweepPoint",
    "expand_values",
    "with_block_changes",
    "with_global_changes",
    "sweep_block_field",
    "sweep_global_field",
    "BudgetRow",
    "downtime_budget",
    "state_kind_breakdown",
    "ImportanceRow",
    "birnbaum_importance",
    "UncertainField",
    "UncertaintyResult",
    "propagate_uncertainty",
    "ComparisonRow",
    "compare_models",
    "comparison_table",
    "RequirementCheck",
    "check_requirement",
    "solve_parameter_for_target",
]
