"""Side-by-side model comparison.

MG exists to "analytically assess and compare RAS quantities achievable
by the computer architectures under design"; this module produces the
comparison table for a set of candidate architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.block import DiagramBlockModel
from ..core.measures import compute_measures
from ..core.translator import translate
from ..units import nines


@dataclass(frozen=True)
class ComparisonRow:
    """One architecture's headline numbers."""

    name: str
    availability: float
    nines: float
    yearly_downtime_minutes: float
    failures_per_year: float
    mttf_hours: float
    blocks: int
    physical_units: int


def compare_models(
    candidates: Sequence[Tuple[str, DiagramBlockModel]],
) -> List[ComparisonRow]:
    """Solve every candidate and rank by availability (best first)."""
    rows: List[ComparisonRow] = []
    for name, model in candidates:
        solution = translate(model)
        measures = compute_measures(solution, grid_points=9)
        rows.append(
            ComparisonRow(
                name=name,
                availability=measures.availability,
                nines=nines(measures.availability),
                yearly_downtime_minutes=measures.yearly_downtime_minutes,
                failures_per_year=measures.failures_per_year,
                mttf_hours=measures.mttf_hours,
                blocks=model.block_count(),
                physical_units=model.component_count(),
            )
        )
    rows.sort(key=lambda row: row.availability, reverse=True)
    return rows


def comparison_table(
    candidates: Sequence[Tuple[str, DiagramBlockModel]],
) -> str:
    """The comparison as aligned text, ready to print or file."""
    rows = compare_models(candidates)
    header = (
        f"{'architecture':<24} {'availability':>13} {'nines':>6} "
        f"{'min/yr':>9} {'fail/yr':>8} {'MTTF h':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<24} {row.availability:>13.8f} {row.nines:>6.2f} "
            f"{row.yearly_downtime_minutes:>9.2f} "
            f"{row.failures_per_year:>8.2f} {row.mttf_hours:>9.0f}"
        )
    return "\n".join(lines)
