"""Designing to an availability requirement.

The design-phase questions RAScad's users actually asked: *does this
architecture meet its availability commitment, with how much margin,
and how far can a parameter drift before it stops meeting it?*  This
module answers all three: requirement checks with margins, and a
bisection solver that finds the value of any block/global field at
which the system exactly meets the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.block import DiagramBlockModel
from ..core.translator import translate
from ..errors import BracketError, SolverError
from ..units import (
    MINUTES_PER_YEAR,
    availability_to_yearly_downtime_minutes,
    nines,
)
from .parametric import with_block_changes, with_global_changes


@dataclass(frozen=True)
class RequirementCheck:
    """The verdict of a requirement check.

    ``margin_minutes`` is the downtime budget left over (positive =
    requirement met with room to spare).
    """

    target_availability: float
    achieved_availability: float
    meets: bool
    margin_minutes: float
    target_nines: float
    achieved_nines: float


def check_requirement(
    model: DiagramBlockModel,
    target_availability: Optional[float] = None,
    target_nines: Optional[float] = None,
    max_downtime_minutes: Optional[float] = None,
) -> RequirementCheck:
    """Check a model against a requirement given in any of three forms.

    Exactly one of ``target_availability``, ``target_nines`` or
    ``max_downtime_minutes`` must be given.
    """
    given = [
        value
        for value in (target_availability, target_nines, max_downtime_minutes)
        if value is not None
    ]
    if len(given) != 1:
        raise SolverError(
            "give exactly one of target_availability, target_nines, "
            "max_downtime_minutes"
        )
    if target_nines is not None:
        if target_nines <= 0:
            raise SolverError(f"target nines must be positive, got {target_nines}")
        target = 1.0 - 10.0 ** (-target_nines)
    elif max_downtime_minutes is not None:
        if max_downtime_minutes < 0:
            raise SolverError(
                f"downtime budget must be non-negative, got "
                f"{max_downtime_minutes}"
            )
        target = 1.0 - max_downtime_minutes / MINUTES_PER_YEAR
    else:
        target = float(target_availability)  # type: ignore[arg-type]
        if not 0.0 < target < 1.0:
            raise SolverError(
                f"target availability must lie in (0, 1), got {target}"
            )

    achieved = translate(model).availability
    margin = (
        availability_to_yearly_downtime_minutes(target)
        - availability_to_yearly_downtime_minutes(achieved)
    )
    return RequirementCheck(
        target_availability=target,
        achieved_availability=achieved,
        meets=achieved >= target,
        margin_minutes=margin,
        target_nines=nines(target),
        achieved_nines=nines(achieved),
    )


def solve_parameter_for_target(
    model: DiagramBlockModel,
    field: str,
    target_availability: float,
    low: float,
    high: float,
    path: Optional[str] = None,
    tolerance: float = 1e-4,
    max_iterations: int = 80,
) -> float:
    """The field value at which the system availability equals the target.

    Bisection over ``[low, high]``; the availability must be monotone
    in the field over that bracket (true for every physically sensible
    field: MTBFs, repair times, probabilities).  ``path`` selects a
    block field; ``path=None`` solves a global field.

    Returns the boundary value; raises :class:`~repro.errors.BracketError`
    — carrying both evaluated endpoints — if the bracket does not span
    the target.
    """
    if not 0.0 < target_availability < 1.0:
        raise SolverError(
            f"target availability must lie in (0, 1), got "
            f"{target_availability}"
        )
    if not low < high:
        raise SolverError(f"need low < high, got [{low}, {high}]")

    def availability_at(value: float) -> float:
        if path is None:
            variant = with_global_changes(model, **{field: value})
        else:
            variant = with_block_changes(model, path, **{field: value})
        return translate(variant).availability

    a_low = availability_at(low)
    a_high = availability_at(high)
    if (a_low - target_availability) * (a_high - target_availability) > 0:
        raise BracketError(
            low=low,
            high=high,
            low_value=a_low,
            high_value=a_high,
            target=target_availability,
        )
    increasing = a_high > a_low
    lo, hi = low, high
    for _iteration in range(max_iterations):
        mid = 0.5 * (lo + hi)
        a_mid = availability_at(mid)
        if abs(a_mid - target_availability) <= tolerance * (
            1.0 - target_availability
        ):
            return mid
        if (a_mid < target_availability) == increasing:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
