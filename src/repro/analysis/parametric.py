"""Parameter sweeps over diagram/block models.

Models are immutable trees, so sweeping works by *rebuilding*: given a
block path and field changes, a structurally identical model is
constructed with only that block's parameters replaced.  This keeps
sweeps safe to parallelize and impossible to contaminate across points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..core.block import DiagramBlockModel, MGBlock, MGDiagram
from ..core.translator import translate
from ..errors import SpecError
from ..units import availability_to_yearly_downtime_minutes


@dataclass(frozen=True)
class SweepPoint:
    """One sweep evaluation."""

    value: float
    availability: float
    yearly_downtime_minutes: float


def _rebuild_diagram(
    diagram: MGDiagram,
    prefix: str,
    target_path: str,
    changes: dict,
    hits: List[str],
) -> MGDiagram:
    blocks = []
    for block in diagram:
        path = f"{prefix}/{block.name}"
        parameters = block.parameters
        if path == target_path:
            parameters = parameters.with_changes(**changes)
            hits.append(path)
        subdiagram = block.subdiagram
        if subdiagram is not None:
            subdiagram = _rebuild_diagram(
                subdiagram, path, target_path, changes, hits
            )
        blocks.append(MGBlock(parameters, subdiagram=subdiagram))
    return MGDiagram(diagram.name, blocks)


def with_block_changes(
    model: DiagramBlockModel, path: str, **changes: object
) -> DiagramBlockModel:
    """A copy of the model with one block's parameters replaced.

    ``path`` is the ``/``-joined block path as produced by
    :meth:`DiagramBlockModel.walk` (e.g.
    ``"Data Center System/Server Box/CPU Module"``).
    """
    hits: List[str] = []
    root = _rebuild_diagram(
        model.root, model.root.name, path, changes, hits
    )
    if not hits:
        raise SpecError(f"model {model.name!r} has no block at path {path!r}")
    return DiagramBlockModel(root, model.global_parameters, name=model.name)


def with_global_changes(
    model: DiagramBlockModel, **changes: object
) -> DiagramBlockModel:
    """A copy of the model with global parameters replaced."""
    return DiagramBlockModel(
        model.root,
        model.global_parameters.with_changes(**changes),
        name=model.name,
    )


def sweep_block_field(
    model: DiagramBlockModel,
    path: str,
    field: str,
    values: Iterable[object],
) -> List[SweepPoint]:
    """Availability/downtime as one block field steps through ``values``."""
    points = []
    for value in values:
        variant = with_block_changes(model, path, **{field: value})
        solution = translate(variant)
        points.append(
            SweepPoint(
                value=float(value),  # type: ignore[arg-type]
                availability=solution.availability,
                yearly_downtime_minutes=(
                    availability_to_yearly_downtime_minutes(
                        solution.availability
                    )
                ),
            )
        )
    return points


def sweep_global_field(
    model: DiagramBlockModel,
    field: str,
    values: Iterable[object],
) -> List[SweepPoint]:
    """Availability/downtime as one global field steps through ``values``."""
    points = []
    for value in values:
        variant = with_global_changes(model, **{field: value})
        solution = translate(variant)
        points.append(
            SweepPoint(
                value=float(value),  # type: ignore[arg-type]
                availability=solution.availability,
                yearly_downtime_minutes=(
                    availability_to_yearly_downtime_minutes(
                        solution.availability
                    )
                ),
            )
        )
    return points
