"""Parameter sweeps over diagram/block models.

Models are immutable trees, so sweeping works by *rebuilding*: given a
block path and field changes, a structurally identical model is
constructed with only that block's parameters replaced.  This keeps
sweeps safe to parallelize and impossible to contaminate across points.

The sweep functions route through the evaluation engine
(:mod:`repro.engine`): unchanged sibling blocks hit the block-solve
cache at every point, and ``jobs > 1`` fans points out over worker
processes.  Results are identical in every mode — solves are
deterministic and the cache is content-addressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional

from ..core.block import DiagramBlockModel, MGBlock, MGDiagram
from ..errors import SpecError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..engine import Engine


@dataclass(frozen=True)
class SweepPoint:
    """One sweep evaluation."""

    value: float
    availability: float
    yearly_downtime_minutes: float


#: Upper bound on one range token's expansion.  Beyond this a typo'd
#: count (``1:2:999999999``) would allocate gigabytes before anything
#: downstream could refuse it.
MAX_RANGE_COUNT = 100_000


def expand_values(tokens: Iterable[object]) -> List[float]:
    """Expand sweep value tokens into an explicit value list.

    Each token is either a number (kept as-is) or a
    ``start:stop:count`` range shorthand — ``"1e5:1e6:10"`` expands to
    10 values linearly spaced from ``1e5`` to ``1e6`` inclusive — so
    large sweeps don't need thousands of values spelled out.  Tokens
    may mix freely; malformed ranges raise :class:`SpecError` with the
    offending token in the message.  Counts must be positive (>= 2)
    and at most :data:`MAX_RANGE_COUNT` — both the CLI and the service
    surface these as friendly 400-style errors rather than tracebacks.
    """
    values: List[float] = []
    for token in tokens:
        if isinstance(token, bool):
            raise SpecError(f"sweep value {token!r} must be a number")
        if isinstance(token, (int, float)):
            values.append(float(token))
            continue
        text = str(token).strip()
        if ":" not in text:
            try:
                values.append(float(text))
            except ValueError:
                raise SpecError(
                    f"sweep value {text!r} is neither a number nor a "
                    "start:stop:count range"
                ) from None
            continue
        parts = text.split(":")
        if len(parts) != 3:
            raise SpecError(
                f"malformed range {text!r}: expected start:stop:count"
            )
        try:
            start, stop = float(parts[0]), float(parts[1])
            count = int(parts[2])
        except ValueError:
            raise SpecError(
                f"malformed range {text!r}: start and stop must be "
                "numbers, count an integer"
            ) from None
        if count <= 0:
            raise SpecError(
                f"malformed range {text!r}: count must be a positive "
                f"integer, got {count}"
            )
        if count < 2:
            raise SpecError(
                f"malformed range {text!r}: count must be >= 2 "
                "(a single value needs no range)"
            )
        if count > MAX_RANGE_COUNT:
            raise SpecError(
                f"malformed range {text!r}: count {count} exceeds the "
                f"{MAX_RANGE_COUNT}-value limit"
            )
        step = (stop - start) / (count - 1)
        values.extend(start + step * index for index in range(count))
    if not values:
        raise SpecError("no sweep values given")
    return values


def _rebuild_diagram(
    diagram: MGDiagram,
    prefix: str,
    target_path: str,
    changes: dict,
    hits: List[str],
) -> MGDiagram:
    blocks = []
    for block in diagram:
        path = f"{prefix}/{block.name}"
        parameters = block.parameters
        if path == target_path:
            parameters = parameters.with_changes(**changes)
            hits.append(path)
        subdiagram = block.subdiagram
        if subdiagram is not None:
            subdiagram = _rebuild_diagram(
                subdiagram, path, target_path, changes, hits
            )
        blocks.append(MGBlock(parameters, subdiagram=subdiagram))
    return MGDiagram(diagram.name, blocks)


def with_block_changes(
    model: DiagramBlockModel, path: str, **changes: object
) -> DiagramBlockModel:
    """A copy of the model with one block's parameters replaced.

    ``path`` is the ``/``-joined block path as produced by
    :meth:`DiagramBlockModel.walk` (e.g.
    ``"Data Center System/Server Box/CPU Module"``).
    """
    hits: List[str] = []
    root = _rebuild_diagram(
        model.root, model.root.name, path, changes, hits
    )
    if not hits:
        raise SpecError(f"model {model.name!r} has no block at path {path!r}")
    return DiagramBlockModel(root, model.global_parameters, name=model.name)


def with_global_changes(
    model: DiagramBlockModel, **changes: object
) -> DiagramBlockModel:
    """A copy of the model with global parameters replaced."""
    return DiagramBlockModel(
        model.root,
        model.global_parameters.with_changes(**changes),
        name=model.name,
    )


def _engine(engine: "Optional[Engine]") -> "Engine":
    if engine is not None:
        return engine
    from ..engine import get_default_engine

    return get_default_engine()


def sweep_block_field(
    model: DiagramBlockModel,
    path: str,
    field: str,
    values: Iterable[object],
    engine: "Optional[Engine]" = None,
) -> List[SweepPoint]:
    """Availability/downtime as one block field steps through ``values``.

    A thin wrapper over :meth:`repro.engine.Engine.sweep_block_field`;
    pass ``engine`` to control jobs, caching, and instrumentation, or
    omit it to use the shared default engine (serial, memory cache).
    """
    return _engine(engine).sweep_block_field(
        model, path, field, list(values)
    )


def sweep_global_field(
    model: DiagramBlockModel,
    field: str,
    values: Iterable[object],
    engine: "Optional[Engine]" = None,
) -> List[SweepPoint]:
    """Availability/downtime as one global field steps through ``values``.

    Engine-backed like :func:`sweep_block_field`.
    """
    return _engine(engine).sweep_global_field(model, field, list(values))
