"""Downtime budgets: where the yearly outage minutes come from.

For a series system the unavailability is (to first order) the sum of
block unavailabilities, so attributing downtime per block is both
meaningful and actionable for a design engineer — it ranks the blocks
an architect should harden first.  Within a chain-backed block the
budget splits further by state *kind* (repair, logistic, reboot, AR,
SPF, ...), which shows whether logistics or technology dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.translator import BlockSolution, SystemSolution
from ..units import MINUTES_PER_YEAR


@dataclass(frozen=True)
class BudgetRow:
    """Downtime attribution for one block."""

    path: str
    model_type: object  # int for chain-backed blocks, None for pass-through
    availability: float
    yearly_downtime_minutes: float
    share: float

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]


def downtime_budget(
    solution: SystemSolution, leaf_level: bool = True
) -> List[BudgetRow]:
    """Per-block downtime rows, sorted worst-first.

    Args:
        solution: A solved model.
        leaf_level: When True, descend pass-through blocks and report
            the chain-backed blocks actually responsible; when False,
            report the root diagram's blocks as-is.
    """
    rows: List[BudgetRow] = []

    def visit(block: BlockSolution) -> None:
        if leaf_level and block.chain is None:
            for child in block.children:
                visit(child)
            return
        if block.chain is None:
            unavailability = 1.0 - (
                block.availability ** block.block.parameters.quantity
            )
        else:
            unavailability = 1.0 - block.availability
        rows.append(
            BudgetRow(
                path=block.path,
                model_type=block.model_type,
                availability=1.0 - unavailability,
                yearly_downtime_minutes=unavailability * MINUTES_PER_YEAR,
                share=0.0,  # filled below
            )
        )

    for block in solution.blocks:
        visit(block)

    total = sum(row.yearly_downtime_minutes for row in rows)
    if total > 0:
        rows = [
            BudgetRow(
                path=row.path,
                model_type=row.model_type,
                availability=row.availability,
                yearly_downtime_minutes=row.yearly_downtime_minutes,
                share=row.yearly_downtime_minutes / total,
            )
            for row in rows
        ]
    rows.sort(key=lambda row: row.yearly_downtime_minutes, reverse=True)
    return rows


def state_kind_breakdown(block: BlockSolution) -> Dict[str, float]:
    """Yearly downtime minutes by state kind inside one block's chain.

    Kinds come from the generator's state metadata: ``repair``,
    ``logistic``, ``reboot``, ``ar``, ``spf``, ``transient-ar``,
    ``service-error``, ``reint``, ``down`` (the PF boundary state).
    """
    if block.chain is None:
        raise ValueError(
            f"block {block.path!r} has no chain; descend to its children"
        )
    breakdown: Dict[str, float] = {}
    for state in block.chain:
        if state.is_up:
            continue
        kind = str(state.meta.get("kind", "other"))
        probability = block.steady_state.get(state.name, 0.0)
        breakdown[kind] = (
            breakdown.get(kind, 0.0) + probability * MINUTES_PER_YEAR
        )
    return breakdown
