"""Server lifecycle: startup, connection loop, drain, and shutdown.

:class:`Server` owns the pieces — an :class:`~repro.engine.Engine`, a
:class:`~repro.service.queue.SolveQueue`, an
:class:`~repro.service.app.App` — and runs the asyncio TCP listener
around them:

* **Startup** builds the engine from the same flags the CLI uses (so
  the server shares its persistent cache with CLI runs), optionally
  warm-starts by pre-solving the library models, and binds the socket
  (``port=0`` picks a free port, reported by :meth:`Server.start`).
* **Serving** is a keep-alive connection loop: read request, dispatch
  through the app, write response, repeat until the client closes or a
  protocol error forces the connection shut.
* **Shutdown** (SIGTERM/SIGINT or :meth:`Server.shutdown`) stops
  accepting, drains in-flight requests up to ``drain_timeout``
  seconds, flushes the admission queue, and persists the final
  :class:`~repro.engine.EngineStats` snapshot so ``rascad stats``
  shows what the server did.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple, Union

from ..engine import Engine, default_cache_dir
from ..errors import RascadError
from ..num import SolverOptions
from ..obs import configure_logging, configure_tracing, get_logger
from .app import App, LIBRARY_MODELS
from .protocol import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_READ_TIMEOUT,
    MAX_HEADER_BYTES,
    ProtocolError,
    error_for_exception,
    read_request,
)
from .queue import SolveQueue


@dataclass
class ServiceConfig:
    """Everything ``rascad serve`` can configure.

    Attributes:
        host: Bind address.
        port: Bind port; 0 lets the OS pick (reported by ``start()``).
        jobs: Engine worker processes for batched distinct solves.
        cache: False disables the solve cache entirely.
        cache_dir: Persistent cache directory shared with CLI runs.
        max_queue: Admission bound on distinct queued solves.
        request_timeout: Default/maximum per-request deadline, seconds.
        batch_window: Micro-batching coalescing window, seconds.
        max_batch: Distinct solves per engine batch.
        max_body_bytes: Request body size limit.
        read_timeout: Socket read timeout for one request.
        warm_start: Pre-solve the library models into the cache.
        drain_timeout: Seconds shutdown waits for in-flight requests.
        jobs_db: Job-store database path enabling the ``/v1/jobs``
            endpoints.  Defaults to ``jobs.sqlite3`` inside
            ``cache_dir`` when that is set; with neither configured
            the endpoints answer ``503 jobs_disabled`` (keeps embedded
            and test servers from writing outside their sandbox).
        trace: Enable tracing (``/debug/traces`` and the
            ``X-Rascad-Trace-Id`` header) without a JSONL export.
        trace_dir: Enable tracing *and* export kept spans to
            ``<trace_dir>/spans.jsonl``.
        trace_sample: Head-sampling ratio in [0, 1]; errors and slow
            spans are kept regardless.
        trace_detail: Also emit per-block solve spans — deep-dive
            verbosity; the default keeps traced serving cheap.
        log_level: Level for the ``rascad`` logger namespace.
        log_json: Emit one JSON object per log line (with trace ids).
        default_solver: Server-wide default solver configuration
            (the ``rascad serve`` solver flags); requests override it
            per-call via their ``method`` string or ``solver`` object.
        cluster: Run as a cluster coordinator even with no static
            workers — the fleet then joins dynamically over
            ``POST /v1/cluster/workers``.
        cluster_workers: Static worker base URLs; naming any implies
            coordinator mode.
        cluster_shard_size: Points per shard when fanning out.
        cluster_lease_timeout: Seconds without a heartbeat before a
            dynamic worker drops out of placement.
        cluster_steal_after: Seconds a shard may run on one worker
            before an idle worker re-executes it speculatively.
        cluster_max_shard_attempts: Attempts per shard before the
            workload fails.
        cluster_call_timeout: Socket timeout for one shard HTTP call.
        cluster_fanout_threshold: Minimum sweep size worth sharding.
        registry_db: Model-registry database path.  Defaults to
            ``registry.sqlite3`` inside ``cache_dir`` when that is
            set (shared with ``rascad models`` CLI runs); with
            neither configured the registry lives in memory for the
            server's lifetime.
        registry_threshold: Regression-gate threshold, in extra
            yearly downtime minutes a tagged rollout may cost before
            publish rejects it.
        registry_seed: Publish the built-in library models into the
            registry at startup (idempotent; evaluation is lazy, so
            seeding performs no solves).
        telemetry_max_pending: Admission bound on field events admitted
            but not yet folded into estimator state; beyond it
            ``POST /v1/events`` answers ``429 backlog_full``.
        telemetry_max_batch: Cap on one ingest batch's event count.
        telemetry_window_hours: Drift-ladder window width for the
            server's rate estimator.  Telemetry state persists under
            ``cache_dir/telemetry`` when a cache directory is set,
            else in memory for the server's lifetime.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    jobs: int = 1
    cache: bool = True
    cache_dir: Optional[Union[str, Path]] = None
    max_queue: int = 64
    request_timeout: float = 30.0
    batch_window: float = 0.002
    max_batch: int = 16
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    read_timeout: float = DEFAULT_READ_TIMEOUT
    warm_start: bool = False
    drain_timeout: float = 10.0
    jobs_db: Optional[Union[str, Path]] = None
    trace: bool = False
    trace_dir: Optional[Union[str, Path]] = None
    trace_sample: float = 1.0
    trace_detail: bool = False
    log_level: str = "info"
    log_json: bool = False
    default_solver: Optional[SolverOptions] = None
    cluster: bool = False
    cluster_workers: Tuple[str, ...] = field(default_factory=tuple)
    cluster_shard_size: int = 16
    cluster_lease_timeout: float = 15.0
    cluster_steal_after: float = 5.0
    cluster_max_shard_attempts: int = 4
    cluster_call_timeout: float = 60.0
    cluster_fanout_threshold: int = 2
    registry_db: Optional[Union[str, Path]] = None
    registry_threshold: float = 1.0
    registry_seed: bool = True
    telemetry_max_pending: int = 10_000
    telemetry_max_batch: int = 1_024
    telemetry_window_hours: float = 168.0


class Server:
    """The asyncio HTTP server wrapping an engine-backed :class:`App`."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        if self.config.trace or self.config.trace_dir is not None:
            configure_tracing(
                enabled=True,
                trace_dir=self.config.trace_dir,
                sample_ratio=self.config.trace_sample,
                detail=self.config.trace_detail,
            )
        self.engine = Engine(
            jobs=self.config.jobs,
            cache=self.config.cache,
            cache_dir=self.config.cache_dir,
        )
        self.queue = SolveQueue(
            self.engine,
            max_queue=self.config.max_queue,
            batch_window=self.config.batch_window,
            max_batch=self.config.max_batch,
        )
        self.jobs = self._build_job_store()
        self.coordinator = self._build_coordinator()
        self.registry = self._build_registry()
        self.studies = self._build_study_store()
        self.telemetry = self._build_telemetry()
        self.app = App(
            self.engine,
            self.queue,
            request_timeout=self.config.request_timeout,
            jobs=self.jobs,
            default_solver=self.config.default_solver,
            cluster=self.coordinator,
            registry=self.registry,
            studies=self.studies,
            telemetry=self.telemetry,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._closing = False

    def _build_job_store(self):
        """The job store behind ``/v1/jobs``, or ``None`` (disabled).

        Enabled by an explicit ``jobs_db`` path or implicitly by
        ``cache_dir`` (the store lands next to the solve cache, where
        ``rascad jobs worker --cache-dir`` finds it by default).
        """
        if self.config.jobs_db is None and self.config.cache_dir is None:
            return None
        from ..jobs import open_store

        store, _ = open_store(
            db_path=self.config.jobs_db,
            cache_dir=self.config.cache_dir,
        )
        return store

    def _build_coordinator(self):
        """The cluster coordinator, or ``None`` (not coordinating).

        The shard ledger lives in its own ``cluster.sqlite3`` beside
        the jobs database (each store file carries exactly one
        ``user_version`` migration chain), so a killed coordinator
        restarted against the same path resumes from the completed
        shards; without any persistent path the table lives in memory
        (embedded and test servers).
        """
        if not self.config.cluster and not self.config.cluster_workers:
            return None
        from ..cluster import (
            CLUSTER_DB_FILENAME,
            ClusterConfig,
            Coordinator,
            Membership,
            ShardStore,
        )

        cluster_config = ClusterConfig(
            workers=tuple(self.config.cluster_workers),
            shard_size=self.config.cluster_shard_size,
            lease_timeout=self.config.cluster_lease_timeout,
            steal_after=self.config.cluster_steal_after,
            max_shard_attempts=self.config.cluster_max_shard_attempts,
            call_timeout=self.config.cluster_call_timeout,
            fanout_threshold=self.config.cluster_fanout_threshold,
        )
        if self.config.jobs_db is not None:
            store_path = str(
                Path(self.config.jobs_db).parent / CLUSTER_DB_FILENAME
            )
        elif self.config.cache_dir is not None:
            store_path = str(
                Path(self.config.cache_dir) / CLUSTER_DB_FILENAME
            )
        else:
            store_path = ":memory:"
        return Coordinator(
            Membership(lease_timeout=cluster_config.lease_timeout),
            store=ShardStore(store_path),
            config=cluster_config,
            stats=self.engine.stats,
        )

    def _build_registry(self):
        """The model registry behind ``/v1/models``.

        Every server gets one: a persistent file next to the solve
        cache when ``registry_db`` or ``cache_dir`` is configured
        (shared with ``rascad models`` CLI runs), else in-memory for
        the server's lifetime.  Seeding the library models creates
        rows only — evaluation is lazy — so startup stays solve-free
        and the engine-stats tests keep their exact counts.
        """
        from ..registry import (
            REGISTRY_DB_FILENAME,
            ModelRegistry,
            RegistryStore,
        )

        if self.config.registry_db is not None:
            store_path = str(self.config.registry_db)
        elif self.config.cache_dir is not None:
            store_path = str(
                Path(self.config.cache_dir) / REGISTRY_DB_FILENAME
            )
        else:
            store_path = ":memory:"
        registry = ModelRegistry(
            RegistryStore(store_path),
            engine=self.engine,
            default_threshold=self.config.registry_threshold,
        )
        if self.config.registry_seed:
            registry.seed_library()
        return registry

    def _build_study_store(self):
        """The study store behind ``/v1/studies``.

        Studies persist as JSON documents under ``cache_dir/studies``
        when a cache directory is configured (so ``rascad study
        status`` sees server-run studies), else in memory.
        """
        from ..studies import StudyStore

        if self.config.cache_dir is None:
            return StudyStore()
        return StudyStore(Path(self.config.cache_dir) / "studies")

    def _build_telemetry(self):
        """The telemetry hub behind ``/v1/events``.

        Every server gets one; state persists under
        ``cache_dir/telemetry`` when a cache directory is configured
        (shared with ``rascad events``/``rascad calibrate`` CLI runs),
        else in memory for the server's lifetime.
        """
        from ..telemetry import TelemetryHub

        directory = (
            Path(self.config.cache_dir) / "telemetry"
            if self.config.cache_dir is not None
            else None
        )
        return TelemetryHub(
            directory=directory,
            stats=self.engine.stats,
            max_pending=self.config.telemetry_max_pending,
            max_batch=self.config.telemetry_max_batch,
            window_hours=self.config.telemetry_window_hours,
        )

    def _shutdown_event(self) -> asyncio.Event:
        # Created lazily: on Python 3.9 an Event binds the event loop
        # at construction, so building it in __init__ would break the
        # natural construct-outside-the-loop-then-asyncio.run embedding.
        if self._shutdown_requested is None:
            self._shutdown_requested = asyncio.Event()
        return self._shutdown_requested

    # ------------------------------------------------------------------
    # startup / shutdown
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        if self._server is not None:
            raise RascadError("server already started")
        self.queue.start()
        if self.config.warm_start:
            await self._warm_start()
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_HEADER_BYTES,
        )
        sockets = self._server.sockets or ()
        host, port = self.config.host, self.config.port
        for sock in sockets:
            host, port = sock.getsockname()[:2]
            break
        return host, port

    async def _warm_start(self) -> None:
        """Pre-solve every library model into the (persistent) cache."""
        for factory in LIBRARY_MODELS.values():
            model = await asyncio.to_thread(factory)
            await self.engine.solve_async(model)
        self.engine.stats.increment(
            "service_warm_started", len(LIBRARY_MODELS)
        )

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger one graceful shutdown."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    signum, self.request_shutdown
                )

    def request_shutdown(self) -> None:
        """Flag the serve loop to begin a graceful shutdown."""
        self._shutdown_event().set()

    async def serve_until_shutdown(self) -> None:
        """Block until a signal (or :meth:`request_shutdown`) arrives,
        then drain and stop."""
        await self._shutdown_event().wait()
        await self.shutdown()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight work, persist stats."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout
            while self.app.in_flight > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
        await self.queue.close(drain=drain)
        if self.coordinator is not None:
            with contextlib.suppress(Exception):
                self.coordinator.store.close()
        if self.registry is not None:
            with contextlib.suppress(Exception):
                self.registry.close()
        self._persist_stats()

    def _persist_stats(self) -> None:
        directory = self.config.cache_dir or default_cache_dir()
        try:
            self.engine.save_stats(directory)
        except OSError:
            pass  # stats persistence is best-effort, like the CLI's

    # ------------------------------------------------------------------
    # the connection loop
    # ------------------------------------------------------------------
    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while not self._closing:
                try:
                    request = await read_request(
                        reader,
                        max_body_bytes=self.config.max_body_bytes,
                        read_timeout=self.config.read_timeout,
                    )
                except ProtocolError as error:
                    response = error_for_exception(error)
                    response.close = True
                    self.engine.stats.record_request(
                        "(protocol)", response.status
                    )
                    writer.write(response.encode())
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self.app.handle(request)
                if self._closing or not request.keep_alive:
                    response.close = True
                writer.write(response.encode())
                await writer.drain()
                if response.close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to salvage
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()


async def _run_server(config: ServiceConfig) -> int:
    server = Server(config)
    host, port = await server.start()
    server.install_signal_handlers()
    print(f"rascad service listening on http://{host}:{port}", flush=True)
    get_logger("service").info(
        "listening",
        extra={"host": host, "port": port, "jobs": config.jobs},
    )
    await server.serve_until_shutdown()
    print("rascad service drained and stopped", flush=True)
    get_logger("service").info("drained and stopped")
    return 0


def serve(config: Optional[ServiceConfig] = None) -> int:
    """Blocking entry point behind ``rascad serve``."""
    config = config or ServiceConfig()
    configure_logging(level=config.log_level, json_output=config.log_json)
    try:
        return asyncio.run(_run_server(config))
    except KeyboardInterrupt:  # pragma: no cover - signal path
        return 0
