"""Model-serving subsystem — the reproduction's RAScad web front-end.

The paper's RAScad is a web-based tool: engineers submit diagram/block
specs to a shared service and read availability results back.  This
package is that serving layer for the reproduction, built entirely on
the stdlib (asyncio HTTP/1.1) in front of the PR-1 evaluation engine:

* :mod:`.protocol` — bounded HTTP parsing and the JSON error envelope
  with stable error codes.
* :mod:`.queue` — bounded admission (``429`` backpressure), request
  deduplication by content digest, micro-batching into the engine's
  process pool, and deadline propagation.
* :mod:`.app` — the route table: ``/v1/solve``, ``/v1/sweep``,
  ``/v1/validate``, ``/v1/library``, ``/healthz``, ``/metrics``.
* :mod:`.lifecycle` — graceful startup/shutdown, signal handling,
  warm start, stats persistence; the ``rascad serve`` entry point.
"""

from .app import App, LIBRARY_MODELS, render_prometheus, solution_payload
from .lifecycle import Server, ServiceConfig, serve
from .protocol import (
    ProtocolError,
    Request,
    Response,
    error_for_exception,
    error_response,
    json_response,
    read_request,
)
from .queue import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    SolveQueue,
)

__all__ = [
    "App",
    "LIBRARY_MODELS",
    "render_prometheus",
    "solution_payload",
    "Server",
    "ServiceConfig",
    "serve",
    "ProtocolError",
    "Request",
    "Response",
    "error_for_exception",
    "error_response",
    "json_response",
    "read_request",
    "DeadlineExceededError",
    "QueueFullError",
    "ServiceClosedError",
    "SolveQueue",
]
