"""Route table and request handlers for the serving API.

The application is transport-agnostic: :meth:`App.handle` maps one
parsed :class:`~repro.service.protocol.Request` to one
:class:`~repro.service.protocol.Response`, so tests can drive it
without sockets and the lifecycle layer stays a thin connection loop.

Routes:

==============================  ==============================================
``POST /v1/solve``              spec JSON -> full measure set (queued, deduped)
``POST /v1/sweep``              parametric sweep over one block/global field
``POST /v1/validate``           Monte-Carlo cross-check of the analytic
                                solution
``POST /v1/jobs``               submit a durable background job (``202``;
                                ``200`` when deduplicated to an existing job)
``GET /v1/jobs``                list jobs, filterable by state/kind
``GET /v1/jobs/{id}``           one job's state machine position and result
``POST /v1/jobs/{id}/cancel``   cancel a queued or running job
``GET /v1/models``              registry model summaries
``POST /v1/models``             publish a spec as a version (``201``; the
                                regression gate answers ``409
                                regression_detected``)
``GET /v1/models/{n}``          one model's tags and version history
``GET /v1/models/{n}/versions/{d}``  one immutable version (lineage diff,
                                evaluation; ``?include_spec=1`` adds the
                                stored spec)
``POST /v1/models/{n}/tags``    move a tag (``{"tag", "digest"|"ref"}``)
                                or roll it back (``{"tag", "rollback":
                                true}``)
``GET /v1/library``             names of the built-in library models
``GET /v1/library/{n}``         one library model as a spec document
``POST /v1/cluster/workers``    register (and heartbeat) a worker with a
                                coordinator
``GET /v1/cluster/workers``     the coordinator's fleet table
``GET /v1/cluster/status``      coordinator totals, config, active
                                workloads
``POST /v1/events``             batch field-event ingest (atomic; ``429
                                backlog_full`` under admission pressure,
                                ``400 out_of_order`` / ``bad_request``
                                for broken payloads)
``GET /v1/calibration``         estimator status, fitted rates, last
                                proposal
``GET /v1/calibration/proposal``  the stored calibration proposal
``POST /v1/calibration/propose``  fit + drift-detect against a model
                                (``409 no_drift`` when nothing crossed)
``POST /v1/calibration/publish``  publish the proposal to the registry
                                (tagging runs the regression gate)
``GET /healthz``                liveness + queue gauges
``GET /metrics``                JSON metrics; Prometheus text with
                                ``?format=prometheus`` (or
                                ``Accept: text/plain``)
==============================  ==============================================

The job endpoints are the online face of :mod:`repro.jobs`: the service
only enqueues, inspects, and cancels — execution belongs to
``rascad jobs worker`` processes sharing the same SQLite store.  They
answer ``503 jobs_disabled`` when the server was started without a job
store.  The cluster endpoints are the same pattern for
:mod:`repro.cluster`: they answer ``503 cluster_disabled`` unless the
server runs as a coordinator, and with a coordinator attached
``POST /v1/sweep`` fans large value lists out across the registered
fleet (clients opt out per-request with ``"cluster": false``).

With a model registry attached (every :class:`~repro.service.Server`
builds one, seeded from :mod:`repro.library`), ``/v1/solve``,
``/v1/sweep``, ``/v1/validate`` and job submissions accept
``"model_ref": "name@tag"`` / ``"name@digest"`` in place of an inline
``"spec"``.  The ref resolves exactly once, before anything digests
the document, so cache keys, shard digests and result digests are
bit-identical to inline submission — and ``/v1/library`` becomes a
thin compatibility shim over ``/v1/models``.

Untrusted payloads go through :func:`repro.spec.parse_spec` — the same
validation path the CLI uses — so every malformed spec surfaces as a
``400`` with a stable error code, never a stack trace.
"""

from __future__ import annotations

import asyncio
import re
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..cluster import Coordinator
    from ..jobs import JobStore
    from ..registry import ModelRegistry
    from ..studies import StudySpec, StudyStore
    from ..telemetry import TelemetryHub

from ..core import compute_measures
from ..core.translator import SystemSolution
from ..database import PartsDatabase, builtin_database
from ..engine import Engine, metrics_payload
from ..errors import SolverError
from ..library import datacenter_model, e10000_model, workgroup_model
from ..num import SolverOptions
from ..obs.clock import Stopwatch
from ..obs.trace import (
    TRACE_PARENT_HEADER,
    carrier_from_header,
    get_tracer,
    remote_parent_span,
    use_span,
)
from ..spec import model_to_spec, parse_spec
from ..units import nines
from .protocol import (
    ProtocolError,
    Request,
    Response,
    error_for_exception,
    error_response,
    json_response,
)
from .queue import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    SolveQueue,
)

#: The built-in library models served under ``/v1/library/{name}``.
LIBRARY_MODELS: Dict[str, Callable] = {
    "datacenter": datacenter_model,
    "e10000": e10000_model,
    "workgroup": workgroup_model,
}

#: Legacy ``"method"`` spellings a request may select; full control
#: (backend, representation, tolerances) goes through the ``"solver"``
#: object, validated by :class:`repro.num.SolverOptions`.
ALLOWED_METHODS = ("direct", "gth", "power")

#: Caps on the work one request may ask for.
MAX_SWEEP_VALUES = 256
MAX_REPLICATIONS = 512

#: A coordinator fans sweeps out across the fleet, so it accepts far
#: larger value lists than a single process will compute inline.
MAX_CLUSTER_SWEEP_VALUES = 4096


def _field(
    payload: Mapping[str, object],
    key: str,
    kind: type,
    required: bool = True,
    default: object = None,
) -> object:
    """One validated request field, or a 400 with a precise message."""
    if key not in payload:
        if required:
            raise ProtocolError(
                400, "invalid_request", f"missing required field {key!r}"
            )
        return default
    value = payload[key]
    if kind is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, kind) or (
        isinstance(value, bool) and kind is not bool
    ):
        raise ProtocolError(
            400, "invalid_request",
            f"field {key!r} must be a {kind.__name__}, "
            f"got {type(value).__name__}",
        )
    return value


class App:
    """The serving application: routes, handlers, per-route metrics."""

    def __init__(
        self,
        engine: Engine,
        queue: SolveQueue,
        database: Optional[PartsDatabase] = None,
        request_timeout: float = 30.0,
        jobs: Optional["JobStore"] = None,
        default_solver: Optional[SolverOptions] = None,
        cluster: Optional["Coordinator"] = None,
        registry: Optional["ModelRegistry"] = None,
        studies: Optional["StudyStore"] = None,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        from ..studies import StudyStore

        self.engine = engine
        self.queue = queue
        self.database = database if database is not None else builtin_database()
        self.request_timeout = request_timeout
        self.jobs = jobs
        self.cluster = cluster
        self.registry = registry
        self.telemetry = telemetry
        # Studies are always enabled: results are JSON documents, so
        # an in-memory store costs nothing for embedded servers.
        self.studies = studies if studies is not None else StudyStore()
        self.default_solver = (
            default_solver if default_solver is not None else SolverOptions()
        )
        self.started_at = time.monotonic()
        self.in_flight = 0
        self.in_flight_peak = 0
        self._routes: Dict[str, Callable] = {
            "POST /v1/solve": self._solve,
            "POST /v1/sweep": self._sweep,
            "POST /v1/validate": self._validate,
            "POST /v1/jobs": self._jobs_submit,
            "GET /v1/jobs": self._jobs_index,
            "POST /v1/studies": self._studies_submit,
            "GET /v1/studies": self._studies_index,
            "GET /v1/models": self._models_index,
            "POST /v1/models": self._models_publish,
            "GET /v1/library": self._library_index,
            "GET /v1/cluster/workers": self._cluster_workers,
            "POST /v1/cluster/workers": self._cluster_register,
            "GET /v1/cluster/status": self._cluster_status,
            "POST /v1/events": self._events_ingest,
            "GET /v1/calibration": self._calibration_status,
            "GET /v1/calibration/proposal": self._calibration_proposal,
            "POST /v1/calibration/propose": self._calibration_propose,
            "POST /v1/calibration/publish": self._calibration_publish,
            "GET /healthz": self._healthz,
            "GET /metrics": self._metrics,
            "GET /debug/traces": self._debug_traces,
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def handle(self, request: Request) -> Response:
        """Serve one request; never raises, always meters.

        With tracing enabled every request runs under a
        ``service.request`` root span whose trace id is echoed back in
        the ``X-Rascad-Trace-Id`` response header, so a caller can pull
        the full tree from ``/debug/traces`` (or the JSONL export).
        """
        route = self._route_label(request)
        stats = self.engine.stats
        self.in_flight += 1
        stats.set_gauge("in_flight", self.in_flight)
        if self.in_flight > self.in_flight_peak:
            self.in_flight_peak = self.in_flight
            stats.set_gauge("in_flight_peak", self.in_flight_peak)
        # A coordinator dispatching a shard here ships its span ids in
        # the trace-parent header; adopting them as the remote parent
        # stitches this worker's request tree into the cluster trace.
        remote_parent = None
        header = request.headers.get(TRACE_PARENT_HEADER.lower())
        if header:
            carrier = carrier_from_header(header)
            if carrier is not None:
                remote_parent = remote_parent_span(carrier)
        watch = Stopwatch()
        try:
            with use_span(remote_parent), get_tracer().span(
                "service.request", route=route, method=request.method,
                path=request.path,
            ) as span:
                try:
                    response = await self._dispatch(request)
                except QueueFullError as error:
                    response = error_response(
                        429, "queue_full", str(error),
                        retry_after=error.retry_after,
                    )
                except DeadlineExceededError as error:
                    response = error_response(
                        504, "deadline_exceeded", str(error)
                    )
                except ServiceClosedError as error:
                    response = error_response(
                        503, "service_unavailable", str(error)
                    )
                except Exception as error:  # noqa: BLE001 - mapped below
                    response = error_for_exception(error)
                span.set_attr("status", response.status)
                if response.status >= 500:
                    span.record_error(f"status {response.status}")
                if span.trace_id:
                    response.headers.setdefault(
                        "X-Rascad-Trace-Id", span.trace_id
                    )
        finally:
            self.in_flight -= 1
            stats.set_gauge("in_flight", self.in_flight)
        stats.record_request(route, response.status)
        stats.record_latency(route, watch.elapsed)
        return response

    def _route_label(self, request: Request) -> str:
        """The metrics label: known routes literally, others bucketed."""
        if request.path.startswith("/v1/library/"):
            return f"{request.method} /v1/library/{{name}}"
        if request.path.startswith("/v1/jobs/"):
            if request.path.endswith("/cancel"):
                return f"{request.method} /v1/jobs/{{id}}/cancel"
            return f"{request.method} /v1/jobs/{{id}}"
        if request.path.startswith("/v1/studies/"):
            if request.path.endswith("/front"):
                return f"{request.method} /v1/studies/{{id}}/front"
            if "/candidates/" in request.path:
                return (
                    f"{request.method} "
                    "/v1/studies/{id}/candidates/{index}"
                )
            return f"{request.method} /v1/studies/{{id}}"
        if request.path.startswith("/v1/models/"):
            tail = request.path[len("/v1/models/"):]
            if tail.endswith("/tags"):
                return f"{request.method} /v1/models/{{name}}/tags"
            if "/versions/" in tail:
                return (
                    f"{request.method} "
                    "/v1/models/{name}/versions/{digest}"
                )
            return f"{request.method} /v1/models/{{name}}"
        key = f"{request.method} {request.path}"
        if key in self._routes:
            return key
        return f"{request.method} (unmatched)"

    async def _dispatch(self, request: Request) -> Response:
        if request.path.startswith("/v1/library/"):
            if request.method != "GET":
                return self._method_not_allowed(request)
            return self._library(request.path[len("/v1/library/"):])
        if request.path.startswith("/v1/jobs/"):
            return await self._jobs_item(request)
        if request.path.startswith("/v1/studies/"):
            return await self._studies_item(request)
        if request.path.startswith("/v1/models/"):
            return await self._models_item(request)
        handler = self._routes.get(f"{request.method} {request.path}")
        if handler is not None:
            return await _maybe_await(handler(request))
        known_paths = {
            key.split(" ", 1)[1] for key in self._routes
        }
        if request.path in known_paths:
            return self._method_not_allowed(request)
        return error_response(
            404, "not_found", f"no route for {request.path!r}"
        )

    def _method_not_allowed(self, request: Request) -> Response:
        return error_response(
            405, "method_not_allowed",
            f"{request.method} is not supported on {request.path!r}",
        )

    # ------------------------------------------------------------------
    # model endpoints
    # ------------------------------------------------------------------
    def _request_spec_doc(
        self, payload: Mapping[str, object]
    ) -> Dict[str, object]:
        """The request's spec document: inline, or resolved from a ref.

        ``"model_ref"`` substitutes a registry reference
        (``name@tag`` / ``name@digest``) for an inline ``"spec"``.
        Resolution happens here, exactly once, before anything digests
        the document — so engine cache keys, cluster shard digests and
        result digests are computed from the resolved spec and stay
        bit-identical to inline submission.
        """
        has_spec = "spec" in payload
        has_ref = "model_ref" in payload
        if has_spec and has_ref:
            raise ProtocolError(
                400, "invalid_request",
                "provide either 'spec' or 'model_ref', not both",
            )
        if has_ref:
            ref = _field(payload, "model_ref", str)
            return self._registry_required().resolve_spec(ref)
        return _field(payload, "spec", dict)

    def _parse_request_model(self, payload: Mapping[str, object]):
        return parse_spec(
            self._request_spec_doc(payload), database=self.database
        )

    def _request_deadline(self, payload: Mapping[str, object]) -> float:
        timeout = _field(
            payload, "timeout_seconds", float,
            required=False, default=self.request_timeout,
        )
        timeout = min(max(float(timeout), 0.001), self.request_timeout)
        return time.monotonic() + timeout

    def _method_of(self, payload: Mapping[str, object]) -> str:
        method = _field(
            payload, "method", str, required=False, default="direct"
        )
        if method not in ALLOWED_METHODS:
            raise ProtocolError(
                400, "invalid_request",
                f"unknown method {method!r}; "
                f"expected one of {sorted(ALLOWED_METHODS)}",
            )
        return method

    def _solver_options_of(
        self, payload: Mapping[str, object]
    ) -> SolverOptions:
        """The request's solver configuration, as canonical options.

        Precedence: the request's ``solver`` object > its legacy
        ``method`` string > the server's configured default (the
        ``rascad serve`` solver flags).  Any invalid name or tolerance
        is the client's fault, so :class:`~repro.errors.SolverError`
        maps to a 400 here rather than the generic 500 a mid-solve
        failure gets.
        """
        base = self.default_solver
        if "method" in payload:
            base = base.with_changes(
                steady_method=self._method_of(payload)
            )
        solver = _field(payload, "solver", dict, required=False)
        if solver is None:
            return base
        try:
            return SolverOptions.from_dict({**base.to_dict(), **solver})
        except SolverError as exc:
            raise ProtocolError(
                400, "invalid_request", f"invalid solver options: {exc}"
            ) from exc

    async def _solve(self, request: Request) -> Response:
        payload = request.json()
        model = self._parse_request_model(payload)
        method = self._solver_options_of(payload)
        mission = _field(payload, "mission", float, required=False)
        deadline = self._request_deadline(payload)
        solution = await self.queue.solve(model, method, deadline)
        return json_response(solution_payload(solution, mission))

    async def _sweep(self, request: Request) -> Response:
        payload = request.json()
        spec_doc = self._request_spec_doc(payload)
        model = parse_spec(spec_doc, database=self.database)
        method = self._solver_options_of(payload)
        block = _field(payload, "block", str, required=False)
        field_name = _field(payload, "field", str)
        raw_values = _field(payload, "values", list)
        # A coordinator fans the sweep out across its fleet unless the
        # client opts out with ``"cluster": false`` (the shard requests
        # themselves carry that opt-out, so fleets of coordinators
        # cannot recurse).
        fan_out = self.cluster is not None and _field(
            payload, "cluster", bool, required=False, default=True
        )
        cap = MAX_CLUSTER_SWEEP_VALUES if fan_out else MAX_SWEEP_VALUES
        if not raw_values or len(raw_values) > cap:
            raise ProtocolError(
                400, "invalid_request",
                f"'values' must hold 1..{cap} numbers, "
                f"got {len(raw_values)}",
            )
        values: List[float] = []
        for position, value in enumerate(raw_values):
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise ProtocolError(
                    400, "invalid_request",
                    f"values[{position}] must be a number",
                )
            values.append(float(value))
        if fan_out and len(values) >= self.cluster.config.fanout_threshold:
            return await self._cluster_sweep(
                payload, spec_doc, model, method, block, field_name,
                values,
            )
        if len(values) > MAX_SWEEP_VALUES:
            raise ProtocolError(
                400, "invalid_request",
                f"'values' must hold 1..{MAX_SWEEP_VALUES} numbers "
                f"without cluster fan-out, got {len(values)}",
            )
        if block is None:
            points = await asyncio.to_thread(
                self.engine.sweep_global_field,
                model, field_name, values, method,
            )
        else:
            points = await asyncio.to_thread(
                self.engine.sweep_block_field,
                model, block, field_name, values, method,
            )
        return json_response({
            "model": model.name,
            "field": field_name,
            "block": block,
            "points": [
                {
                    "value": point.value,
                    "availability": point.availability,
                    "yearly_downtime_minutes": (
                        point.yearly_downtime_minutes
                    ),
                }
                for point in points
            ],
        })

    async def _validate(self, request: Request) -> Response:
        payload = request.json()
        model = self._parse_request_model(payload)
        method = self._solver_options_of(payload)
        replications = _field(
            payload, "replications", int, required=False, default=40
        )
        if not 2 <= replications <= MAX_REPLICATIONS:
            raise ProtocolError(
                400, "invalid_request",
                f"'replications' must be 2..{MAX_REPLICATIONS}",
            )
        horizon = _field(
            payload, "horizon", float, required=False, default=30_000.0
        )
        seed = _field(payload, "seed", int, required=False, default=0)
        deadline = self._request_deadline(payload)
        solution = await self.queue.solve(model, method, deadline)
        result = await asyncio.to_thread(
            self.engine.simulate_system,
            solution,
            horizon,
            replications,
            seed,
        )
        agree = result.contains(solution.availability)
        return json_response({
            "model": model.name,
            "analytic_availability": solution.availability,
            "simulated_mean": result.mean,
            "interval_low": result.low,
            "interval_high": result.high,
            "replications": result.replications,
            "horizon_hours": horizon,
            "agreement": agree,
        })

    # ------------------------------------------------------------------
    # cluster endpoints
    # ------------------------------------------------------------------
    def _coordinator(self) -> "Coordinator":
        if self.cluster is None:
            raise ProtocolError(
                503, "cluster_disabled",
                "this server is not a cluster coordinator; start it "
                "with rascad cluster coordinator (or rascad serve "
                "with --cluster / --cluster-worker)",
            )
        return self.cluster

    async def _cluster_sweep(
        self,
        payload: Mapping[str, object],
        spec_doc: Mapping[str, object],
        model,
        method: SolverOptions,
        block: Optional[str],
        field_name: str,
        values: List[float],
    ) -> Response:
        """Fan one sweep out over the fleet and merge the shards.

        The workload pins the request's fully resolved solver options,
        so every worker solves with identical numerics whatever its own
        defaults are — a precondition for the bit-identity guarantee.
        ``spec_doc`` is the already-resolved document (inline spec or
        registry ref), so shard digests never depend on how the client
        spelled the model.
        """
        from ..cluster import SweepWorkload

        workload = SweepWorkload(
            dict(spec_doc),
            field_name,
            values,
            block=block,
            solver=method.to_dict(),
            model_name=model.name,
        )
        timeout = _field(payload, "timeout_seconds", float, required=False)
        merged = await asyncio.to_thread(
            self._coordinator().run_workload, workload, timeout
        )
        self.engine.stats.increment("cluster_sweeps")
        return json_response(merged)

    def _cluster_workers(self, request: Request) -> Response:
        coordinator = self._coordinator()
        return json_response(
            {"workers": coordinator.membership.snapshot()}
        )

    def _cluster_register(self, request: Request) -> Response:
        from ..cluster import ClusterError

        coordinator = self._coordinator()
        payload = request.json()
        url = _field(payload, "url", str)
        try:
            info = coordinator.membership.register(url)
        except ClusterError as exc:
            raise ProtocolError(
                400, "invalid_request", str(exc)
            ) from exc
        self.engine.stats.increment("cluster_registrations")
        return json_response({
            "worker": info.to_dict(),
            "heartbeat_interval": coordinator.config.heartbeat_interval,
            "lease_timeout": coordinator.config.lease_timeout,
        })

    def _cluster_status(self, request: Request) -> Response:
        return json_response(self._coordinator().status())

    # ------------------------------------------------------------------
    # telemetry endpoints
    # ------------------------------------------------------------------
    def _telemetry_required(self) -> "TelemetryHub":
        if self.telemetry is None:
            raise ProtocolError(
                503, "telemetry_disabled",
                "this server was started without telemetry; "
                "rascad serve attaches a hub by default",
            )
        return self.telemetry

    async def _events_ingest(self, request: Request) -> Response:
        """Batch field-event ingest, atomic per batch.

        Malformed or out-of-order payloads answer a structured 400
        (``bad_request`` / ``out_of_order``) without touching state; a
        full admission backlog answers 429 with ``Retry-After``.
        """
        from ..telemetry import BacklogFullError

        hub = self._telemetry_required()
        payload = request.json()
        events = _field(payload, "events", list)
        try:
            result = await asyncio.to_thread(hub.ingest, events)
        except BacklogFullError as error:
            details = error.details if isinstance(
                error.details, dict
            ) else None
            return error_response(
                429, "backlog_full", str(error),
                retry_after=1.0, details=details,
            )
        return json_response(result)

    async def _calibration_status(self, request: Request) -> Response:
        hub = self._telemetry_required()
        return json_response(await asyncio.to_thread(hub.summary))

    async def _calibration_proposal(
        self, request: Request
    ) -> Response:
        hub = self._telemetry_required()
        return json_response({"proposal": hub.require_proposal()})

    async def _calibration_propose(self, request: Request) -> Response:
        """Fit, detect drift against the request's model, and build a
        calibration proposal (409 ``no_drift`` when nothing crossed)."""
        from ..telemetry import DriftConfig, TelemetryError

        hub = self._telemetry_required()
        payload = request.json()
        model = self._parse_request_model(payload)
        options = self._solver_options_of(payload)
        drift_raw = _field(payload, "drift", dict, required=False)
        drift_config = None
        if drift_raw is not None:
            try:
                drift_config = DriftConfig(
                    window_hours=hub.estimator.window_hours,
                    **drift_raw,
                )
            except (TelemetryError, TypeError) as exc:
                raise ProtocolError(
                    400, "invalid_request",
                    f"invalid drift config: {exc}",
                ) from exc
        confidence = _field(
            payload, "confidence", float, required=False, default=0.95
        )
        proposal = await asyncio.to_thread(
            hub.propose, model, self.engine, drift_config, options,
            None, confidence,
        )
        return json_response({"proposal": proposal}, status=201)

    async def _calibration_publish(self, request: Request) -> Response:
        """Publish the stored proposal as a registry version.

        Tagging opts into the availability regression gate — a
        calibration that worsens the tag holder still gets its 409.
        """
        hub = self._telemetry_required()
        registry = self._registry_required()
        payload = request.json()
        name = _field(payload, "name", str)
        tag = _field(payload, "tag", str, required=False)
        force = _field(
            payload, "force", bool, required=False, default=False
        )
        threshold = _field(payload, "threshold", float, required=False)
        result = await asyncio.to_thread(
            hub.publish, registry, name, tag, force, threshold
        )
        return json_response(
            result.to_dict(), status=201 if result.created else 200
        )

    # ------------------------------------------------------------------
    # background-job endpoints
    # ------------------------------------------------------------------
    def _jobs_store(self) -> "JobStore":
        if self.jobs is None:
            raise ProtocolError(
                503, "jobs_disabled",
                "this server was started without a job store; "
                "run rascad serve with --jobs-db or --cache-dir",
            )
        return self.jobs

    async def _jobs_submit(self, request: Request) -> Response:
        from ..analysis import expand_values
        from ..jobs import JOB_KINDS, JobSpec

        store = self._jobs_store()
        payload = request.json()
        kind = _field(payload, "kind", str)
        if kind not in JOB_KINDS:
            raise ProtocolError(
                400, "invalid_request",
                f"unknown job kind {kind!r}; "
                f"expected one of {sorted(JOB_KINDS)}",
            )
        spec = self._request_spec_doc(payload)
        params = dict(
            _field(payload, "params", dict, required=False, default={})
        )
        if kind == "sweep" and "values" in params:
            # Accept the CLI's range shorthand over HTTP too: a string
            # or a mixed token list expands to the explicit values the
            # job id digests over.
            raw = params["values"]
            tokens = [raw] if isinstance(raw, str) else raw
            if not isinstance(tokens, list):
                raise ProtocolError(
                    400, "invalid_request",
                    "params.values must be a list or a "
                    "start:stop:count string",
                )
            params["values"] = expand_values(tokens)
        if "solver" in params:
            # Reject bad solver options at submit time: a worker would
            # only discover them hours later, after the queue drains.
            try:
                SolverOptions.from_dict(params["solver"])
            except SolverError as exc:
                raise ProtocolError(
                    400, "invalid_request",
                    f"invalid params.solver: {exc}",
                ) from exc
        priority = _field(
            payload, "priority", int, required=False, default=0
        )
        max_attempts = _field(
            payload, "max_attempts", int, required=False, default=3
        )
        if not 1 <= max_attempts <= 10:
            raise ProtocolError(
                400, "invalid_request", "max_attempts must be 1..10"
            )
        job = JobSpec(
            kind=kind, spec=spec, params=params,
            priority=priority, max_attempts=max_attempts,
        )
        record, created = await asyncio.to_thread(store.submit, job)
        self.engine.stats.increment(
            "jobs_submitted" if created else "jobs_dedup_hits"
        )
        return json_response(
            {"job": record.to_dict(), "created": created},
            status=202 if created else 200,
        )

    async def _jobs_index(self, request: Request) -> Response:
        store = self._jobs_store()
        state = request.query.get("state")
        kind = request.query.get("kind")
        try:
            limit = int(request.query.get("limit", "50"))
        except ValueError:
            raise ProtocolError(
                400, "invalid_request", "limit must be an integer"
            ) from None
        records = await asyncio.to_thread(
            store.list_jobs, state, kind, max(1, min(limit, 500))
        )
        return json_response({
            "jobs": [record.to_dict() for record in records],
            "counts": await asyncio.to_thread(store.counts),
        })

    async def _jobs_item(self, request: Request) -> Response:
        from ..jobs import JobNotFoundError

        store = self._jobs_store()
        tail = request.path[len("/v1/jobs/"):]
        if tail.endswith("/cancel"):
            if request.method != "POST":
                return self._method_not_allowed(request)
            job_id = tail[: -len("/cancel")]
            try:
                record = await asyncio.to_thread(store.cancel, job_id)
            except JobNotFoundError as error:
                return error_response(404, "job_not_found", str(error))
            self.engine.stats.increment("jobs_cancel_requests")
            return json_response({"job": record.to_dict()})
        if request.method != "GET":
            return self._method_not_allowed(request)
        try:
            record = await asyncio.to_thread(store.get, tail)
        except JobNotFoundError as error:
            return error_response(404, "job_not_found", str(error))
        include_spec = request.query.get("include_spec") in ("1", "true")
        return json_response(
            {"job": record.to_dict(include_spec=include_spec)}
        )

    # ------------------------------------------------------------------
    # design-space study endpoints
    # ------------------------------------------------------------------
    def _study_document(
        self, payload: Mapping[str, object]
    ) -> Dict[str, object]:
        """The study document with its base resolved at the front door.

        Accepts an inline ``base`` spec or a ``model_ref`` registry
        reference — resolution happens once, here, so ref-based
        studies share their study id (and every cached candidate
        solve) with inline submission of the same exploration.
        """
        from ..studies.spec import SEARCH_KEYS

        has_base = "base" in payload
        has_ref = "model_ref" in payload
        if has_base == has_ref:
            raise ProtocolError(
                400, "invalid_request",
                "provide either 'base' or 'model_ref', not "
                + ("both" if has_base else "neither"),
            )
        if has_ref:
            ref = _field(payload, "model_ref", str)
            base = self._registry_required().resolve_spec(ref)
        else:
            base = _field(payload, "base", dict)
        document: Dict[str, object] = {"base": dict(base)}
        for key in SEARCH_KEYS:
            if key in payload:
                document[key] = payload[key]
        return document

    def _study_evaluator(self, study: "StudySpec", timeout):
        """Per-round evaluation, fanned over the cluster when one is
        attached and the round is worth sharding.

        Candidates ship as plain batch solves with the study's solver
        pinned, so a fleet-evaluated round returns bit-identical
        availabilities to a local :meth:`Engine.solve_many` — the
        merged front digest equals the single-process digest.
        """
        from ..cluster import StudyWorkload
        from ..studies import INVALID_AVAILABILITY, study_digest
        from ..studies.runner import evaluate_candidates

        coordinator = self.cluster
        study_id = study_digest(study, database=self.database)
        solver = SolverOptions(steady_method=study.method).to_dict()
        state = {"round": 0}

        def evaluate(candidates):
            round_index = state["round"]
            state["round"] += 1
            valid = [
                (position, candidate)
                for position, candidate in enumerate(candidates)
                if candidate.model is not None
            ]
            if (
                coordinator is None
                or len(valid) < coordinator.config.fanout_threshold
            ):
                return evaluate_candidates(
                    self.engine, candidates, study.method
                )
            workload = StudyWorkload(
                study_id,
                round_index,
                [
                    model_to_spec(candidate.model)
                    for _position, candidate in valid
                ],
                solver=solver,
            )
            merged = coordinator.run_workload(workload, timeout)
            availabilities = [INVALID_AVAILABILITY] * len(candidates)
            for (position, _candidate), availability in zip(
                valid, merged["availabilities"]
            ):
                availabilities[position] = float(availability)
            self.engine.stats.increment("cluster_study_rounds")
            return availabilities

        return evaluate

    def _run_study_sync(
        self, study: "StudySpec", use_cluster: bool, timeout
    ) -> Dict[str, object]:
        from ..studies import run_study

        evaluate = None
        if use_cluster and self.cluster is not None:
            evaluate = self._study_evaluator(study, timeout)
        return run_study(
            study,
            engine=self.engine,
            database=self.database,
            evaluate=evaluate,
        )

    async def _studies_submit(self, request: Request) -> Response:
        from ..studies import parse_study, study_digest

        payload = request.json()
        document = self._study_document(payload)
        study = parse_study(document, database=self.database)
        study_id = study_digest(study, database=self.database)
        record, created = await asyncio.to_thread(
            self.studies.submit, study_id, study.to_dict()
        )
        if not created and record.get("state") == "succeeded":
            self.engine.stats.increment("studies_dedup_hits")
            return json_response(
                {"study": record, "created": False}, status=200
            )
        use_cluster = _field(
            payload, "cluster", bool, required=False, default=True
        )
        timeout = _field(
            payload, "timeout_seconds", float, required=False
        )
        try:
            result = await asyncio.to_thread(
                self._run_study_sync, study, use_cluster, timeout
            )
        except Exception as error:
            await asyncio.to_thread(
                self.studies.fail,
                study_id,
                f"{type(error).__name__}: {error}",
            )
            self.engine.stats.increment("studies_failed")
            raise
        record = await asyncio.to_thread(
            self.studies.succeed, study_id, result
        )
        self.engine.stats.increment("studies_completed")
        return json_response(
            {"study": record, "created": created},
            status=201 if created else 200,
        )

    async def _studies_index(self, request: Request) -> Response:
        return json_response({
            "studies": await asyncio.to_thread(self.studies.list),
            "counts": await asyncio.to_thread(self.studies.counts),
        })

    async def _studies_item(self, request: Request) -> Response:
        from ..studies import front_rows

        if request.method != "GET":
            return self._method_not_allowed(request)
        tail = request.path[len("/v1/studies/"):]
        parts = tail.split("/")
        study_id = parts[0]
        record = await asyncio.to_thread(self.studies.get, study_id)
        if len(parts) == 1:
            return json_response({"study": record})
        result = record.get("result")
        if not isinstance(result, dict):
            return error_response(
                409, "study_not_finished",
                f"study {study_id} is {record.get('state')}; "
                "no result yet",
            )
        if parts[1:] == ["front"]:
            return json_response({
                "study_id": study_id,
                "front": front_rows(result),
                "winner": result.get("winner"),
                "result_digest": result.get("result_digest"),
            })
        if len(parts) == 3 and parts[1] == "candidates":
            try:
                index = int(parts[2])
            except ValueError:
                raise ProtocolError(
                    400, "invalid_request",
                    "candidate index must be an integer",
                ) from None
            for row in result.get("candidates", []):
                if row.get("index") == index:
                    return json_response({
                        "study_id": study_id,
                        "candidate": row,
                        "on_front": index in result.get("front", []),
                    })
            return error_response(
                404, "not_found",
                f"study {study_id} has no candidate {index}",
            )
        return error_response(
            404, "not_found", f"no route for {request.path!r}"
        )

    # ------------------------------------------------------------------
    # model-registry endpoints
    # ------------------------------------------------------------------
    def _registry_required(self) -> "ModelRegistry":
        if self.registry is None:
            raise ProtocolError(
                503, "registry_disabled",
                "this server was started without a model registry; "
                "rascad serve attaches one by default",
            )
        return self.registry

    async def _models_index(self, request: Request) -> Response:
        registry = self._registry_required()
        return json_response({
            "models": await asyncio.to_thread(registry.list_models),
        })

    async def _models_publish(self, request: Request) -> Response:
        registry = self._registry_required()
        payload = request.json()
        name = _field(payload, "name", str)
        spec = _field(payload, "spec", dict)
        tag = _field(payload, "tag", str, required=False)
        force = _field(
            payload, "force", bool, required=False, default=False
        )
        threshold = _field(payload, "threshold", float, required=False)
        description = _field(
            payload, "description", str, required=False
        )
        result = await asyncio.to_thread(
            registry.publish, spec, name,
            description=description, tag=tag, force=force,
            threshold=threshold,
        )
        return json_response(
            result.to_dict(), status=201 if result.created else 200
        )

    async def _models_item(self, request: Request) -> Response:
        """Dispatch ``/v1/models/{name}...`` sub-resources."""
        registry = self._registry_required()
        tail = request.path[len("/v1/models/"):]
        if tail.endswith("/tags"):
            if request.method != "POST":
                return self._method_not_allowed(request)
            name = tail[: -len("/tags")]
            return await self._models_tags(request, registry, name)
        if "/versions/" in tail:
            if request.method != "GET":
                return self._method_not_allowed(request)
            name, _, selector = tail.partition("/versions/")
            record = await asyncio.to_thread(
                registry.version_detail, name, selector
            )
            include_spec = request.query.get("include_spec") in (
                "1", "true"
            )
            return json_response({
                "version": record.to_dict(include_spec=include_spec),
            })
        if request.method != "GET":
            return self._method_not_allowed(request)
        return json_response({
            "model": await asyncio.to_thread(
                registry.model_detail, tail
            ),
        })

    async def _models_tags(
        self, request: Request, registry: "ModelRegistry", name: str
    ) -> Response:
        """Move a tag to a version, or roll it back one step."""
        payload = request.json()
        tag = _field(payload, "tag", str)
        rollback = _field(
            payload, "rollback", bool, required=False, default=False
        )
        if rollback:
            current, previous = await asyncio.to_thread(
                registry.rollback, name, tag
            )
            return json_response({
                "name": name,
                "tag": tag,
                "rolled_back_from": current,
                "digest": previous,
            })
        selector = _field(payload, "digest", str, required=False)
        if selector is None:
            selector = _field(payload, "ref", str, required=False)
        if selector is None:
            raise ProtocolError(
                400, "invalid_request",
                "tag moves need 'digest' (or 'ref'), or "
                "'rollback': true",
            )
        previous, digest = await asyncio.to_thread(
            registry.move_tag, name, tag, selector
        )
        return json_response({
            "name": name,
            "tag": tag,
            "previous": previous,
            "digest": digest,
        })

    # ------------------------------------------------------------------
    # library + observability endpoints
    # ------------------------------------------------------------------
    def _library_index(self, request: Request) -> Response:
        """Library names — a compatibility shim over the registry.

        With a registry attached the index lists every registered
        model (the library seeds are published at startup); without
        one it falls back to the built-in factories.
        """
        if self.registry is not None:
            return json_response({"models": self.registry.names()})
        return json_response({"models": sorted(LIBRARY_MODELS)})

    def _library(self, name: str) -> Response:
        if self.registry is not None:
            try:
                return json_response(self.registry.resolve_spec(name))
            except Exception as error:  # noqa: BLE001 - mapped envelope
                return error_for_exception(error)
        factory = LIBRARY_MODELS.get(name)
        if factory is None:
            return error_response(
                404, "not_found",
                f"no library model {name!r}; "
                f"known: {sorted(LIBRARY_MODELS)}",
            )
        return json_response(model_to_spec(factory()))

    def _healthz(self, request: Request) -> Response:
        return json_response({
            "status": "ok",
            "uptime_seconds": time.monotonic() - self.started_at,
            "in_flight": self.in_flight,
            "queue_depth": self.queue.depth,
        })

    def _service_section(self) -> Dict[str, object]:
        """The ``service`` block of the metrics document.

        Carries the admission-pressure gauges operators watch during
        overload — current and peak queue depth / in-flight requests,
        and saturation as a fraction of the admission bound — plus the
        per-state job gauges when a job store is attached.
        """
        section: Dict[str, object] = {
            "uptime_seconds": time.monotonic() - self.started_at,
            "in_flight": self.in_flight,
            "in_flight_peak": self.in_flight_peak,
            "queue_depth": self.queue.depth,
            "queue_depth_peak": self.queue.depth_peak,
            "queue_saturation": self.queue.depth / self.queue.max_queue,
            "max_queue": self.queue.max_queue,
        }
        if self.jobs is not None:
            for state, count in self.jobs.counts().items():
                section[f"jobs_{state}"] = count
        for state, count in self.studies.counts().items():
            section[f"studies_{state}"] = count
        if self.cluster is not None:
            section["cluster_workers_alive"] = len(
                self.cluster.membership.alive()
            )
            section["cluster_workers_known"] = len(self.cluster.membership)
            section["cluster_jobs_completed"] = self.cluster.jobs_completed
            section["cluster_shards_completed"] = (
                self.cluster.shards_completed
            )
            section["cluster_shards_stolen"] = self.cluster.shards_stolen
            section["cluster_shards_retried"] = self.cluster.shards_retried
        return section

    def _storage_section(self) -> Dict[str, object]:
        """Per-store database health: the ``storage`` metrics block.

        One entry per attached store, each the
        :meth:`repro.store.SqliteStore.health` payload — size,
        ``user_version``, transaction and busy-retry totals — rendered
        as ``rascad_store_*`` series in the Prometheus exposition.
        """
        stores: Dict[str, object] = {}
        if self.jobs is not None:
            stores["jobs"] = self.jobs.db.health()
        if self.cluster is not None:
            stores["cluster"] = self.cluster.store.db.health()
        if self.registry is not None:
            stores["registry"] = self.registry.store.db.health()
        stores["studies"] = self.studies.db.health()
        if self.telemetry is not None:
            stores["telemetry"] = self.telemetry.db.health()
        return stores

    def _debug_traces(self, request: Request) -> Response:
        """Recent spans from the in-memory ring, newest first.

        Query parameters: ``trace_id`` and ``name`` filter, ``limit``
        caps the result (default 100, max 1000).  Answers
        ``404 tracing_disabled`` when the process runs without tracing.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return error_response(
                404, "tracing_disabled",
                "tracing is off; start the server with --trace-dir "
                "or --trace",
            )
        try:
            limit = int(request.query.get("limit", "100"))
        except ValueError:
            raise ProtocolError(
                400, "invalid_request", "limit must be an integer"
            ) from None
        spans = tracer.exporter.recent(
            limit=max(1, min(limit, 1000)),
            trace_id=request.query.get("trace_id"),
            name=request.query.get("name"),
        )
        return json_response({
            "spans": spans,
            "buffered": len(tracer.exporter),
            "dropped": tracer.exporter.dropped,
        })

    def _metrics(self, request: Request) -> Response:
        disk_usage = None
        if self.engine.cache is not None:
            disk_usage = self.engine.cache.disk_usage()
        payload = metrics_payload(
            self.engine.stats_snapshot(),
            disk_usage=disk_usage,
            service=self._service_section(),
        )
        if self.registry is not None:
            payload["registry"] = self.registry.counts()
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.counts()
        if self.cluster is not None:
            payload["cluster"] = {
                "workers": self.cluster.membership.snapshot(),
                "totals": {
                    "jobs_completed": self.cluster.jobs_completed,
                    "shards_completed": self.cluster.shards_completed,
                    "shards_stolen": self.cluster.shards_stolen,
                    "shards_retried": self.cluster.shards_retried,
                },
            }
        payload["storage"] = self._storage_section()
        wants_prometheus = (
            request.query.get("format") == "prometheus"
            or "text/plain" in request.headers.get("accept", "")
        )
        if not wants_prometheus:
            return json_response(payload)
        return Response(
            body=render_prometheus(payload).encode("utf-8"),
            content_type="text/plain; version=0.0.4",
        )


def solution_payload(
    solution: SystemSolution, mission: Optional[float] = None
) -> Dict[str, object]:
    """The ``POST /v1/solve`` response body for a solved model.

    Derives the same measure set the CLI prints, from the same
    :func:`repro.core.compute_measures` call — byte-for-byte the CLI's
    numbers.
    """
    measures = compute_measures(solution, mission_time_hours=mission)
    return {
        "model": solution.model.name,
        "availability": measures.availability,
        "nines": nines(measures.availability),
        "yearly_downtime_minutes": measures.yearly_downtime_minutes,
        "failures_per_year": measures.failures_per_year,
        "mean_downtime_minutes": measures.mean_downtime_hours * 60.0,
        "mission_time_hours": measures.mission_time_hours,
        "interval_availability": measures.interval_availability,
        "reliability_at_mission": measures.reliability_at_mission,
        "mttf_hours": measures.mttf_hours,
    }


#: Engine snapshot fields that only ever increase — rendered as
#: Prometheus counters (``_total`` suffix); everything else in the
#: snapshot is a gauge.
_ENGINE_COUNTER_FIELDS = frozenset((
    "system_solves",
    "system_cache_hits",
    "block_solves",
    "block_cache_hits",
    "disk_hits",
    "tasks_submitted",
    "tasks_completed",
    "tasks_retried",
    "tasks_failed",
))

#: Characters legal in a Prometheus metric name (after the first).
_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """``name`` coerced into a valid Prometheus metric name."""
    cleaned = _METRIC_NAME_RE.sub("_", name)
    if not cleaned:
        return "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """A label value escaped per the Prometheus exposition format.

    Backslash, double quote, and newline are the three characters the
    format requires escaping inside a quoted label value.
    """
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help_text(value: str) -> str:
    """``# HELP`` text escaped to stay on one exposition line.

    The format escapes backslash and newline in help text; carriage
    return is escaped too so no parser ever sees a bare line break.
    """
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
    )


def format_metric_value(value: object) -> str:
    """One sample value, formatted to round-trip exactly.

    Integral values render as bare integers (``1``, not ``1.0``);
    everything else uses ``repr``'s shortest form, which ``float()``
    parses back to the identical double.
    """
    number = float(value)  # type: ignore[arg-type]
    if number != number or number in (float("inf"), float("-inf")):
        return repr(number).replace("inf", "Inf").replace("nan", "NaN")
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _MetricFamilies:
    """Accumulates samples grouped into ``# HELP``/``# TYPE`` families."""

    def __init__(self) -> None:
        # family name -> (type, help, [(suffix, labels, value), ...])
        self._families: Dict[str, tuple] = {}

    def _family(self, name: str, kind: str, help_text: str) -> list:
        entry = self._families.get(name)
        if entry is None:
            entry = (kind, help_text, [])
            self._families[name] = entry
        return entry[2]

    def add(
        self,
        name: str,
        kind: str,
        help_text: str,
        value: object,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        family = "rascad_" + metric_name(name)
        if kind == "counter" and not family.endswith("_total"):
            family += "_total"
        self._family(family, kind, help_text).append(
            ("", dict(labels or {}), value)
        )

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Mapping[str, str],
        summary: Mapping[str, object],
    ) -> None:
        """One serialized :class:`~repro.obs.histogram.Histogram`."""
        family = "rascad_" + metric_name(name)
        samples = self._family(family, "histogram", help_text)
        buckets = summary.get("buckets")
        if isinstance(buckets, Mapping):
            for le, count in buckets.items():
                if isinstance(count, bool) or not isinstance(
                    count, (int, float)
                ):
                    continue
                samples.append(
                    ("_bucket", {**labels, "le": str(le)}, count)
                )
        for suffix, key in (("_sum", "sum"), ("_count", "count")):
            value = summary.get(key)
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            samples.append((suffix, dict(labels), value))

    def render(self) -> str:
        lines: List[str] = []
        for family, (kind, help_text, samples) in self._families.items():
            if not samples:
                continue
            lines.append(f"# HELP {family} {escape_help_text(help_text)}")
            lines.append(f"# TYPE {family} {kind}")
            for suffix, labels, value in samples:
                if labels:
                    rendered = ",".join(
                        f'{metric_name(key)}="{escape_label_value(str(val))}"'
                        for key, val in labels.items()
                    )
                    label_part = "{" + rendered + "}"
                else:
                    label_part = ""
                lines.append(
                    f"{family}{suffix}{label_part} "
                    f"{format_metric_value(value)}"
                )
        return "\n".join(lines) + "\n"


def render_prometheus(payload: Mapping[str, object]) -> str:
    """Render the JSON metrics document as Prometheus exposition text.

    Every numeric leaf of the document becomes exactly one sample in a
    ``# HELP``/``# TYPE``-announced family: monotonic counts become
    counters (``_total``), point-in-time values become gauges, and
    per-route latency becomes a native histogram
    (``_bucket``/``_sum``/``_count``) — label values escaped per the
    exposition format.
    """
    doc = _MetricFamilies()
    engine = payload.get("engine")
    if isinstance(engine, Mapping):
        for key, value in sorted(engine.items()):
            if key == "stage_seconds" and isinstance(value, Mapping):
                for stage, seconds in sorted(value.items()):
                    doc.add(
                        "engine_stage_seconds", "counter",
                        "Wall time accumulated per engine stage.",
                        seconds, {"stage": str(stage)},
                    )
            elif key == "counters" and isinstance(value, Mapping):
                for counter, count in sorted(value.items()):
                    if counter.startswith("solves_by_backend."):
                        backend = counter.split(".", 1)[1]
                        doc.add(
                            "solves_by_backend", "counter",
                            "Computed solves by numerical backend.",
                            count, {"backend": backend},
                        )
                        continue
                    doc.add(
                        counter, "counter",
                        f"Engine counter {counter}.", count,
                    )
            elif key == "gauges" and isinstance(value, Mapping):
                for gauge, reading in sorted(value.items()):
                    doc.add(
                        gauge, "gauge",
                        f"Service gauge {gauge}.", reading,
                    )
            elif key == "route_counts" and isinstance(value, Mapping):
                for route_status, count in sorted(value.items()):
                    route, _, status = route_status.rpartition(" ")
                    doc.add(
                        "requests_total", "counter",
                        "Requests served by route and status.",
                        count, {"route": route, "status": status},
                    )
            elif key == "latency" and isinstance(value, Mapping):
                for route, summary in sorted(value.items()):
                    if not isinstance(summary, Mapping):
                        continue
                    if "buckets" in summary:
                        doc.histogram(
                            "latency_seconds",
                            "Request latency by route, in seconds.",
                            {"route": str(route)}, summary,
                        )
                    else:
                        # A legacy quantile summary (pre-histogram
                        # stats.json rendered via ``rascad stats``).
                        for quantile, seconds in sorted(summary.items()):
                            doc.add(
                                "latency_seconds", "gauge",
                                "Request latency by route, in seconds.",
                                seconds,
                                {
                                    "route": str(route),
                                    "quantile": str(quantile),
                                },
                            )
            elif key in _ENGINE_COUNTER_FIELDS:
                doc.add(
                    f"engine_{key}", "counter",
                    f"Engine counter {key}.", value,
                )
            elif key == "busy_seconds":
                doc.add(
                    "engine_busy_seconds", "counter",
                    "Summed per-task execution time.", value,
                )
            else:
                doc.add(
                    f"engine_{key}", "gauge",
                    f"Engine gauge {key}.", value,
                )
    for section in ("derived", "cache", "service", "registry", "telemetry"):
        values = payload.get(section)
        if isinstance(values, Mapping):
            for key, value in sorted(values.items()):
                doc.add(
                    f"{section}_{key}", "gauge",
                    f"{section.capitalize()} gauge {key}.", value,
                )
    cluster = payload.get("cluster")
    if isinstance(cluster, Mapping):
        workers = cluster.get("workers")
        if isinstance(workers, list):
            for row in workers:
                if not isinstance(row, Mapping):
                    continue
                labels = {"worker": str(row.get("id", ""))}
                doc.add(
                    "cluster_worker_up", "gauge",
                    "Worker liveness (1 = eligible for placement).",
                    1 if row.get("state") == "alive" else 0, labels,
                )
                doc.add(
                    "cluster_worker_in_flight", "gauge",
                    "Shards currently executing on the worker.",
                    row.get("in_flight"), labels,
                )
                for counter in (
                    "shards_done", "shards_failed", "shards_stolen"
                ):
                    doc.add(
                        f"cluster_worker_{counter}", "counter",
                        f"Per-worker {counter.replace('_', ' ')}.",
                        row.get(counter), labels,
                    )
        # Fleet totals are NOT emitted here: the coordinator's stats
        # collector already counts them (cluster_shards_completed and
        # friends render from the engine counters section), and a
        # family must not carry duplicate samples.
    storage = payload.get("storage")
    if isinstance(storage, Mapping):
        for store_name, health in sorted(storage.items()):
            if not isinstance(health, Mapping):
                continue
            labels = {"store": str(store_name)}
            doc.add(
                "store_size_bytes", "gauge",
                "Store database footprint in bytes (db + WAL + SHM).",
                health.get("size_bytes"), labels,
            )
            doc.add(
                "store_user_version", "gauge",
                "Applied schema version (PRAGMA user_version).",
                health.get("user_version"), labels,
            )
            doc.add(
                "store_transactions", "counter",
                "Committed store transactions.",
                health.get("transactions"), labels,
            )
            doc.add(
                "store_busy_retries", "counter",
                "Transaction attempts that found the database locked.",
                health.get("busy_retries"), labels,
            )
            doc.add(
                "store_txn_seconds", "counter",
                "Summed store transaction latency, in seconds.",
                health.get("txn_seconds_total"), labels,
            )
    return doc.render()


async def _maybe_await(value):
    if asyncio.iscoroutine(value):
        return await value
    return value
