"""Minimal HTTP/1.1 over asyncio streams: parsing, envelopes, errors.

The service speaks just enough HTTP/1.1 for its JSON API — request
line, headers, ``Content-Length`` bodies, keep-alive — with hard
limits everywhere untrusted bytes arrive:

* the header block is capped at :data:`MAX_HEADER_BYTES` and must
  arrive within a read timeout;
* bodies are capped at a configurable byte budget (``413`` beyond it);
* chunked transfer encoding is refused (``501``) rather than parsed.

Responses are JSON envelopes.  Errors always carry a stable machine
code next to the human message::

    {"error": {"code": "queue_full", "message": "..."}}

so clients can branch on ``code`` without string-matching messages.
The codes extend the :mod:`repro.errors` hierarchy: every library
exception maps onto one code and one HTTP status (see
:data:`ERROR_STATUS`).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from ..cluster.config import ClusterError, NoWorkersError, ShardFailedError
from ..studies.store import StudyNotFoundError
from ..telemetry.events import (
    BacklogFullError,
    NoDriftError,
    NoProposalError,
    OutOfOrderError,
    TelemetryError,
)
from ..registry.types import (
    ModelNotFoundError,
    RefError,
    RegistryError,
    RegressionError,
    VersionNotFoundError,
)
from ..errors import (
    BracketError,
    DatabaseError,
    EngineError,
    ModelError,
    ParameterError,
    RascadError,
    SolverError,
    SpecError,
    StoreBusyError,
)

#: Upper bound on the request line + header block, in bytes.
MAX_HEADER_BYTES = 16_384

#: Default upper bound on a request body, in bytes.
DEFAULT_MAX_BODY_BYTES = 1_048_576

#: Default seconds a client may take to deliver a complete request.
DEFAULT_READ_TIMEOUT = 10.0

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Library exception -> (HTTP status, stable error code).  Ordered:
#: the first matching class wins, so subclasses precede their bases.
ERROR_STATUS: Tuple[Tuple[type, int, str], ...] = (
    (RegressionError, 409, "regression_detected"),
    (StudyNotFoundError, 404, "not_found"),
    # Telemetry: subclasses before their TelemetryError base, which
    # sweeps any other field-event complaint into a client-fault 400.
    (BacklogFullError, 429, "backlog_full"),
    (OutOfOrderError, 400, "out_of_order"),
    (NoDriftError, 409, "no_drift"),
    (NoProposalError, 404, "not_found"),
    (TelemetryError, 400, "bad_request"),
    (ModelNotFoundError, 404, "not_found"),
    (VersionNotFoundError, 404, "not_found"),
    (RefError, 400, "invalid_ref"),
    (RegistryError, 400, "registry_error"),
    (ParameterError, 400, "invalid_parameter"),
    (SpecError, 400, "invalid_spec"),
    (DatabaseError, 400, "unknown_part"),
    (ModelError, 400, "invalid_model"),
    # A busy store is transient by construction: 503 plus Retry-After
    # (attached in error_for_exception from the exception's hint).
    (StoreBusyError, 503, "store_busy"),
    (NoWorkersError, 503, "no_workers"),
    (ShardFailedError, 502, "shard_failed"),
    (ClusterError, 500, "cluster_failure"),
    (EngineError, 500, "engine_failure"),
    # A hopeless bracket is the requester's target, not a numerical
    # failure — 400, and before its SolverError base claims it as 500.
    (BracketError, 400, "target_not_bracketed"),
    (SolverError, 500, "solver_failure"),
    (RascadError, 500, "internal_error"),
)


class ProtocolError(RascadError):
    """A request the protocol layer refuses, with its wire response."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"
    #: Effective body budget; :func:`read_request` stamps the server's
    #: configured cap so :meth:`json` never re-litigates an admitted
    #: body.  Hand-built requests (embedded apps, tests) fall back to
    #: :data:`DEFAULT_MAX_BODY_BYTES`.
    max_body_bytes: Optional[int] = None

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if connection == "close":
            return False
        if self.version == "HTTP/1.0":
            # HTTP/1.0 defaults to close; persist only on request.
            return connection == "keep-alive"
        return True  # HTTP/1.1 default

    def json(self) -> Dict[str, object]:
        """The body as a JSON object, or a 400 :class:`ProtocolError`.

        Two families of refusal: ``invalid_json`` for bodies that do
        not parse, ``bad_request`` for bodies that are hostile rather
        than wrong — oversized payloads reaching an embedded app
        without the socket layer's 413 guard, and pathologically
        nested documents that blow the parser's recursion budget.
        Both are the client's fault and must never surface as a 500.
        """
        limit = (
            self.max_body_bytes
            if self.max_body_bytes is not None
            else DEFAULT_MAX_BODY_BYTES
        )
        if len(self.body) > limit:
            raise ProtocolError(
                400, "bad_request",
                f"request body of {len(self.body)} bytes exceeds the "
                f"{limit}-byte limit",
            )
        if not self.body:
            raise ProtocolError(
                400, "invalid_request", "request body must be a JSON object"
            )
        try:
            payload = json.loads(self.body)
        except RecursionError:
            raise ProtocolError(
                400, "bad_request",
                "request body is nested too deeply to parse",
            ) from None
        except MemoryError:
            raise ProtocolError(
                400, "bad_request",
                "request body is too large to parse",
            ) from None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(
                400, "invalid_json", f"request body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ProtocolError(
                400, "invalid_request", "request body must be a JSON object"
            )
        return payload


@dataclass
class Response:
    """One HTTP response ready to encode onto the wire."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    close: bool = False

    def encode(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        lines.append(f"Connection: {'close' if self.close else 'keep-alive'}")
        head = "\r\n".join(lines).encode("latin-1")
        return head + b"\r\n\r\n" + self.body


def json_response(
    payload: object,
    status: int = 200,
    headers: Optional[Dict[str, str]] = None,
) -> Response:
    """A JSON-encoded :class:`Response` for a payload mapping."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return Response(status=status, body=body, headers=dict(headers or {}))


def error_response(
    status: int,
    code: str,
    message: str,
    retry_after: Optional[float] = None,
    details: Optional[Dict[str, object]] = None,
) -> Response:
    """The stable error envelope, optionally with ``Retry-After``.

    ``details`` attaches a structured object next to the message —
    the regression gate uses it to report both digests, both downtime
    numbers, the delta, and the threshold, so clients need not parse
    prose.
    """
    headers: Dict[str, str] = {}
    if retry_after is not None:
        # Retry-After is delta-seconds; round up so clients never
        # retry before the window actually opens.
        headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
    envelope: Dict[str, object] = {"code": code, "message": message}
    if details is not None:
        envelope["details"] = details
    return json_response(
        {"error": envelope}, status=status, headers=headers,
    )


def error_for_exception(error: Exception) -> Response:
    """Map a library exception onto its wire envelope."""
    if isinstance(error, ProtocolError):
        return error_response(error.status, error.code, str(error))
    details = getattr(error, "details", None)
    if not isinstance(details, dict):
        details = None
    retry_after = None
    if isinstance(error, StoreBusyError):
        retry_after = error.retry_after
    for exc_type, status, code in ERROR_STATUS:
        if isinstance(error, exc_type):
            return error_response(
                status, code, str(error),
                retry_after=retry_after, details=details,
            )
    return error_response(500, "internal_error", str(error))


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    read_timeout: float = DEFAULT_READ_TIMEOUT,
) -> Optional[Request]:
    """Read one request off a connection.

    Returns ``None`` on a clean EOF before any bytes (the client closed
    an idle keep-alive connection).  Raises :class:`ProtocolError` for
    anything malformed or over limits — the caller answers with the
    error's status and closes.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=read_timeout
        )
    except asyncio.TimeoutError:
        raise ProtocolError(
            408, "request_timeout", "timed out waiting for request headers"
        ) from None
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            400, "invalid_request", "connection closed mid-request"
        ) from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(
            431, "headers_too_large",
            f"header block exceeds {MAX_HEADER_BYTES} bytes",
        ) from None

    request = _parse_head(head)
    request.max_body_bytes = max_body_bytes

    if "transfer-encoding" in request.headers:
        raise ProtocolError(
            501, "unsupported_transfer_encoding",
            "chunked bodies are not supported; send Content-Length",
        )
    length_text = request.headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(
            400, "invalid_request",
            f"malformed Content-Length {length_text!r}",
        ) from None
    if length < 0:
        raise ProtocolError(
            400, "invalid_request", "negative Content-Length"
        )
    if length > max_body_bytes:
        raise ProtocolError(
            413, "payload_too_large",
            f"request body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte limit",
        )
    if length:
        try:
            request.body = await asyncio.wait_for(
                reader.readexactly(length), timeout=read_timeout
            )
        except asyncio.TimeoutError:
            raise ProtocolError(
                408, "request_timeout",
                "timed out waiting for the request body",
            ) from None
        except asyncio.IncompleteReadError:
            raise ProtocolError(
                400, "invalid_request", "connection closed mid-body"
            ) from None
    return request


def _parse_head(head: bytes) -> Request:
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(
            431, "headers_too_large",
            f"header block exceeds {MAX_HEADER_BYTES} bytes",
        )
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise ProtocolError(400, "invalid_request", "undecodable header")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ProtocolError(
            400, "invalid_request", f"malformed request line {lines[0]!r}"
        )
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(
            400, "invalid_request", f"unsupported protocol {version!r}"
        )
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ProtocolError(
                400, "invalid_request", f"malformed header line {line!r}"
            )
        headers[name.strip().lower()] = value.strip()
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        version=version,
    )
