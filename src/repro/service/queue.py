"""Admission control and micro-batching in front of the engine.

Every ``POST /v1/solve`` (and the solve inside ``/v1/validate``) flows
through one :class:`SolveQueue`:

* **Backpressure** — at most ``max_queue`` *distinct* solves may be
  queued or running; beyond that :class:`QueueFullError` surfaces as a
  ``429`` with ``Retry-After``, so overload sheds load instead of
  accumulating unbounded work.
* **Deduplication** — concurrent requests for the same content digest
  share one in-flight future: the engine solves once and the result
  fans out to every waiter.  64 clients posting the same spec cost one
  solve.
* **Micro-batching** — distinct requests that arrive within
  ``batch_window`` seconds coalesce into one batch; when the engine
  has ``jobs > 1`` the batch fans out over its process pool
  (:meth:`repro.engine.Engine.solve_many`), otherwise batch members
  solve on worker threads.
* **Deadlines** — a waiter whose deadline passes gets
  :class:`DeadlineExceededError` (``504``); the shared solve keeps
  running for any waiters still inside their deadline.

The queue meters itself through the engine's
:class:`~repro.engine.stats.StatsCollector`: counters
``service_admitted`` / ``service_dedup_hits`` / ``service_rejections``
/ ``service_deadline_misses``, and gauges ``queue_depth`` /
``batches_in_flight`` — all visible in ``GET /metrics``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.block import DiagramBlockModel
from ..core.translator import SystemSolution
from ..engine import Engine
from ..engine.keys import model_digest
from ..errors import RascadError
from ..num import SolverOptions, as_options
from ..obs.trace import current_span, get_tracer, use_span


class QueueFullError(RascadError):
    """The admission queue is at capacity; retry after a short delay."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(RascadError):
    """The request's deadline passed before its solve finished."""


class ServiceClosedError(RascadError):
    """The queue is draining for shutdown and admits no new work."""


@dataclass
class _Item:
    key: str
    model: DiagramBlockModel
    method: SolverOptions
    future: "asyncio.Future[SystemSolution]"
    enqueued_at: float = field(default_factory=time.monotonic)
    deadline: Optional[float] = None
    # Tracing (None / null spans when tracing is off): ``wait_span``
    # covers admission -> batch pickup, ``batch_span`` covers the solve
    # itself, ``request_span`` is the submitting request's span so the
    # batcher task can parent ``batch_span`` correctly even though it
    # runs outside the request's context.
    wait_span: object = None
    batch_span: object = None
    request_span: object = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class SolveQueue:
    """Bounded, deduplicating, micro-batching solve queue.

    Args:
        engine: The evaluation engine the batches run on.
        max_queue: Admission bound on distinct queued-or-running solves.
        batch_window: Seconds the batcher waits to coalesce more work
            after the first item of a batch arrives.
        max_batch: Upper bound on distinct solves per batch.
    """

    def __init__(
        self,
        engine: Engine,
        max_queue: int = 64,
        batch_window: float = 0.002,
        max_batch: int = 16,
    ) -> None:
        if max_queue < 1:
            raise RascadError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise RascadError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine
        self.max_queue = max_queue
        self.batch_window = batch_window
        self.max_batch = max_batch
        self._pending: "asyncio.Queue[Optional[_Item]]" = asyncio.Queue()
        self._inflight: Dict[str, "asyncio.Future[SystemSolution]"] = {}
        self._admitted = 0
        self.depth_peak = 0
        self._closed = False
        self._batcher: Optional["asyncio.Task[None]"] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the batcher task on the running event loop."""
        if self._batcher is None:
            self._batcher = asyncio.get_running_loop().create_task(
                self._run(), name="rascad-solve-batcher"
            )

    async def close(self, drain: bool = True) -> None:
        """Stop admitting work; optionally finish what was admitted.

        With ``drain=False`` every queued solve fails with
        :class:`ServiceClosedError` instead of running.
        """
        if self._closed:
            return
        self._closed = True
        if self._batcher is None:
            return
        if not drain:
            while True:
                try:
                    item = self._pending.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is not None:
                    self._finish(
                        item,
                        error=ServiceClosedError("service shutting down"),
                    )
        self._pending.put_nowait(None)
        await self._batcher
        self._batcher = None

    @property
    def depth(self) -> int:
        """Distinct solves currently admitted (queued or running)."""
        return self._admitted

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def solve(
        self,
        model: DiagramBlockModel,
        method: object = "direct",
        deadline: Optional[float] = None,
    ) -> SystemSolution:
        """Submit one solve; dedups, queues, and awaits the result.

        Args:
            model: The validated model to solve.
            method: Chain solver method (a legacy name or
                :class:`~repro.num.SolverOptions`), forwarded to the
                engine; micro-batches group by its canonical form.
            deadline: Absolute ``time.monotonic()`` deadline, or None.
        """
        if self._closed:
            raise ServiceClosedError("service shutting down")
        method = as_options(method)
        stats = self.engine.stats
        tracer = get_tracer()
        key = model_digest(model, method)
        future = self._inflight.get(key)
        if future is not None:
            stats.increment("service_dedup_hits")
            with tracer.span("service.dedup_wait", key=key):
                return await self._wait(future, deadline)
        if self._admitted >= self.max_queue:
            stats.increment("service_rejections")
            raise QueueFullError(
                f"solve queue is full ({self.max_queue} in flight); "
                "retry shortly",
                retry_after=max(self.batch_window * 10, 0.5),
            )
        future = asyncio.get_running_loop().create_future()
        item = _Item(
            key=key, model=model, method=method,
            future=future, deadline=deadline,
            wait_span=tracer.start_span("service.queue_wait", key=key),
            request_span=current_span(),
        )
        self._inflight[key] = future
        self._admitted += 1
        stats.increment("service_admitted")
        stats.set_gauge("queue_depth", self._admitted)
        if self._admitted > self.depth_peak:
            self.depth_peak = self._admitted
            stats.set_gauge("queue_depth_peak", self.depth_peak)
        self._pending.put_nowait(item)
        return await self._wait(future, deadline)

    async def _wait(
        self,
        future: "asyncio.Future[SystemSolution]",
        deadline: Optional[float],
    ) -> SystemSolution:
        # Shield: the future is shared between deduped waiters, so one
        # waiter's timeout must not cancel everyone's solve.
        if deadline is None:
            return await asyncio.shield(future)
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            self.engine.stats.increment("service_deadline_misses")
            raise DeadlineExceededError(
                "request deadline passed while queued"
            )
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), timeout=remaining
            )
        except asyncio.TimeoutError:
            self.engine.stats.increment("service_deadline_misses")
            raise DeadlineExceededError(
                "request deadline passed before the solve finished"
            ) from None

    # ------------------------------------------------------------------
    # the batcher
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        closing = False
        while not closing:
            item = await self._pending.get()
            if item is None:
                break
            batch = [item]
            while len(batch) < self.max_batch:
                try:
                    extra = await asyncio.wait_for(
                        self._pending.get(), timeout=self.batch_window
                    )
                except asyncio.TimeoutError:
                    break
                if extra is None:
                    closing = True
                    break
                batch.append(extra)
            await self._solve_batch(batch)
        # Drain anything still queued at shutdown so no waiter hangs.
        while True:
            try:
                item = self._pending.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None:
                await self._solve_batch([item])

    async def _solve_batch(self, batch: List[_Item]) -> None:
        stats = self.engine.stats
        tracer = get_tracer()
        now = time.monotonic()
        live: List[_Item] = []
        for item in batch:
            tracer.finish(item.wait_span)
            if item.expired(now):
                stats.increment("service_deadline_misses")
                self._finish(
                    item,
                    error=DeadlineExceededError(
                        "request deadline passed while queued"
                    ),
                )
            else:
                live.append(item)
        if not live:
            return
        for item in live:
            item.batch_span = tracer.start_span(
                "service.batch",
                parent=item.request_span,
                batch_size=len(live),
                method=item.method.cache_token(),
            )
        stats.increment("service_batches")
        stats.set_gauge("batches_in_flight", 1)
        try:
            if self.engine.jobs > 1 and len(live) > 1:
                await self._solve_via_pool(live)
            else:
                await self._solve_via_threads(live)
        finally:
            stats.set_gauge("batches_in_flight", 0)
            stats.set_gauge("queue_depth", self._admitted)

    async def _solve_one_threaded(self, item: _Item) -> SystemSolution:
        # use_span is active when to_thread copies the context, so the
        # worker-thread solve records its spans under the item's batch
        # span (and through it, the originating request).
        with use_span(item.batch_span):
            return await asyncio.to_thread(
                self.engine.solve, item.model, item.method
            )

    async def _solve_via_threads(self, live: List[_Item]) -> None:
        results = await asyncio.gather(
            *(self._solve_one_threaded(item) for item in live),
            return_exceptions=True,
        )
        for item, result in zip(live, results):
            if isinstance(result, BaseException):
                self._finish(item, error=result)
            else:
                self._finish(item, result=result)

    async def _solve_via_pool(self, live: List[_Item]) -> None:
        # solve_many takes one method per batch; group mixed methods
        # (SolverOptions is frozen, so it hashes by value).
        by_method: Dict[SolverOptions, List[_Item]] = {}
        for item in live:
            by_method.setdefault(item.method, []).append(item)
        for method, items in by_method.items():
            try:
                # The pool fans the group out as one engine batch; its
                # carrier comes from the first item's batch span, so
                # worker-side spans join that item's trace.
                with use_span(items[0].batch_span):
                    solutions = await asyncio.to_thread(
                        self.engine.solve_many,
                        [item.model for item in items],
                        method,
                    )
            except Exception:
                # solve_many fails the whole batch as soon as one task
                # exhausts its retries; re-solve per item so one bad
                # request cannot poison its co-batched neighbours —
                # matching the per-item isolation of the thread path.
                await self._solve_via_threads(items)
                continue
            for item, solution in zip(items, solutions):
                self._finish(item, result=solution)

    def _finish(
        self,
        item: _Item,
        result: Optional[SystemSolution] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        self._inflight.pop(item.key, None)
        self._admitted -= 1
        stats = self.engine.stats
        tracer = get_tracer()
        # finish() is idempotent, so the wait span is safe to close
        # again here — it only matters for items failed before pickup
        # (shutdown drain), whose wait span would otherwise leak.
        tracer.finish(item.wait_span, error=error)
        tracer.finish(item.batch_span, error=error)
        stats.set_gauge("queue_depth", self._admitted)
        stats.record_latency(
            "queue", time.monotonic() - item.enqueued_at
        )
        if not item.future.done():
            if error is not None:
                item.future.set_exception(error)
                # Mark retrieved now: if every waiter already timed
                # out, nobody else will, and asyncio would log an
                # "exception never retrieved" warning at GC time.
                item.future.exception()
            else:
                item.future.set_result(result)
