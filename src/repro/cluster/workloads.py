"""Shardable workloads: what the coordinator fans out and folds back.

A workload is an ordered list of *points*, each solvable through the
worker-side :mod:`repro.service` HTTP API, plus a pure aggregation over
the complete point list — the exact contract the jobs runner's
checkpointed plans satisfy, lifted across process boundaries.  Because
aggregation sees the full positional list and each point is a
deterministic solve, a result assembled from any shard placement (or
any interleaving of retries and steals) is bit-identical to the
single-process run of the same workload.

Three shapes:

* :class:`SweepWorkload` — one block/global field over many values;
  each shard is a single ``POST /v1/sweep`` covering its value range.
* :class:`BatchSolveWorkload` — many independent spec documents; each
  shard issues one ``POST /v1/solve`` per spec.
* :class:`UncertaintyWorkload` — Monte-Carlo parameter uncertainty.
  The coordinator draws every variant up front from one seeded
  generator (the same sequential stream the jobs planner uses, so the
  sample set is identical), ships variants as batch solves, and
  aggregates with the jobs runner's exact formulas.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SpecError
from ..ident import digest_id
from ..units import MINUTES_PER_YEAR

#: One worker call: (path, JSON payload).
Call = Tuple[str, Dict[str, object]]


def _canonical_digest(document: Mapping[str, object]) -> str:
    return digest_id("wl", document, 32)


class SweepWorkload:
    """A parametric sweep sharded over contiguous value ranges."""

    kind = "sweep"

    def __init__(
        self,
        spec: Mapping[str, object],
        field: str,
        values: Sequence[float],
        block: Optional[str] = None,
        solver: Optional[Mapping[str, object]] = None,
        model_name: Optional[str] = None,
    ) -> None:
        if not values:
            raise SpecError("sweep workload needs at least one value")
        self.spec = dict(spec)
        self.field = field
        self.block = block
        self.values = [float(value) for value in values]
        self.solver = dict(solver) if solver else None
        self.model_name = model_name or str(self.spec.get("name", ""))
        self.digest = _canonical_digest({
            "kind": self.kind,
            "spec": self.spec,
            "field": self.field,
            "block": self.block,
            "values": self.values,
            "solver": self.solver,
        })

    @property
    def total(self) -> int:
        return len(self.values)

    def calls(self, lo: int, hi: int) -> List[Call]:
        """One ``/v1/sweep`` request covering points ``[lo, hi)``."""
        payload: Dict[str, object] = {
            "spec": self.spec,
            "field": self.field,
            "values": self.values[lo:hi],
            # Shard requests never fan out again, even if the worker
            # happens to be a coordinator itself.
            "cluster": False,
        }
        if self.block is not None:
            payload["block"] = self.block
        if self.solver is not None:
            payload["solver"] = self.solver
        return [("/v1/sweep", payload)]

    def extract(
        self, bodies: List[Mapping[str, object]], lo: int, hi: int
    ) -> List[Dict[str, object]]:
        """The shard's points out of its response bodies."""
        points = bodies[0].get("points")
        if not isinstance(points, list) or len(points) != hi - lo:
            raise SpecError(
                f"worker returned {0 if not isinstance(points, list) else len(points)} "
                f"points for shard [{lo}, {hi})"
            )
        return [dict(point) for point in points]

    def aggregate(
        self, points: List[Mapping[str, object]]
    ) -> Dict[str, object]:
        """The same payload shape the jobs runner's sweep plan emits."""
        return {
            "kind": "sweep",
            "model": self.model_name,
            "field": self.field,
            "block": self.block,
            "points": [dict(point) for point in points],
        }


class BatchSolveWorkload:
    """Independent spec documents solved one ``/v1/solve`` each."""

    kind = "batch"

    #: Response fields carried into each batch point.
    POINT_FIELDS = (
        "model", "availability", "yearly_downtime_minutes", "mttf_hours",
    )

    def __init__(
        self,
        specs: Sequence[Mapping[str, object]],
        solver: Optional[Mapping[str, object]] = None,
    ) -> None:
        if not specs:
            raise SpecError("batch workload needs at least one spec")
        self.specs = [dict(spec) for spec in specs]
        self.solver = dict(solver) if solver else None
        self.digest = _canonical_digest({
            "kind": self.kind,
            "specs": self.specs,
            "solver": self.solver,
        })

    @property
    def total(self) -> int:
        return len(self.specs)

    def calls(self, lo: int, hi: int) -> List[Call]:
        calls: List[Call] = []
        for spec in self.specs[lo:hi]:
            payload: Dict[str, object] = {"spec": spec}
            if self.solver is not None:
                payload["solver"] = self.solver
            calls.append(("/v1/solve", payload))
        return calls

    def extract(
        self, bodies: List[Mapping[str, object]], lo: int, hi: int
    ) -> List[Dict[str, object]]:
        if len(bodies) != hi - lo:
            raise SpecError(
                f"worker returned {len(bodies)} results for "
                f"shard [{lo}, {hi})"
            )
        return [
            {key: body.get(key) for key in self.POINT_FIELDS}
            for body in bodies
        ]

    def aggregate(
        self, points: List[Mapping[str, object]]
    ) -> Dict[str, object]:
        return {
            "kind": "batch",
            "count": len(points),
            "results": [dict(point) for point in points],
        }


class UncertaintyWorkload(BatchSolveWorkload):
    """Parameter-uncertainty propagation as a sharded variant batch.

    Built by :func:`uncertainty_workload`, which owns the variant
    drawing; this class only re-aggregates the batch availabilities
    with the jobs runner's formulas so the summary statistics are
    bit-identical to an offline ``uncertainty`` job over the same
    samples.
    """

    kind = "uncertainty"

    def __init__(
        self,
        specs: Sequence[Mapping[str, object]],
        model_name: str,
        solver: Optional[Mapping[str, object]] = None,
    ) -> None:
        super().__init__(specs, solver=solver)
        self.model_name = model_name
        self.digest = _canonical_digest({
            "kind": self.kind,
            "specs": self.specs,
            "solver": self.solver,
        })

    def aggregate(
        self, points: List[Mapping[str, object]]
    ) -> Dict[str, object]:
        arr = np.asarray(
            [float(point["availability"]) for point in points], dtype=float
        )
        downtimes = (1.0 - arr) * MINUTES_PER_YEAR
        p05, p50, p95 = np.percentile(downtimes, [5.0, 50.0, 95.0])
        return {
            "kind": "uncertainty",
            "model": self.model_name,
            "samples": len(points),
            "mean_availability": float(arr.mean()),
            "std_availability": float(arr.std(ddof=1)),
            "downtime_p05": float(p05),
            "downtime_p50": float(p50),
            "downtime_p95": float(p95),
        }


class StudyWorkload(BatchSolveWorkload):
    """One study *round* as a sharded batch of candidate solves.

    A design-space study is adaptive — round N+1's candidates depend
    on round N's availabilities — so the whole study cannot be one
    fixed workload.  Instead the study runner fans each round out as
    one of these: the candidates' spec documents become a batch solve
    whose digest ties it to ``(study id, round index)``, and
    ``aggregate`` folds the shard points into the flat availability
    list the round generator is waiting for.  Everything downstream
    (dedup, constraints, the Pareto front) is recomputed from the
    complete trace by :func:`repro.studies.aggregate_study`, so the
    merged front is bit-identical to a single-process run.
    """

    kind = "study"

    def __init__(
        self,
        study_id: str,
        round_index: int,
        specs: Sequence[Mapping[str, object]],
        solver: Optional[Mapping[str, object]] = None,
    ) -> None:
        super().__init__(specs, solver=solver)
        self.study_id = study_id
        self.round_index = round_index
        self.digest = _canonical_digest({
            "kind": self.kind,
            "study_id": study_id,
            "round": round_index,
            "specs": self.specs,
            "solver": self.solver,
        })

    def aggregate(
        self, points: List[Mapping[str, object]]
    ) -> Dict[str, object]:
        return {
            "kind": "study_round",
            "study_id": self.study_id,
            "round": self.round_index,
            "count": len(points),
            "availabilities": [
                float(point["availability"]) for point in points
            ],
        }


def uncertainty_workload(
    spec: Mapping[str, object],
    uncertain: Sequence[Mapping[str, object]],
    samples: int,
    seed: Optional[int] = None,
    solver: Optional[Mapping[str, object]] = None,
    database=None,
) -> UncertaintyWorkload:
    """Draw the variant set and wrap it as a shardable batch.

    Draws are sequential from one seeded generator — byte-for-byte the
    stream ``Engine.propagate_uncertainty`` and the jobs planner
    consume — so the variant population (and hence every downstream
    statistic) matches the single-process paths exactly.
    """
    from ..analysis.parametric import with_block_changes
    from ..jobs.types import distribution_from_dict
    from ..spec import model_to_spec, parse_spec

    if samples < 2:
        raise SpecError(f"need at least 2 samples, got {samples}")
    if not uncertain:
        raise SpecError("uncertainty workload needs uncertain entries")
    model = parse_spec(dict(spec), database=database)
    parsed = []
    for entry in uncertain:
        if not isinstance(entry, Mapping):
            raise SpecError("each uncertain entry must be an object")
        try:
            path, field = str(entry["path"]), str(entry["field"])
            distribution = distribution_from_dict(entry["distribution"])
        except KeyError as exc:
            raise SpecError(
                f"uncertain entry is missing {exc.args[0]!r}"
            ) from None
        parsed.append((path, field, distribution))
    rng = np.random.default_rng(seed)
    variants = []
    for _ in range(samples):
        variant = model
        for path, field, distribution in parsed:
            value = distribution.sample(rng)
            variant = with_block_changes(variant, path, **{field: value})
        variants.append(model_to_spec(variant))
    return UncertaintyWorkload(
        variants, model_name=model.name, solver=solver
    )
