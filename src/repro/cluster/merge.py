"""Folding shard results back into one response.

The merge is *positional*: shard ``[lo, hi)`` owns points ``lo..hi-1``
of the workload, so assembling the final point list is concatenation in
``lo`` order with coverage checks — no arithmetic that could depend on
shard placement, retry count, or which worker's duplicate execution of
a stolen shard landed first.  The merged payload carries the same
``result_digest`` (from :mod:`repro.jobs.types`) a single-process jobs
run of the identical workload computes, which is how the smoke test and
the benchmark assert bit-identity.

Worker telemetry merges the same way the observability layer was built
for: per-worker ``/metrics`` latency histograms are fixed-bucket and
mergeable (:class:`repro.obs.Histogram`), counters are additive.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..jobs.types import result_digest
from ..obs.histogram import Histogram
from .config import ClusterError
from .sharding import Shard


def merge_points(
    shards: Sequence[Shard],
    results: Mapping[str, List[Mapping[str, object]]],
) -> List[Mapping[str, object]]:
    """Concatenate per-shard point lists in workload order.

    ``results`` maps shard id -> that shard's points.  Raises
    :class:`ClusterError` on a missing shard or a length mismatch —
    a merge must never silently drop or duplicate points.
    """
    ordered = sorted(shards, key=lambda shard: shard.lo)
    merged: List[Mapping[str, object]] = []
    for shard in ordered:
        points = results.get(shard.id)
        if points is None:
            raise ClusterError(
                f"shard {shard.id} [{shard.lo}, {shard.hi}) has no result"
            )
        if len(points) != shard.size:
            raise ClusterError(
                f"shard {shard.id} returned {len(points)} points, "
                f"expected {shard.size}"
            )
        if len(merged) != shard.lo:
            raise ClusterError(
                f"shard {shard.id} starts at {shard.lo} but "
                f"{len(merged)} points are merged so far — "
                "the plan does not tile the workload"
            )
        merged.extend(points)
    return merged


def merged_payload(
    workload,
    shards: Sequence[Shard],
    results: Mapping[str, List[Mapping[str, object]]],
) -> Dict[str, object]:
    """The final result payload, digest-stamped like a jobs result."""
    payload = workload.aggregate(merge_points(shards, results))
    payload["result_digest"] = result_digest(payload)
    return payload


def merge_histograms(
    summaries: Iterable[Mapping[str, object]],
) -> Optional[Histogram]:
    """Fold serialized per-worker histograms into one, or ``None``.

    Accepts the ``{count, sum, buckets}`` shape ``/metrics`` emits.
    Summaries over different bucket ladders cannot be merged and raise
    ``ValueError`` (from :meth:`Histogram.merge`).
    """
    merged: Optional[Histogram] = None
    for summary in summaries:
        histogram = Histogram.from_dict(dict(summary))
        if merged is None:
            merged = histogram
        else:
            merged.merge(histogram)
    return merged


def merge_worker_metrics(
    metrics: Mapping[str, Mapping[str, object]],
) -> Dict[str, object]:
    """Roll a fleet's ``/metrics`` documents into one cluster view.

    Engine counters add up; per-route latency histograms merge
    bucket-wise; gauges are left out (a fleet-level point-in-time
    gauge is not the sum of samples taken at different instants).
    Returns ``{"workers": n, "counters": ..., "latency": ...}``.
    """
    counters: Dict[str, float] = {}
    latencies: Dict[str, Histogram] = {}
    for document in metrics.values():
        engine = document.get("engine")
        if not isinstance(engine, Mapping):
            continue
        for key, value in engine.items():
            if key == "counters" and isinstance(value, Mapping):
                for name, count in value.items():
                    if isinstance(count, (int, float)) and not isinstance(
                        count, bool
                    ):
                        counters[name] = counters.get(name, 0) + count
            elif key == "latency" and isinstance(value, Mapping):
                for route, summary in value.items():
                    if not isinstance(summary, Mapping):
                        continue
                    if "buckets" not in summary:
                        continue
                    histogram = Histogram.from_dict(dict(summary))
                    if route in latencies:
                        latencies[route].merge(histogram)
                    else:
                        latencies[route] = histogram
            elif isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                counters[key] = counters.get(key, 0) + value
    return {
        "workers": len(metrics),
        "counters": dict(sorted(counters.items())),
        "latency": {
            route: histogram.to_dict()
            for route, histogram in sorted(latencies.items())
        },
    }
