"""HTTP clients for the cluster: coordinator->worker and worker->coordinator.

Workers are plain :mod:`repro.service` processes — the coordinator
drives them with the same JSON API any user would, one short-lived
``http.client`` connection per call (connections are cheap next to a
shard's solve time, and per-call connections make worker death visible
as an immediate socket error instead of a hung keep-alive).

Failure classification mirrors the jobs retry policy: transport errors
and 5xx/backpressure statuses are *retryable* (the shard re-queues and
another worker picks it up); a 4xx means the request itself is bad and
retrying elsewhere would fail identically, so it is *permanent* and
fails the whole workload.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Dict, List, Mapping, Optional, Tuple
from urllib.parse import urlsplit

from ..obs import TRACE_PARENT_HEADER, get_logger
from .config import ClusterError
from .membership import worker_id_for

#: Statuses worth retrying on another worker (or the same one later).
_RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


class WorkerCallError(ClusterError):
    """One worker call failed; ``retryable`` drives shard re-queueing."""

    def __init__(
        self,
        message: str,
        retryable: bool = True,
        status: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.retryable = retryable
        self.status = status


def _split_base_url(url: str) -> Tuple[str, int]:
    split = urlsplit(url if "//" in url else f"http://{url}")
    if split.scheme not in ("", "http"):
        raise ClusterError(
            f"cluster URLs must be http://, got {url!r}"
        )
    if not split.hostname:
        raise ClusterError(f"malformed cluster URL {url!r}")
    return split.hostname, split.port or 80


class _JsonHttpClient:
    """Minimal JSON-over-HTTP: one connection per call, hard timeout."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        self.url = url
        self.host, self.port = _split_base_url(url)
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, object]] = None,
        headers: Optional[Mapping[str, str]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, object]]:
        """One call; returns ``(status, body)`` or raises
        :class:`WorkerCallError` on transport problems."""
        body = b""
        send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=send_headers)
            response = connection.getresponse()
            raw = response.read()
        except (OSError, socket.timeout, http.client.HTTPException) as exc:
            raise WorkerCallError(
                f"{method} {self.url}{path} failed: "
                f"{type(exc).__name__}: {exc}",
                retryable=True,
            ) from exc
        finally:
            connection.close()
        try:
            parsed = json.loads(raw) if raw else {}
        except ValueError as exc:
            raise WorkerCallError(
                f"{method} {self.url}{path} returned undecodable JSON: "
                f"{exc}",
                retryable=True,
                status=response.status,
            ) from exc
        if not isinstance(parsed, dict):
            parsed = {"body": parsed}
        return response.status, parsed


class WorkerClient:
    """The coordinator's handle on one worker process."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        self.worker_id = worker_id_for(url)
        self._http = _JsonHttpClient(url, timeout=timeout)

    @property
    def url(self) -> str:
        return self._http.url

    def call(
        self,
        path: str,
        payload: Mapping[str, object],
        trace_header: Optional[str] = None,
    ) -> Dict[str, object]:
        """One ``POST``; non-200 raises a classified error."""
        headers: Dict[str, str] = {}
        if trace_header:
            headers[TRACE_PARENT_HEADER] = trace_header
        status, body = self._http.request(
            "POST", path, payload=payload, headers=headers
        )
        if status == 200:
            return body
        error = body.get("error")
        detail = (
            error.get("message") if isinstance(error, Mapping) else body
        )
        raise WorkerCallError(
            f"worker {self.worker_id} answered {status} on {path}: "
            f"{detail}",
            retryable=status in _RETRYABLE_STATUSES,
            status=status,
        )

    def execute_shard(
        self,
        workload,
        lo: int,
        hi: int,
        trace_header: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Run one shard's calls in order and extract its points."""
        bodies = [
            self.call(path, payload, trace_header=trace_header)
            for path, payload in workload.calls(lo, hi)
        ]
        return workload.extract(bodies, lo, hi)

    def healthy(self) -> bool:
        try:
            status, _ = self._http.request(
                "GET", "/healthz", timeout=min(self._http.timeout, 5.0)
            )
        except WorkerCallError:
            return False
        return status == 200

    def metrics(self) -> Optional[Dict[str, object]]:
        """The worker's ``/metrics`` document, or ``None`` if down."""
        try:
            status, body = self._http.request("GET", "/metrics")
        except WorkerCallError:
            return None
        return body if status == 200 else None


class CoordinatorClient:
    """What workers and the CLI use to talk *to* a coordinator."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        self._http = _JsonHttpClient(url, timeout=timeout)

    @property
    def url(self) -> str:
        return self._http.url

    def register_worker(self, worker_url: str) -> Dict[str, object]:
        status, body = self._http.request(
            "POST", "/v1/cluster/workers", payload={"url": worker_url}
        )
        if status != 200:
            raise ClusterError(
                f"coordinator {self.url} refused registration "
                f"({status}): {body}"
            )
        return body

    def status(self) -> Dict[str, object]:
        status, body = self._http.request("GET", "/v1/cluster/status")
        if status != 200:
            raise ClusterError(
                f"coordinator {self.url} answered {status} on "
                f"/v1/cluster/status: {body}"
            )
        return body

    def sweep(
        self, payload: Mapping[str, object], timeout: Optional[float] = None
    ) -> Dict[str, object]:
        status, body = self._http.request(
            "POST", "/v1/sweep", payload=payload, timeout=timeout
        )
        if status != 200:
            error = body.get("error")
            detail = (
                error.get("message") if isinstance(error, Mapping) else body
            )
            raise ClusterError(
                f"cluster sweep failed ({status}): {detail}"
            )
        return body


class HeartbeatPusher:
    """The worker-side registration/heartbeat loop, on a daemon thread.

    ``rascad cluster worker`` starts one next to its HTTP server: it
    registers the worker's advertised URL with the coordinator, then
    re-registers every ``interval`` seconds (registration is an upsert
    that doubles as the heartbeat).  A dead coordinator only logs — the
    worker keeps serving, and the next successful push re-registers it.
    """

    def __init__(
        self,
        coordinator_url: str,
        advertise_url: str,
        interval: float = 2.0,
    ) -> None:
        self.client = CoordinatorClient(coordinator_url, timeout=5.0)
        self.advertise_url = advertise_url
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.pushes = 0
        self.failures = 0

    def push_once(self) -> bool:
        try:
            self.client.register_worker(self.advertise_url)
        except ClusterError as error:
            self.failures += 1
            get_logger("cluster").warning(
                "heartbeat push failed",
                extra={
                    "coordinator": self.client.url,
                    "error": str(error),
                },
            )
            return False
        self.pushes += 1
        return True

    def _run(self) -> None:
        while not self._stop.is_set():
            self.push_once()
            self._stop.wait(self.interval)

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="rascad-heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None


def wait_until_healthy(
    url: str, timeout: float = 10.0, poll: float = 0.05
) -> bool:
    """Poll a service's ``/healthz`` until it answers or time runs out."""
    client = WorkerClient(url, timeout=min(timeout, 5.0))
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.healthy():
            return True
        time.sleep(poll)
    return False
