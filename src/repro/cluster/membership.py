"""Worker membership: registration, heartbeat leases, liveness.

The coordinator tracks its fleet in one :class:`Membership` table.
Workers arrive two ways:

* **static** — named on the coordinator command line.  Liveness is
  observed through dispatch: a failed shard call marks the worker
  dead, a successful registration (or shard completion) revives it.
* **dynamic** — self-registered over ``POST /v1/cluster/workers``
  (what ``rascad cluster worker`` does), then kept alive by periodic
  re-registration.  A dynamic worker whose heartbeat lease expires is
  dropped from placement until it heartbeats again — the same
  lease-as-crash-detection idea :class:`repro.jobs.JobStore` uses for
  running jobs.

All methods are thread-safe: the coordinator's dispatch threads and
the service's handler threads share one instance.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional
from urllib.parse import urlsplit

from .config import ClusterError

#: Liveness states a worker can be in.
ALIVE = "alive"
DEAD = "dead"


def worker_id_for(url: str) -> str:
    """The canonical worker id of a base URL (its host:port)."""
    split = urlsplit(url if "//" in url else f"http://{url}")
    if not split.netloc:
        raise ClusterError(f"malformed worker URL {url!r}")
    return split.netloc


@dataclass
class WorkerInfo:
    """One worker's membership row."""

    id: str
    url: str
    static: bool
    registered_at: float
    heartbeat_at: float
    state: str = ALIVE
    shards_done: int = 0
    shards_failed: int = 0
    shards_stolen: int = 0
    in_flight: int = 0
    last_error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "url": self.url,
            "static": self.static,
            "state": self.state,
            "registered_at": self.registered_at,
            "heartbeat_at": self.heartbeat_at,
            "shards_done": self.shards_done,
            "shards_failed": self.shards_failed,
            "shards_stolen": self.shards_stolen,
            "in_flight": self.in_flight,
            "last_error": self.last_error,
        }


class Membership:
    """The coordinator's worker table with heartbeat leases."""

    def __init__(self, lease_timeout: float = 15.0) -> None:
        if lease_timeout <= 0:
            raise ClusterError(
                f"lease_timeout must be positive, got {lease_timeout}"
            )
        self.lease_timeout = lease_timeout
        self._workers: Dict[str, WorkerInfo] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # registration and heartbeats
    # ------------------------------------------------------------------
    def register(
        self,
        url: str,
        static: bool = False,
        now: Optional[float] = None,
    ) -> WorkerInfo:
        """Upsert a worker; re-registration doubles as a heartbeat.

        A dead worker that registers again is revived — the recovery
        path for a worker process that restarted on the same port.
        """
        now = time.time() if now is None else now
        worker_id = worker_id_for(url)
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None:
                info = WorkerInfo(
                    id=worker_id, url=url, static=static,
                    registered_at=now, heartbeat_at=now,
                )
                self._workers[worker_id] = info
            else:
                info.url = url
                info.heartbeat_at = now
                info.state = ALIVE
                info.last_error = None
                info.static = info.static or static
            return info

    def heartbeat(
        self, worker_id: str, now: Optional[float] = None
    ) -> bool:
        """Refresh one worker's lease; ``False`` if it is unknown."""
        now = time.time() if now is None else now
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None:
                return False
            info.heartbeat_at = now
            if info.state == DEAD:
                info.state = ALIVE
                info.last_error = None
            return True

    # ------------------------------------------------------------------
    # liveness observed from dispatch
    # ------------------------------------------------------------------
    def mark_dead(self, worker_id: str, error: str = "") -> None:
        with self._lock:
            info = self._workers.get(worker_id)
            if info is not None:
                info.state = DEAD
                info.last_error = error or info.last_error

    def record(self, worker_id: str, counter: str, delta: int = 1) -> None:
        """Bump one per-worker counter (``shards_done`` and friends)."""
        with self._lock:
            info = self._workers.get(worker_id)
            if info is not None:
                setattr(info, counter, getattr(info, counter) + delta)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def alive(self, now: Optional[float] = None) -> List[WorkerInfo]:
        """Workers placement may use, sorted by id for determinism.

        Static workers stay eligible until dispatch marks them dead;
        dynamic workers additionally need a fresh heartbeat lease.
        """
        now = time.time() if now is None else now
        stale = now - self.lease_timeout
        with self._lock:
            return sorted(
                (
                    info for info in self._workers.values()
                    if info.state == ALIVE
                    and (info.static or info.heartbeat_at >= stale)
                ),
                key=lambda info: info.id,
            )

    def get(self, worker_id: str) -> Optional[WorkerInfo]:
        with self._lock:
            return self._workers.get(worker_id)

    def snapshot(self, now: Optional[float] = None) -> List[Dict[str, object]]:
        """Every known worker's row, liveness resolved, for the API."""
        now = time.time() if now is None else now
        stale = now - self.lease_timeout
        with self._lock:
            rows = []
            for worker_id in sorted(self._workers):
                info = self._workers[worker_id]
                row = info.to_dict()
                if (
                    info.state == ALIVE
                    and not info.static
                    and info.heartbeat_at < stale
                ):
                    row["state"] = "lease_expired"
                rows.append(row)
            return rows

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)
