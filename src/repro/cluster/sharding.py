"""Shard planning and rendezvous (highest-random-weight) placement.

A workload of ``total`` ordered points splits into contiguous
``[lo, hi)`` shards of at most ``shard_size`` points.  Shard ids are
**content digests** — the workload digest hashed with the range — so
the same workload planned twice (or replanned by a restarted
coordinator) produces the same ids, and the persisted shard table in
SQLite lines up with the fresh plan row for row.

Placement is rendezvous hashing: every (shard, worker) pair gets a
deterministic score, and a shard prefers the live worker with the
highest score.  Adding or losing one worker only moves the shards that
scored highest on it — no global reshuffle — and the score order also
drives work stealing: an idle worker picks, among the shards nobody is
running, the one that scores highest *for it*, with the lexicographic
shard id as the deterministic tie-break.  Placement never affects
results (solves are deterministic and the merge is positional); it only
affects which process does the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ident import digest_int64, sha256_hex


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of a workload's point range."""

    id: str
    index: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo


def shard_id(workload_digest: str, lo: int, hi: int) -> str:
    """The content-digest id of one shard of one workload."""
    return "shard-" + sha256_hex(f"{workload_digest}:{lo}:{hi}")[:24]


def plan_shards(
    workload_digest: str, total: int, shard_size: int
) -> List[Shard]:
    """Tile ``[0, total)`` into at-most-``shard_size`` shards.

    The tiling is the same one the jobs runner's checkpoint chunks use:
    contiguous, in order, last shard possibly short.  Planning is a
    pure function of ``(workload_digest, total, shard_size)``, which is
    what makes coordinator restarts resumable.
    """
    if total < 1:
        raise ValueError(f"total must be >= 1, got {total}")
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    shards = []
    for index, lo in enumerate(range(0, total, shard_size)):
        hi = min(lo + shard_size, total)
        shards.append(
            Shard(id=shard_id(workload_digest, lo, hi),
                  index=index, lo=lo, hi=hi)
        )
    return shards


def rendezvous_score(shard: str, worker: str) -> int:
    """The deterministic placement score of one (shard, worker) pair."""
    return digest_int64(f"{shard}|{worker}")


def preferred_worker(shard: str, workers: Sequence[str]) -> str:
    """The worker a shard lands on: highest score, id tie-break."""
    if not workers:
        raise ValueError("no workers to place the shard on")
    return max(
        sorted(workers),
        key=lambda worker: rendezvous_score(shard, worker),
    )


def assign_shards(
    shards: Sequence[Shard], workers: Sequence[str]
) -> Dict[str, List[Shard]]:
    """The full rendezvous assignment: worker id -> its shards."""
    placement: Dict[str, List[Shard]] = {worker: [] for worker in workers}
    for shard in shards:
        placement[preferred_worker(shard.id, workers)].append(shard)
    return placement


def pick_shard(
    worker: str, pending: Sequence[Shard]
) -> Optional[Shard]:
    """The next shard an idle worker takes from the pending set.

    Highest rendezvous score for *this* worker first — so every worker
    drains its own rendezvous assignment before stealing shards that
    preferred somebody else — with the lexicographically smallest shard
    id breaking score ties.  Deterministic given the pending set, so a
    scheduling decision never depends on thread timing alone.
    """
    if not pending:
        return None
    return max(
        sorted(pending, key=lambda shard: shard.id, reverse=True),
        key=lambda shard: rendezvous_score(shard.id, worker),
    )
