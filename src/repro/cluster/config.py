"""Cluster configuration and the cluster error hierarchy.

One frozen :class:`ClusterConfig` travels from the CLI flags (``rascad
cluster coordinator``) through the service into the coordinator, the
same shape reuse as :class:`repro.service.ServiceConfig` — construction
validates every knob so a bad flag fails at startup, not mid-sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import RascadError


class ClusterError(RascadError):
    """A cluster-level failure (no workers, shard budget exhausted)."""


class NoWorkersError(ClusterError):
    """Every worker is dead or none ever registered."""


class ShardFailedError(ClusterError):
    """One shard exhausted its attempt budget across all workers."""


@dataclass(frozen=True)
class ClusterConfig:
    """Everything the coordinator can configure.

    Attributes:
        workers: Static worker base URLs registered at startup.  More
            workers may join at runtime via ``POST /v1/cluster/workers``.
        shard_size: Points per shard.  Smaller shards rebalance better
            after a worker death but pay more per-request overhead.
        lease_timeout: Seconds without a heartbeat after which a
            dynamically registered worker is considered dead.  Static
            workers are probed by dispatch instead (a failed shard call
            marks them dead).
        heartbeat_interval: Seconds between worker-side heartbeat
            pushes (``rascad cluster worker``); must be well under
            ``lease_timeout``.
        steal_after: Seconds a shard may run on one worker before an
            idle worker re-executes it speculatively (work stealing of
            slow shards).  The first completion wins; solves are
            deterministic, so a stolen shard's result is bit-identical
            to the original's.
        max_shard_attempts: Distinct execution attempts per shard
            before the whole job fails with :class:`ShardFailedError`.
        call_timeout: Socket timeout for one shard HTTP call.
        fanout_threshold: Minimum point count worth sharding; smaller
            workloads run on a single worker (one shard).
    """

    workers: Tuple[str, ...] = field(default_factory=tuple)
    shard_size: int = 16
    lease_timeout: float = 15.0
    heartbeat_interval: float = 2.0
    steal_after: float = 5.0
    max_shard_attempts: int = 4
    call_timeout: float = 60.0
    fanout_threshold: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "workers", tuple(self.workers))
        if self.shard_size < 1:
            raise ClusterError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        if self.lease_timeout <= 0:
            raise ClusterError(
                f"lease_timeout must be positive, got {self.lease_timeout}"
            )
        if not 0 < self.heartbeat_interval < self.lease_timeout:
            raise ClusterError(
                "heartbeat_interval must be positive and below "
                f"lease_timeout, got {self.heartbeat_interval} "
                f"(lease_timeout={self.lease_timeout})"
            )
        if self.steal_after <= 0:
            raise ClusterError(
                f"steal_after must be positive, got {self.steal_after}"
            )
        if self.max_shard_attempts < 1:
            raise ClusterError(
                "max_shard_attempts must be >= 1, "
                f"got {self.max_shard_attempts}"
            )
        if self.call_timeout <= 0:
            raise ClusterError(
                f"call_timeout must be positive, got {self.call_timeout}"
            )
        if self.fanout_threshold < 1:
            raise ClusterError(
                "fanout_threshold must be >= 1, "
                f"got {self.fanout_threshold}"
            )
