"""Sharded multi-worker execution — coordinator, fleet, fault tolerance.

The cluster layer scales the service horizontally: a **coordinator**
splits sweep, uncertainty, and batch-solve workloads into
content-digest-keyed shards, fans them out over a fleet of ordinary
:mod:`repro.service` **workers** via the existing HTTP API, and merges
the shard results (and the workers' mergeable histograms) into one
response.

Design invariant: *placement never changes the answer*.  Solves are
deterministic, shards tile the workload positionally, scheduling
tie-breaks are deterministic, and result commits are first-write-wins —
so the merged payload is bit-identical to a single-process run whatever
the fleet does: workers dying mid-shard, slow shards being stolen and
re-executed speculatively, or the coordinator itself being killed and
resumed from its SQLite shard table.

* :mod:`.config` — :class:`ClusterConfig` and the error hierarchy.
* :mod:`.sharding` — shard planning, rendezvous placement, stealing.
* :mod:`.membership` — worker registry with heartbeat leases.
* :mod:`.workloads` — the shardable workload shapes.
* :mod:`.client` — HTTP clients both directions, failure-classified.
* :mod:`.coordinator` — the durable shard table and the scheduler.
* :mod:`.merge` — positional result merge and metrics roll-up.
"""

from .client import (
    CoordinatorClient,
    HeartbeatPusher,
    WorkerCallError,
    WorkerClient,
    wait_until_healthy,
)
from .config import (
    ClusterConfig,
    ClusterError,
    NoWorkersError,
    ShardFailedError,
)
from .coordinator import CLUSTER_DB_FILENAME, Coordinator, ShardStore
from .membership import Membership, WorkerInfo, worker_id_for
from .merge import (
    merge_histograms,
    merge_points,
    merge_worker_metrics,
    merged_payload,
)
from .sharding import (
    Shard,
    assign_shards,
    pick_shard,
    plan_shards,
    preferred_worker,
    rendezvous_score,
    shard_id,
)
from .workloads import (
    BatchSolveWorkload,
    StudyWorkload,
    SweepWorkload,
    UncertaintyWorkload,
    uncertainty_workload,
)

__all__ = [
    "BatchSolveWorkload",
    "ClusterConfig",
    "ClusterError",
    "Coordinator",
    "CoordinatorClient",
    "HeartbeatPusher",
    "Membership",
    "NoWorkersError",
    "Shard",
    "ShardFailedError",
    "CLUSTER_DB_FILENAME",
    "ShardStore",
    "StudyWorkload",
    "SweepWorkload",
    "UncertaintyWorkload",
    "WorkerCallError",
    "WorkerClient",
    "WorkerInfo",
    "assign_shards",
    "merge_histograms",
    "merge_points",
    "merge_worker_metrics",
    "merged_payload",
    "pick_shard",
    "plan_shards",
    "preferred_worker",
    "rendezvous_score",
    "shard_id",
    "uncertainty_workload",
    "wait_until_healthy",
    "worker_id_for",
]
