"""The coordinator: durable shard table plus the dispatch scheduler.

:class:`ShardStore` persists every shard's lifecycle row in SQLite
(its own ``cluster.sqlite3`` beside the jobs database), so a
coordinator killed mid-job
replans the identical shard set on restart — shard ids are content
digests — and finds the completed rows already in place: only the
unfinished remainder re-executes.

:class:`Coordinator` runs one dispatch thread per live worker.  Each
thread claims shards by rendezvous preference (its own assignment
first, then stealing), executes them over HTTP, and commits results
first-write-wins.  Liveness is heartbeat leases for dynamic workers and
dispatch-observed failure for static ones; a shard held by a dead or
slow worker goes back on the market.  None of this can change the
answer: solves are deterministic, the merge is positional, and a
duplicate execution of a stolen shard produces the same bytes.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs import carrier_to_header, get_logger, get_tracer, monotonic
from ..store import Migration, Schema, SqliteStore
from .client import WorkerCallError, WorkerClient
from .config import (
    ClusterConfig,
    ClusterError,
    NoWorkersError,
    ShardFailedError,
)
from .membership import Membership
from .merge import merged_payload
from .sharding import Shard, pick_shard, plan_shards

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cluster_shards (
    id         TEXT PRIMARY KEY,
    job        TEXT NOT NULL,
    idx        INTEGER NOT NULL,
    lo         INTEGER NOT NULL,
    hi         INTEGER NOT NULL,
    state      TEXT NOT NULL DEFAULT 'pending',
    worker     TEXT,
    lease_at   REAL,
    attempts   INTEGER NOT NULL DEFAULT 0,
    updated_at REAL NOT NULL,
    result     TEXT
);
CREATE INDEX IF NOT EXISTS cluster_shards_job
    ON cluster_shards (job, state);
"""

#: Default file name inside a cache directory (its own database —
#: every store file carries exactly one ``user_version`` chain).
CLUSTER_DB_FILENAME = "cluster.sqlite3"

#: The shard-ledger schema, versioned via ``PRAGMA user_version``.
CLUSTER_SCHEMA = Schema(
    "cluster", [Migration(1, "shard lifecycle table", _SCHEMA)]
)


class ShardStore:
    """SQLite persistence for shard lifecycle and results.

    The same idea as the jobs checkpoint table, one level up: rows are
    keyed by content-digest shard id, ``complete`` is first-write-wins,
    and a fresh coordinator ``plan()`` against an existing table is a
    resume, not a restart.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.db = SqliteStore(path, CLUSTER_SCHEMA)
        self.path = str(self.db.path)

    def close(self) -> None:
        self.db.close()

    # ------------------------------------------------------------------
    # planning and resume
    # ------------------------------------------------------------------
    def plan(self, job: str, shards: Sequence[Shard]) -> Dict[str, int]:
        """Upsert a job's shard rows; completed rows survive as-is.

        Also releases rows a previous coordinator left ``running`` —
        the process holding those leases is gone.  Returns the state
        counts after planning, so the caller can log the resume.
        """
        now = time.time()
        with self.db.transaction(immediate=True) as conn:
            for shard in shards:
                conn.execute(
                    "INSERT OR IGNORE INTO cluster_shards "
                    "(id, job, idx, lo, hi, state, attempts, updated_at)"
                    " VALUES (?, ?, ?, ?, ?, 'pending', 0, ?)",
                    (shard.id, job, shard.index, shard.lo, shard.hi,
                     now),
                )
            conn.execute(
                "UPDATE cluster_shards SET state = 'pending', "
                "worker = NULL, lease_at = NULL, updated_at = ? "
                "WHERE job = ? AND state = 'running'",
                (now, job),
            )
        return self.counts(job)

    # ------------------------------------------------------------------
    # lifecycle transitions
    # ------------------------------------------------------------------
    def lease(self, shard_id: str, worker: str) -> int:
        """Move a shard to ``running`` under ``worker``.

        Allowed from ``pending`` *and* from ``running`` (that is a
        steal — the previous holder keeps executing, and whichever
        finishes first wins the ``complete``).  Returns the attempt
        number this lease starts, ``0`` if the shard is already done.
        """
        now = time.time()
        with self.db.transaction(immediate=True) as conn:
            cursor = conn.execute(
                "UPDATE cluster_shards SET state = 'running', "
                "worker = ?, lease_at = ?, attempts = attempts + 1, "
                "updated_at = ? WHERE id = ? AND state != 'done'",
                (worker, now, now, shard_id),
            )
            if cursor.rowcount == 0:
                return 0
            row = conn.execute(
                "SELECT attempts FROM cluster_shards WHERE id = ?",
                (shard_id,),
            ).fetchone()
            return int(row["attempts"]) if row else 0

    def complete(self, shard_id: str, result: object) -> bool:
        """Commit a shard result; ``False`` if another attempt won."""
        now = time.time()
        encoded = json.dumps(result, sort_keys=True)
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "UPDATE cluster_shards SET state = 'done', result = ?, "
                "updated_at = ? WHERE id = ? AND state != 'done'",
                (encoded, now, shard_id),
            )
            return cursor.rowcount > 0

    def release(self, shard_id: str, worker: Optional[str] = None) -> bool:
        """Put a running shard back on the market.

        With ``worker`` given, only releases if that worker still holds
        the lease — a slow worker's late failure must not release a
        lease a thief has since taken over.
        """
        now = time.time()
        query = (
            "UPDATE cluster_shards SET state = 'pending', worker = NULL, "
            "lease_at = NULL, updated_at = ? "
            "WHERE id = ? AND state = 'running'"
        )
        parameters: Tuple[object, ...] = (now, shard_id)
        if worker is not None:
            query += " AND worker = ?"
            parameters += (worker,)
        with self.db.transaction() as conn:
            cursor = conn.execute(query, parameters)
            return cursor.rowcount > 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def counts(self, job: str) -> Dict[str, int]:
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) AS n FROM cluster_shards "
                "WHERE job = ? GROUP BY state",
                (job,),
            ).fetchall()
        return {row["state"]: int(row["n"]) for row in rows}

    def results(self, job: str) -> Dict[str, List[Dict[str, object]]]:
        """Completed shard results: shard id -> its point list."""
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT id, result FROM cluster_shards "
                "WHERE job = ? AND state = 'done'",
                (job,),
            ).fetchall()
        return {
            row["id"]: json.loads(row["result"])
            for row in rows
            if row["result"] is not None
        }

    def rows(self, job: str) -> List[Dict[str, object]]:
        """Every shard row of a job, in workload order, for the API."""
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT id, idx, lo, hi, state, worker, attempts "
                "FROM cluster_shards WHERE job = ? ORDER BY idx",
                (job,),
            ).fetchall()
        return [dict(row) for row in rows]


class _JobState:
    """In-memory dispatch state of one running workload (store-backed)."""

    def __init__(self, shards: Sequence[Shard]) -> None:
        self.shards = {shard.id: shard for shard in shards}
        self.condition = threading.Condition()
        self.done: set = set()
        # shard id -> (worker id, monotonic lease time)
        self.running: Dict[str, Tuple[str, float]] = {}
        self.attempts: Dict[str, int] = {shard.id: 0 for shard in shards}
        self.error: Optional[BaseException] = None

    @property
    def finished(self) -> bool:
        return len(self.done) == len(self.shards) or self.error is not None


class Coordinator:
    """Fans workloads out over the fleet and folds the results back."""

    def __init__(
        self,
        membership: Membership,
        store: Optional[ShardStore] = None,
        config: Optional[ClusterConfig] = None,
        stats=None,
        client_factory=WorkerClient,
    ) -> None:
        self.membership = membership
        self.store = store if store is not None else ShardStore()
        self.config = config if config is not None else ClusterConfig()
        self.stats = stats
        self._client_factory = client_factory
        self._clients: Dict[str, WorkerClient] = {}
        self._clients_lock = threading.Lock()
        self._log = get_logger("cluster")
        self.jobs_completed = 0
        self.shards_completed = 0
        self.shards_stolen = 0
        self.shards_retried = 0
        self._active: Dict[str, Dict[str, object]] = {}
        self._active_lock = threading.Lock()
        for url in self.config.workers:
            self.membership.register(url, static=True)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run_workload(
        self, workload, timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """Execute a workload across the fleet; returns the merged payload.

        Blocks until every shard completes, raises on an exhausted
        shard (:class:`ShardFailedError`), a fleet with nobody alive
        (:class:`NoWorkersError`), or the deadline.
        """
        tracer = get_tracer()
        shards = plan_shards(
            workload.digest, workload.total, self.config.shard_size
        )
        counts = self.store.plan(workload.digest, shards)
        state = _JobState(shards)
        for shard_id in self.store.results(workload.digest):
            if shard_id in state.shards:
                state.done.add(shard_id)
        resumed = len(state.done)
        with self._active_lock:
            self._active[workload.digest] = {
                "kind": workload.kind,
                "shards": len(shards),
                "state": state,
            }
        job_span = tracer.start_span(
            "cluster.job",
            kind=workload.kind,
            workload=workload.digest,
            shards=len(shards),
            resumed=resumed,
            points=workload.total,
        )
        if resumed:
            self._log.info(
                "resuming workload",
                extra={
                    "workload": workload.digest,
                    "done": resumed,
                    "total": len(shards),
                    "stored": counts,
                },
            )
        error: Optional[BaseException] = None
        try:
            self._dispatch(workload, state, job_span, timeout)
            results = self.store.results(workload.digest)
            payload = merged_payload(workload, shards, results)
            self.jobs_completed += 1
            if self.stats is not None:
                self.stats.increment("cluster_jobs_completed")
            return payload
        except BaseException as exc:
            error = exc
            raise
        finally:
            tracer.finish(job_span, error=error)
            with self._active_lock:
                self._active.pop(workload.digest, None)

    def status(self) -> Dict[str, object]:
        """The coordinator's live view for ``GET /v1/cluster/status``."""
        with self._active_lock:
            active = [
                {
                    "workload": digest,
                    "kind": entry["kind"],
                    "shards": entry["shards"],
                    "done": len(entry["state"].done),
                    "running": len(entry["state"].running),
                }
                for digest, entry in sorted(self._active.items())
            ]
        return {
            "workers": self.membership.snapshot(),
            "active": active,
            "totals": {
                "jobs_completed": self.jobs_completed,
                "shards_completed": self.shards_completed,
                "shards_stolen": self.shards_stolen,
                "shards_retried": self.shards_retried,
            },
            "config": {
                "shard_size": self.config.shard_size,
                "lease_timeout": self.config.lease_timeout,
                "steal_after": self.config.steal_after,
                "max_shard_attempts": self.config.max_shard_attempts,
                "fanout_threshold": self.config.fanout_threshold,
            },
        }

    # ------------------------------------------------------------------
    # dispatch machinery
    # ------------------------------------------------------------------
    def _client(self, worker_id: str, url: str) -> WorkerClient:
        with self._clients_lock:
            client = self._clients.get(worker_id)
            if client is None or client.url != url:
                client = self._client_factory(
                    url, timeout=self.config.call_timeout
                )
                self._clients[worker_id] = client
            return client

    def _dispatch(
        self,
        workload,
        state: _JobState,
        job_span,
        timeout: Optional[float],
    ) -> None:
        """Run worker threads until the job finishes or fails."""
        deadline = None if timeout is None else monotonic() + timeout
        threads: Dict[str, threading.Thread] = {}
        while True:
            with state.condition:
                if state.error is not None:
                    raise state.error
                if len(state.done) == len(state.shards):
                    return
            alive = self.membership.alive()
            if self.stats is not None:
                self.stats.set_gauge("cluster_workers_alive", len(alive))
            for info in alive:
                thread = threads.get(info.id)
                if thread is None or not thread.is_alive():
                    thread = threading.Thread(
                        target=self._worker_loop,
                        args=(info.id, info.url, workload, state),
                        name=f"rascad-dispatch-{info.id}",
                        daemon=True,
                    )
                    threads[info.id] = thread
                    thread.start()
            if not alive and not any(
                thread.is_alive() for thread in threads.values()
            ):
                raise NoWorkersError(
                    "no live workers: every worker is dead or none "
                    "ever registered"
                )
            if deadline is not None and monotonic() > deadline:
                raise ClusterError(
                    f"workload {workload.digest} missed its "
                    f"{timeout:.1f}s deadline"
                )
            with state.condition:
                if not state.finished:
                    state.condition.wait(0.2)

    def _claim(
        self, worker_id: str, state: _JobState
    ) -> Optional[Tuple[Shard, Optional[str]]]:
        """Pick the next shard for ``worker_id`` (condition held).

        Returns ``(shard, previous_holder)`` — the holder is ``None``
        for a plain pending claim, a worker id for a steal.  Raises by
        setting ``state.error`` when a claimable shard is out of
        attempts.
        """
        now = monotonic()
        alive_ids = {info.id for info in self.membership.alive()}
        candidates: List[Shard] = []
        stealable: Dict[str, str] = {}
        for shard_id, shard in state.shards.items():
            if shard_id in state.done:
                continue
            holder = state.running.get(shard_id)
            if holder is None:
                candidates.append(shard)
                continue
            holder_id, since = holder
            if holder_id == worker_id:
                continue
            if (
                holder_id not in alive_ids
                or now - since >= self.config.steal_after
            ):
                candidates.append(shard)
                stealable[shard_id] = holder_id
        picked = pick_shard(worker_id, candidates)
        if picked is None:
            return None
        if state.attempts[picked.id] >= self.config.max_shard_attempts:
            state.error = ShardFailedError(
                f"shard {picked.id} [{picked.lo}, {picked.hi}) failed "
                f"{state.attempts[picked.id]} times across the fleet"
            )
            state.condition.notify_all()
            return None
        return picked, stealable.get(picked.id)

    def _worker_loop(
        self, worker_id: str, url: str, workload, state: _JobState
    ) -> None:
        """One worker's dispatch thread for one workload."""
        tracer = get_tracer()
        client = self._client(worker_id, url)
        while True:
            with state.condition:
                claim = None
                while claim is None:
                    if state.finished:
                        return
                    info = self.membership.get(worker_id)
                    if info is None or info.state != "alive":
                        return
                    claim = self._claim(worker_id, state)
                    if claim is None:
                        if state.finished:
                            return
                        state.condition.wait(
                            min(0.2, self.config.steal_after)
                        )
                shard, stolen_from = claim
                state.running[shard.id] = (worker_id, monotonic())
                state.attempts[shard.id] += 1
                attempt = state.attempts[shard.id]
            self.store.lease(shard.id, worker_id)
            if stolen_from is not None:
                self.shards_stolen += 1
                self.membership.record(worker_id, "shards_stolen")
                if self.stats is not None:
                    self.stats.increment("cluster_shards_stolen")
            self.membership.record(worker_id, "in_flight")
            span = tracer.start_span(
                "cluster.shard",
                shard=shard.id,
                lo=shard.lo,
                hi=shard.hi,
                worker=worker_id,
                attempt=attempt,
                stolen_from=stolen_from,
            )
            header = None
            if span is not None and getattr(span, "trace_id", None):
                header = carrier_to_header({
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "sampled": span.sampled,
                    "detail": tracer.detail,
                })
            try:
                points = client.execute_shard(
                    workload, shard.lo, shard.hi, trace_header=header
                )
            except WorkerCallError as error:
                tracer.finish(span, error=error)
                self.membership.record(worker_id, "in_flight", -1)
                self.membership.record(worker_id, "shards_failed")
                self.store.release(shard.id, worker=worker_id)
                with state.condition:
                    holder = state.running.get(shard.id)
                    if holder is not None and holder[0] == worker_id:
                        del state.running[shard.id]
                    if not error.retryable:
                        state.error = error
                    state.condition.notify_all()
                if error.retryable:
                    self.shards_retried += 1
                    if self.stats is not None:
                        self.stats.increment("cluster_shards_retried")
                    self.membership.mark_dead(worker_id, str(error))
                    self._log.warning(
                        "worker failed a shard; requeued",
                        extra={
                            "worker": worker_id,
                            "shard": shard.id,
                            "error": str(error),
                        },
                    )
                return
            except BaseException as error:  # pragma: no cover - defensive
                tracer.finish(span, error=error)
                self.membership.record(worker_id, "in_flight", -1)
                self.store.release(shard.id, worker=worker_id)
                with state.condition:
                    state.error = error
                    state.condition.notify_all()
                return
            tracer.finish(span)
            self.membership.record(worker_id, "in_flight", -1)
            won = self.store.complete(shard.id, points)
            with state.condition:
                if won:
                    state.done.add(shard.id)
                holder = state.running.get(shard.id)
                if holder is not None and holder[0] == worker_id:
                    del state.running[shard.id]
                state.condition.notify_all()
            if won:
                self.shards_completed += 1
                self.membership.record(worker_id, "shards_done")
                self.membership.heartbeat(worker_id)
                if self.stats is not None:
                    self.stats.increment("cluster_shards_completed")
