"""Publish-time evaluation: the numbers the regression gate compares.

Every registry version carries (or lazily acquires) one evaluation
record — steady availability, yearly downtime minutes, and MTTF —
computed through the same engine path ``POST /v1/solve`` uses, so the
gate compares exactly the numbers a client would be served.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import compute_measures, translate
from ..units import nines

#: The fields an evaluation record is guaranteed to carry.
EVALUATION_FIELDS = (
    "availability",
    "yearly_downtime_minutes",
    "mttf_hours",
    "nines",
)


def evaluate_model(
    model, engine=None, method: str = "direct"
) -> Dict[str, float]:
    """The evaluation record for one parsed model.

    With an engine the solve goes through (and warms) its caches; the
    bare :func:`repro.core.translate` fallback produces bit-identical
    numbers for default solver options, so CLI-side registries need no
    engine at all.
    """
    if engine is not None:
        solution = engine.solve(model, method)
    else:
        solution = translate(model)
    measures = compute_measures(solution)
    return {
        "availability": measures.availability,
        "yearly_downtime_minutes": measures.yearly_downtime_minutes,
        "mttf_hours": measures.mttf_hours,
        "nines": nines(measures.availability),
    }


def downtime_delta(
    baseline: Optional[Dict[str, float]],
    candidate: Dict[str, float],
) -> Optional[float]:
    """Candidate-minus-baseline yearly downtime, minutes per year.

    Positive means the candidate is *worse*.  ``None`` when there is
    no baseline to compare against.
    """
    if baseline is None:
        return None
    return float(candidate["yearly_downtime_minutes"]) - float(
        baseline["yearly_downtime_minutes"]
    )
