"""SQLite persistence for the model registry.

Runs on :class:`repro.store.SqliteStore` — short-lived WAL
connections for files (safe to share between the CLI, the HTTP
service, and publish scripts), one locked persistent connection for
``:memory:`` (embedded and test servers), transactions and busy
mapping all inherited from the substrate.

Schema (versioned via ``PRAGMA user_version``): ``registry_models``
(one row per name), ``registry_versions`` (immutable, keyed
``(name, digest)``; the spec document is stored verbatim so
resolution returns byte-identical inputs), ``registry_tags`` (the
mutable pointer layer), and ``registry_tag_history`` (append-only,
what ``rollback`` walks).
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..store import Migration, Schema, SqliteStore
from .types import (
    ModelNotFoundError,
    RefError,
    VersionNotFoundError,
)

#: Default file name inside a cache directory.
REGISTRY_DB_FILENAME = "registry.sqlite3"

_SCHEMA_V1 = """
CREATE TABLE IF NOT EXISTS registry_models (
    name        TEXT PRIMARY KEY,
    description TEXT NOT NULL DEFAULT '',
    created_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS registry_versions (
    name          TEXT NOT NULL,
    digest        TEXT NOT NULL,
    spec          TEXT NOT NULL,
    parent_digest TEXT,
    diff          TEXT NOT NULL DEFAULT '[]',
    evaluation    TEXT,
    created_at    REAL NOT NULL,
    PRIMARY KEY (name, digest)
);
CREATE TABLE IF NOT EXISTS registry_tags (
    name       TEXT NOT NULL,
    tag        TEXT NOT NULL,
    digest     TEXT NOT NULL,
    updated_at REAL NOT NULL,
    PRIMARY KEY (name, tag)
);
CREATE TABLE IF NOT EXISTS registry_tag_history (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    name   TEXT NOT NULL,
    tag    TEXT NOT NULL,
    digest TEXT NOT NULL,
    set_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_registry_tag_history
    ON registry_tag_history (name, tag, id);
"""


def _add_source_column(conn: sqlite3.Connection) -> None:
    """v2: nullable JSON ``source`` on versions (e.g. the study that
    selected it).

    Files written before schema versioning existed may already carry
    the column (the old code probed ``table_info`` and added it ad
    hoc) while sitting at ``user_version`` 0, so this step checks
    before altering instead of assuming v1 state.
    """
    columns = {
        row[1]
        for row in conn.execute("PRAGMA table_info(registry_versions)")
    }
    if "source" not in columns:
        conn.execute(
            "ALTER TABLE registry_versions ADD COLUMN source TEXT"
        )


#: The registry schema, versioned via ``PRAGMA user_version``.
REGISTRY_SCHEMA = Schema(
    "registry",
    [
        Migration(1, "models, versions, tags, tag history", _SCHEMA_V1),
        Migration(2, "versions.source column", _add_source_column),
    ],
)


class RegistryStore:
    """SQLite-backed storage for models, versions, tags, and history."""

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.db = SqliteStore(path, REGISTRY_SCHEMA)
        self.path = str(self.db.path)

    def close(self) -> None:
        self.db.close()

    # ------------------------------------------------------------------
    # models
    # ------------------------------------------------------------------
    def upsert_model(
        self,
        name: str,
        description: str = "",
        now: Optional[float] = None,
    ) -> bool:
        """Create the model row if missing; returns ``created``."""
        now = time.time() if now is None else now
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO registry_models "
                "(name, description, created_at) VALUES (?, ?, ?)",
                (name, description, now),
            )
            created = cursor.rowcount == 1
            if not created and description:
                conn.execute(
                    "UPDATE registry_models SET description = ? "
                    "WHERE name = ? AND description = ''",
                    (description, name),
                )
            return created

    def model_row(self, name: str) -> Optional[Dict[str, object]]:
        with self.db.connection() as conn:
            row = conn.execute(
                "SELECT * FROM registry_models WHERE name = ?", (name,)
            ).fetchone()
        return dict(row) if row is not None else None

    def require_model(self, name: str) -> Dict[str, object]:
        row = self.model_row(name)
        if row is None:
            raise ModelNotFoundError(
                f"no model {name!r} in the registry; "
                f"known: {self.names()}"
            )
        return row

    def names(self) -> List[str]:
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT name FROM registry_models ORDER BY name"
            ).fetchall()
        return [row["name"] for row in rows]

    def list_models(self) -> List[Dict[str, object]]:
        """One summary row per model: description, counts, tags."""
        with self.db.connection() as conn:
            rows = conn.execute(
                """
                SELECT m.name, m.description, m.created_at,
                       (SELECT COUNT(*) FROM registry_versions v
                         WHERE v.name = m.name) AS versions,
                       (SELECT COUNT(*) FROM registry_tags t
                         WHERE t.name = m.name) AS tags
                FROM registry_models m ORDER BY m.name
                """
            ).fetchall()
            summaries = []
            for row in rows:
                tags = conn.execute(
                    "SELECT tag, digest FROM registry_tags "
                    "WHERE name = ? ORDER BY tag",
                    (row["name"],),
                ).fetchall()
                summaries.append({
                    "name": row["name"],
                    "description": row["description"],
                    "created_at": row["created_at"],
                    "versions": row["versions"],
                    "tags": {t["tag"]: t["digest"] for t in tags},
                })
        return summaries

    # ------------------------------------------------------------------
    # versions
    # ------------------------------------------------------------------
    def insert_version(
        self,
        name: str,
        digest: str,
        spec: Dict[str, object],
        parent_digest: Optional[str],
        diff: List[Dict[str, object]],
        evaluation: Optional[Dict[str, float]],
        now: Optional[float] = None,
        source: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Insert an immutable version row; returns ``created``.

        Re-publishing an existing ``(name, digest)`` is a no-op — the
        stored spec, lineage, and evaluation are never overwritten.
        """
        now = time.time() if now is None else now
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO registry_versions "
                "(name, digest, spec, parent_digest, diff, evaluation,"
                " created_at, source) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    name, digest,
                    json.dumps(spec, sort_keys=True),
                    parent_digest,
                    json.dumps(diff),
                    None if evaluation is None
                    else json.dumps(evaluation, sort_keys=True),
                    now,
                    None if source is None
                    else json.dumps(source, sort_keys=True),
                ),
            )
            return cursor.rowcount == 1

    def version_row(
        self, name: str, digest: str
    ) -> Optional[Dict[str, object]]:
        """The decoded version row for an exact digest, or ``None``."""
        with self.db.connection() as conn:
            row = conn.execute(
                "SELECT * FROM registry_versions "
                "WHERE name = ? AND digest = ?",
                (name, digest),
            ).fetchone()
        return self._decode_version(row)

    def find_digest(self, name: str, prefix: str) -> str:
        """The unique full digest starting with ``prefix``.

        Raises :class:`VersionNotFoundError` when nothing matches and
        :class:`RefError` when the prefix is ambiguous (git-style).
        """
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT digest FROM registry_versions "
                "WHERE name = ? AND digest LIKE ? LIMIT 2",
                (name, prefix + "%"),
            ).fetchall()
        if not rows:
            raise VersionNotFoundError(
                f"model {name!r} has no version with digest "
                f"prefix {prefix!r}"
            )
        if len(rows) > 1:
            raise RefError(
                f"digest prefix {prefix!r} is ambiguous for model "
                f"{name!r}; give more characters"
            )
        return rows[0]["digest"]

    def list_versions(self, name: str) -> List[Dict[str, object]]:
        """Version summaries, newest first (no spec documents)."""
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT name, digest, parent_digest, evaluation, "
                "created_at FROM registry_versions WHERE name = ? "
                "ORDER BY created_at DESC, digest",
                (name,),
            ).fetchall()
        return [
            {
                "digest": row["digest"],
                "parent_digest": row["parent_digest"],
                "evaluation": (
                    None if row["evaluation"] is None
                    else json.loads(row["evaluation"])
                ),
                "created_at": row["created_at"],
            }
            for row in rows
        ]

    def set_evaluation(
        self, name: str, digest: str, evaluation: Dict[str, float]
    ) -> None:
        """Backfill a lazily computed evaluation, first write wins."""
        with self.db.transaction() as conn:
            conn.execute(
                "UPDATE registry_versions SET evaluation = ? "
                "WHERE name = ? AND digest = ? AND evaluation IS NULL",
                (json.dumps(evaluation, sort_keys=True), name, digest),
            )

    def _decode_version(
        self, row: Optional[sqlite3.Row]
    ) -> Optional[Dict[str, object]]:
        if row is None:
            return None
        return {
            "name": row["name"],
            "digest": row["digest"],
            "spec": json.loads(row["spec"]),
            "parent_digest": row["parent_digest"],
            "diff": json.loads(row["diff"]),
            "evaluation": (
                None if row["evaluation"] is None
                else json.loads(row["evaluation"])
            ),
            "created_at": row["created_at"],
            "source": (
                None if row["source"] is None
                else json.loads(row["source"])
            ),
        }

    # ------------------------------------------------------------------
    # tags
    # ------------------------------------------------------------------
    def tag_digest(self, name: str, tag: str) -> Optional[str]:
        with self.db.connection() as conn:
            row = conn.execute(
                "SELECT digest FROM registry_tags "
                "WHERE name = ? AND tag = ?",
                (name, tag),
            ).fetchone()
        return row["digest"] if row is not None else None

    def tags_for(self, name: str) -> Dict[str, str]:
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT tag, digest FROM registry_tags "
                "WHERE name = ? ORDER BY tag",
                (name,),
            ).fetchall()
        return {row["tag"]: row["digest"] for row in rows}

    def set_tag(
        self,
        name: str,
        tag: str,
        digest: str,
        now: Optional[float] = None,
    ) -> Optional[str]:
        """Point ``tag`` at ``digest``; returns the previous digest.

        A no-op (no history row) when the tag already points there, so
        idempotent re-publishes do not spam the rollback history.
        """
        now = time.time() if now is None else now
        with self.db.transaction() as conn:
            row = conn.execute(
                "SELECT digest FROM registry_tags "
                "WHERE name = ? AND tag = ?",
                (name, tag),
            ).fetchone()
            previous = row["digest"] if row is not None else None
            if previous == digest:
                return previous
            conn.execute(
                "INSERT INTO registry_tags (name, tag, digest,"
                " updated_at) VALUES (?, ?, ?, ?) "
                "ON CONFLICT (name, tag) DO UPDATE SET "
                "digest = excluded.digest, "
                "updated_at = excluded.updated_at",
                (name, tag, digest, now),
            )
            conn.execute(
                "INSERT INTO registry_tag_history "
                "(name, tag, digest, set_at) VALUES (?, ?, ?, ?)",
                (name, tag, digest, now),
            )
            return previous

    def tag_history(
        self, name: str, tag: str, limit: int = 20
    ) -> List[Dict[str, object]]:
        """Tag movements, newest first."""
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT digest, set_at FROM registry_tag_history "
                "WHERE name = ? AND tag = ? ORDER BY id DESC LIMIT ?",
                (name, tag, limit),
            ).fetchall()
        return [
            {"digest": row["digest"], "set_at": row["set_at"]}
            for row in rows
        ]

    def previous_tag_digest(self, name: str, tag: str) -> Optional[str]:
        """The digest to roll back to: the most recent history entry
        that differs from the tag's current target."""
        current = self.tag_digest(name, tag)
        if current is None:
            return None
        for entry in self.tag_history(name, tag, limit=100):
            if entry["digest"] != current:
                return str(entry["digest"])
        return None

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Registry-wide gauges for ``/metrics``."""
        with self.db.connection() as conn:
            models = conn.execute(
                "SELECT COUNT(*) AS n FROM registry_models"
            ).fetchone()["n"]
            versions = conn.execute(
                "SELECT COUNT(*) AS n FROM registry_versions"
            ).fetchone()["n"]
            tags = conn.execute(
                "SELECT COUNT(*) AS n FROM registry_tags"
            ).fetchone()["n"]
        return {"models": models, "versions": versions, "tags": tags}
