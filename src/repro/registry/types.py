"""Records, errors, and content digests for the model registry.

A registry *version* is immutable and content-addressed: its digest is
a SHA-256 over the canonical payload of the **parsed** model (the same
:func:`repro.engine.keys.canonical_payload` encoding the solve cache
keys on), so two spec documents that differ only in field order, float
spelling, or annotation text share one version — exactly when they
solve bit-identically.  Tags (``prod``, ``staging``, ``latest``) are
the mutable layer on top.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import RascadError
from ..ident import content_digest

#: Registry model and tag names: DNS-label-ish, no ``@`` (the ref
#: separator), no ``/`` (the URL separator).
NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: The auto-maintained tag every publish moves to the new version.
LATEST_TAG = "latest"

#: Minimum hex prefix length accepted when a ref selects by digest.
MIN_DIGEST_PREFIX = 8

_HEX_RE = re.compile(r"^[0-9a-f]+$")


class RegistryError(RascadError):
    """Base class for model-registry failures."""


class ModelNotFoundError(RegistryError):
    """No model with the given name exists in the registry."""


class VersionNotFoundError(RegistryError):
    """A model exists but the selected tag/digest does not."""


class RefError(RegistryError):
    """A model reference string is malformed or ambiguous."""


class RegressionError(RegistryError):
    """Publish-time gate: the candidate regresses the tagged baseline.

    Attributes:
        details: Structured description of the rejected rollout —
            model, tag, both digests, both yearly-downtime numbers,
            the delta, and the threshold that was exceeded.  The
            service surfaces this verbatim inside the
            ``regression_detected`` error envelope.
    """

    def __init__(self, message: str, details: Dict[str, object]) -> None:
        super().__init__(message)
        self.details = dict(details)


def valid_name(name: str, what: str = "model name") -> str:
    """``name`` if it is a legal registry name, else :class:`RefError`."""
    if not isinstance(name, str) or not NAME_RE.match(name):
        raise RefError(
            f"invalid {what} {name!r}: expected "
            "[A-Za-z0-9][A-Za-z0-9._-]{0,63}"
        )
    return name


def parse_ref(ref: str) -> Tuple[str, Optional[str]]:
    """Split ``name``, ``name@tag`` or ``name@digest`` into its parts.

    The selector is returned verbatim (tag resolution versus digest
    prefix lookup is the registry's job); a bare name selects the
    :data:`LATEST_TAG`.
    """
    if not isinstance(ref, str) or not ref:
        raise RefError("model ref must be a non-empty string")
    name, separator, selector = ref.partition("@")
    valid_name(name)
    if separator and not selector:
        raise RefError(
            f"invalid model ref {ref!r}: expected name, name@tag, "
            "or name@digest"
        )
    return name, (selector if separator else None)


def looks_like_digest(selector: str) -> bool:
    """True when a ref selector can only be a hex digest prefix."""
    return (
        len(selector) >= MIN_DIGEST_PREFIX
        and _HEX_RE.match(selector) is not None
    )


def spec_digest(model) -> str:
    """The content digest of a parsed model, as a full hex string.

    Unlike :func:`repro.engine.keys.model_digest` no solver token is
    mixed in: a registry version identifies *what* is modeled, not how
    it will be solved.
    """
    from ..engine.keys import canonical_payload

    document = {
        "kind": "registry_version",
        "model": canonical_payload(model),
    }
    return content_digest(document)


def diff_payload(entries) -> List[Dict[str, object]]:
    """Serialize :func:`repro.spec.diff.diff_models` entries to JSON."""
    return [
        {
            "kind": entry.kind.value,
            "path": entry.path,
            "field": entry.field,
            "old": entry.old,
            "new": entry.new,
        }
        for entry in entries
    ]


@dataclass(frozen=True)
class VersionRecord:
    """One immutable, content-addressed version of a named model."""

    name: str
    digest: str
    spec: Dict[str, object]
    parent_digest: Optional[str]
    diff: List[Dict[str, object]]
    evaluation: Optional[Dict[str, float]]
    created_at: float
    #: Provenance of the version (e.g. the study that selected it),
    #: or ``None`` for direct publishes.
    source: Optional[Dict[str, object]] = None

    def to_dict(self, include_spec: bool = False) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "digest": self.digest,
            "parent_digest": self.parent_digest,
            "diff": self.diff,
            "evaluation": self.evaluation,
            "created_at": self.created_at,
            "source": self.source,
        }
        if include_spec:
            payload["spec"] = self.spec
        return payload


@dataclass(frozen=True)
class PublishResult:
    """What one :meth:`ModelRegistry.publish` call did."""

    version: VersionRecord
    created: bool
    #: The gate's comparison against the tagged baseline, or ``None``
    #: when no gating applied (first version, no target tag, or the
    #: tag already pointed at this digest).
    gate: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version.to_dict(),
            "created": self.created,
            "gate": self.gate,
        }
