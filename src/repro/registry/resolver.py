"""Ref resolution: ``name``, ``name@tag``, ``name@digest`` to a version.

Resolution order for a selector: exact tag match first, then — when
the selector can only be hex — a unique digest-prefix lookup.  A bare
name resolves through the auto-maintained ``latest`` tag.  Resolution
happens exactly once per request (at the service or coordinator that
accepted the ref), so everything downstream — engine cache keys,
cluster shard digests, job ids — is computed from the resolved spec
and stays bit-identical to an inline submission.
"""

from __future__ import annotations

from typing import Dict, Optional

from .store import RegistryStore
from .types import (
    LATEST_TAG,
    VersionNotFoundError,
    looks_like_digest,
    parse_ref,
)


def resolve_selector(
    store: RegistryStore, name: str, selector: Optional[str]
) -> str:
    """The full digest a selector picks within one model."""
    store.require_model(name)
    if selector is None:
        selector = LATEST_TAG
    digest = store.tag_digest(name, selector)
    if digest is not None:
        return digest
    if looks_like_digest(selector):
        return store.find_digest(name, selector)
    raise VersionNotFoundError(
        f"model {name!r} has no tag {selector!r}; "
        f"tags: {sorted(store.tags_for(name))}"
    )


def resolve_version(
    store: RegistryStore, ref: str
) -> Dict[str, object]:
    """The decoded version row (spec included) a ref points at."""
    name, selector = parse_ref(ref)
    digest = resolve_selector(store, name, selector)
    row = store.version_row(name, digest)
    if row is None:  # a tag pointing at a deleted/foreign digest
        raise VersionNotFoundError(
            f"model {name!r} has no version {digest!r}"
        )
    return row
