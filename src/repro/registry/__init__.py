"""Versioned model registry — named models, immutable content-digest
versions, mutable tags, and availability-regression gating.

The paper's RAScad is a *shared* modeling tool: "a library of models
for existing Sun products" maintained by engineers at different sites.
This package is that sharing layer for the reproduction:

* :mod:`.types` — records, errors, refs (``name@tag`` /
  ``name@digest``), and the content digest a version is addressed by.
* :mod:`.store` — SQLite persistence (jobs-store durability idioms):
  models, immutable versions with lineage diffs and evaluation
  records, tags, and the append-only tag history ``rollback`` walks.
* :mod:`.evaluate` — the publish-time evaluation record (availability,
  yearly downtime, MTTF) the regression gate compares.
* :mod:`.resolver` — one-shot ref resolution, so engine cache keys and
  cluster shard digests are computed from the resolved spec and stay
  bit-identical to inline submission.
* :mod:`.registry` — the :class:`ModelRegistry` facade: publish with
  gating, resolve, tag, rollback, library seeding.

The service mounts it under ``/v1/models`` and accepts
``"model_ref"`` anywhere an inline ``"spec"`` is accepted; the CLI
front-end is ``rascad models``.
"""

from pathlib import Path
from typing import Optional, Union

from .evaluate import EVALUATION_FIELDS, downtime_delta, evaluate_model
from .registry import (
    DEFAULT_REGRESSION_THRESHOLD,
    LIBRARY_SEEDS,
    ModelRegistry,
)
from .resolver import resolve_selector, resolve_version
from .store import REGISTRY_DB_FILENAME, RegistryStore
from .types import (
    LATEST_TAG,
    MIN_DIGEST_PREFIX,
    ModelNotFoundError,
    PublishResult,
    RefError,
    RegistryError,
    RegressionError,
    VersionNotFoundError,
    VersionRecord,
    looks_like_digest,
    parse_ref,
    spec_digest,
)


def open_registry(
    db_path: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    **kwargs,
) -> ModelRegistry:
    """A :class:`ModelRegistry` at the conventional location.

    Mirrors :func:`repro.jobs.open_store`: an explicit ``db_path``
    wins, else ``registry.sqlite3`` inside ``cache_dir``, else inside
    the default cache directory — so the CLI and a served registry
    share one file by default.  Remaining kwargs go to
    :class:`ModelRegistry`.
    """
    if db_path is None:
        from ..engine import default_cache_dir

        directory = (
            Path(cache_dir) if cache_dir is not None
            else default_cache_dir()
        )
        db_path = Path(directory).expanduser() / REGISTRY_DB_FILENAME
    return ModelRegistry(RegistryStore(db_path), **kwargs)


__all__ = [
    "DEFAULT_REGRESSION_THRESHOLD",
    "EVALUATION_FIELDS",
    "LATEST_TAG",
    "LIBRARY_SEEDS",
    "MIN_DIGEST_PREFIX",
    "ModelNotFoundError",
    "ModelRegistry",
    "PublishResult",
    "REGISTRY_DB_FILENAME",
    "RefError",
    "RegistryError",
    "RegistryStore",
    "RegressionError",
    "VersionNotFoundError",
    "VersionRecord",
    "downtime_delta",
    "evaluate_model",
    "looks_like_digest",
    "open_registry",
    "parse_ref",
    "resolve_selector",
    "resolve_version",
    "spec_digest",
]
