"""The registry facade: publish, resolve, tag, rollback, gate.

:class:`ModelRegistry` ties the pieces together — content digesting
(:mod:`.types`), SQLite persistence (:mod:`.store`), ref resolution
(:mod:`.resolver`), and publish-time evaluation (:mod:`.evaluate`) —
and emits ``registry.publish``/``registry.resolve`` spans plus
``registry_*`` counters so publish traffic shows up in ``/metrics``
like every other subsystem.

The regression gate runs at publish time: when a publish targets a tag
that already points at another version, the candidate's yearly
downtime is compared against the tagged baseline's, and the publish is
rejected with a structured :class:`~.types.RegressionError` when it
worsens by more than the configured threshold (``force=True``
overrides, and the override is recorded in the result).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..database import PartsDatabase, builtin_database
from ..obs.trace import get_tracer
from ..spec import model_to_spec, parse_spec
from ..spec.diff import diff_models
from .evaluate import downtime_delta, evaluate_model
from .resolver import resolve_selector, resolve_version
from .store import RegistryStore
from .types import (
    LATEST_TAG,
    PublishResult,
    RegistryError,
    RegressionError,
    VersionRecord,
    diff_payload,
    spec_digest,
    valid_name,
)

#: Default gate threshold: reject a rollout that costs more than one
#: extra minute of downtime per year over the tagged baseline.
DEFAULT_REGRESSION_THRESHOLD = 1.0

#: The built-in library models every server seeds at startup, with
#: the descriptions ``/v1/models`` lists them under.
LIBRARY_SEEDS: Dict[str, str] = {
    "datacenter": "Paper Figures 1-2 Data Center System",
    "e10000": "Enterprise-10000-class single server (experiment E6)",
    "workgroup": "Small, mostly non-redundant workgroup server",
}


def _library_factories() -> Dict[str, Callable]:
    from ..library import datacenter_model, e10000_model, workgroup_model

    return {
        "datacenter": datacenter_model,
        "e10000": e10000_model,
        "workgroup": workgroup_model,
    }


class ModelRegistry:
    """Versioned model registry with tags and availability gating.

    Args:
        store: The SQLite persistence layer.
        engine: Optional :class:`repro.engine.Engine` evaluations run
            through (shares its solve cache); without one, evaluation
            falls back to a bare ``translate`` with identical numbers.
        database: Parts database resolved specs parse against.
        default_threshold: Gate threshold in downtime minutes/year.
        stats: Stats collector for ``registry_*`` counters; defaults
            to the engine's.
    """

    def __init__(
        self,
        store: RegistryStore,
        engine=None,
        database: Optional[PartsDatabase] = None,
        default_threshold: float = DEFAULT_REGRESSION_THRESHOLD,
        stats=None,
    ) -> None:
        self.store = store
        self.engine = engine
        self.database = (
            database if database is not None else builtin_database()
        )
        self.default_threshold = float(default_threshold)
        self.stats = stats if stats is not None else getattr(
            engine, "stats", None
        )

    def _increment(self, counter: str, amount: int = 1) -> None:
        if self.stats is not None:
            self.stats.increment(counter, amount)

    def close(self) -> None:
        self.store.close()

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        spec: Mapping[str, object],
        name: str,
        description: Optional[str] = None,
        tag: Optional[str] = None,
        force: bool = False,
        threshold: Optional[float] = None,
        evaluate: bool = True,
        source: Optional[Dict[str, object]] = None,
    ) -> PublishResult:
        """Publish a spec as a version of ``name``; optionally tag it.

        The spec document is validated (the same ``parse_spec`` path
        every endpoint uses), digested from its *parsed* canonical
        form, and stored verbatim — resolution returns the exact
        document, so ref-based solving is bit-identical to inline
        submission.  Idempotent: re-publishing an existing digest
        creates nothing and never rewrites lineage.  ``source``
        records provenance on *new* versions (e.g. ``{"study_id":
        ...}`` when a study publishes its winner).
        """
        valid_name(name)
        if tag is not None:
            valid_name(tag, "tag name")
        with get_tracer().span("registry.publish", model=name) as span:
            model = parse_spec(spec, database=self.database)
            digest = spec_digest(model)
            span.set_attr("digest", digest[:16])
            now = time.time()
            self.store.upsert_model(name, description or "", now)
            existing = self.store.version_row(name, digest)
            created = existing is None
            if created:
                parent = self.store.tag_digest(name, LATEST_TAG)
                diff = self._lineage_diff(name, parent, model)
                evaluation = (
                    evaluate_model(model, engine=self.engine)
                    if evaluate else None
                )
                self.store.insert_version(
                    name, digest, dict(spec), parent, diff,
                    evaluation, now, source=source,
                )
            gate = self._gate(
                name, digest, model, tag, force, threshold
            )
            if tag is not None:
                self.store.set_tag(name, tag, digest, now)
            self.store.set_tag(name, LATEST_TAG, digest, now)
            self._increment("registry_publishes")
            record = self._record(self.store.version_row(name, digest))
            return PublishResult(
                version=record, created=created, gate=gate
            )

    def _lineage_diff(
        self, name: str, parent: Optional[str], model
    ) -> List[Dict[str, object]]:
        """The structured diff against the parent version, if any."""
        if parent is None:
            return []
        parent_row = self.store.version_row(name, parent)
        if parent_row is None:
            return []
        parent_model = parse_spec(
            parent_row["spec"], database=self.database
        )
        return diff_payload(diff_models(parent_model, model))

    def _gate(
        self,
        name: str,
        digest: str,
        model,
        tag: Optional[str],
        force: bool,
        threshold: Optional[float],
    ) -> Optional[Dict[str, object]]:
        """Run the regression gate for a tag move; raises on reject."""
        if tag is None or tag == LATEST_TAG:
            return None
        baseline_digest = self.store.tag_digest(name, tag)
        if baseline_digest is None or baseline_digest == digest:
            return None
        baseline = self.evaluation_for(name, baseline_digest)
        candidate = self.evaluation_for(name, digest, model=model)
        delta = downtime_delta(baseline, candidate)
        limit = (
            self.default_threshold if threshold is None
            else float(threshold)
        )
        gate: Dict[str, object] = {
            "tag": tag,
            "baseline_digest": baseline_digest,
            "candidate_digest": digest,
            "baseline_downtime_minutes": (
                baseline["yearly_downtime_minutes"]
            ),
            "candidate_downtime_minutes": (
                candidate["yearly_downtime_minutes"]
            ),
            "downtime_delta_minutes": delta,
            "threshold_minutes": limit,
            "forced": False,
        }
        if delta is not None and delta > limit:
            if not force:
                self._increment("registry_regressions_blocked")
                raise RegressionError(
                    f"publishing {name}@{digest[:12]} to tag "
                    f"{tag!r} worsens yearly downtime by "
                    f"{delta:+.3f} minutes (baseline "
                    f"{baseline_digest[:12]}, threshold "
                    f"{limit:g}); re-run with force to override",
                    details=gate,
                )
            gate["forced"] = True
            self._increment("registry_regressions_forced")
        return gate

    def check(
        self,
        spec: Mapping[str, object],
        name: str,
        tag: str,
        threshold: Optional[float] = None,
    ) -> Dict[str, object]:
        """Dry-run the gate: what would publishing to ``tag`` do?

        Writes nothing.  Returns the gate comparison plus a
        ``would_reject`` verdict (``False`` when the tag is unheld or
        already points at this content).
        """
        valid_name(name)
        valid_name(tag, "tag name")
        model = parse_spec(spec, database=self.database)
        digest = spec_digest(model)
        limit = (
            self.default_threshold if threshold is None
            else float(threshold)
        )
        verdict: Dict[str, object] = {
            "name": name,
            "tag": tag,
            "candidate_digest": digest,
            "threshold_minutes": limit,
            "would_reject": False,
            "downtime_delta_minutes": None,
            "baseline_digest": None,
        }
        row = self.store.model_row(name)
        baseline_digest = (
            self.store.tag_digest(name, tag) if row is not None else None
        )
        if baseline_digest is None or baseline_digest == digest:
            return verdict
        baseline = self.evaluation_for(name, baseline_digest)
        candidate = evaluate_model(model, engine=self.engine)
        delta = downtime_delta(baseline, candidate)
        verdict.update({
            "baseline_digest": baseline_digest,
            "baseline_downtime_minutes": (
                baseline["yearly_downtime_minutes"]
            ),
            "candidate_downtime_minutes": (
                candidate["yearly_downtime_minutes"]
            ),
            "downtime_delta_minutes": delta,
            "would_reject": delta is not None and delta > limit,
        })
        return verdict

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, ref: str) -> VersionRecord:
        """The version a ref points at, spec included."""
        with get_tracer().span("registry.resolve", ref=ref) as span:
            row = resolve_version(self.store, ref)
            span.set_attr("digest", str(row["digest"])[:16])
            self._increment("registry_resolves")
            return self._record(row)

    def resolve_spec(self, ref: str) -> Dict[str, object]:
        """The stored spec document a ref points at, verbatim.

        This is what ``"model_ref"`` requests substitute for their
        ``"spec"`` — the exact JSON document that was published, so
        digests computed downstream match inline submission.
        """
        return self.resolve(ref).spec

    # ------------------------------------------------------------------
    # tags and rollback
    # ------------------------------------------------------------------
    def move_tag(
        self, name: str, tag: str, selector: str
    ) -> Tuple[Optional[str], str]:
        """Point ``tag`` at the version ``selector`` picks.

        Returns ``(previous_digest, new_digest)``.  Unlike publish,
        an explicit tag move is an operator action and is not gated.
        """
        valid_name(tag, "tag name")
        digest = resolve_selector(self.store, name, selector)
        previous = self.store.set_tag(name, tag, digest)
        self._increment("registry_tag_moves")
        return previous, digest

    def rollback(self, name: str, tag: str) -> Tuple[str, str]:
        """Move ``tag`` back to its previous distinct target.

        Returns ``(rolled_back_from, rolled_back_to)``.
        """
        self.store.require_model(name)
        current = self.store.tag_digest(name, tag)
        if current is None:
            raise RegistryError(
                f"model {name!r} has no tag {tag!r} to roll back"
            )
        previous = self.store.previous_tag_digest(name, tag)
        if previous is None:
            raise RegistryError(
                f"tag {name}@{tag} has no previous version in its "
                "history to roll back to"
            )
        self.store.set_tag(name, tag, previous)
        self._increment("registry_rollbacks")
        return current, previous

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return self.store.names()

    def list_models(self) -> List[Dict[str, object]]:
        return self.store.list_models()

    def model_detail(self, name: str) -> Dict[str, object]:
        """One model's tags and version summaries for the API."""
        row = self.store.require_model(name)
        return {
            "name": row["name"],
            "description": row["description"],
            "created_at": row["created_at"],
            "tags": self.store.tags_for(name),
            "versions": self.store.list_versions(name),
        }

    def version_detail(self, name: str, selector: str) -> VersionRecord:
        digest = resolve_selector(self.store, name, selector)
        row = self.store.version_row(name, digest)
        if row is None:
            raise RegistryError(
                f"model {name!r} has no version {digest!r}"
            )
        return self._record(row)

    def evaluation_for(
        self, name: str, digest: str, model=None
    ) -> Dict[str, float]:
        """A version's evaluation record, computed and backfilled
        lazily when the version was published without one (library
        seeds)."""
        row = self.store.version_row(name, digest)
        if row is None:
            raise RegistryError(
                f"model {name!r} has no version {digest!r}"
            )
        if row["evaluation"] is not None:
            return dict(row["evaluation"])
        if model is None:
            model = parse_spec(row["spec"], database=self.database)
        evaluation = evaluate_model(model, engine=self.engine)
        self.store.set_evaluation(name, digest, evaluation)
        return evaluation

    def counts(self) -> Dict[str, int]:
        return self.store.counts()

    # ------------------------------------------------------------------
    # library seeding
    # ------------------------------------------------------------------
    def seed_library(self) -> int:
        """Publish the built-in library models (idempotent, lazy).

        Seeds carry no evaluation — it is computed and backfilled the
        first time the gate (or an explicit evaluation query) needs
        it — so server startup stays solve-free and cheap.  Returns
        the number of versions actually created.
        """
        created = 0
        for name, factory in _library_factories().items():
            result = self.publish(
                model_to_spec(factory()),
                name=name,
                description=LIBRARY_SEEDS.get(name, ""),
                evaluate=False,
            )
            created += 1 if result.created else 0
        return created

    def _record(self, row: Mapping[str, object]) -> VersionRecord:
        return VersionRecord(
            name=str(row["name"]),
            digest=str(row["digest"]),
            spec=dict(row["spec"]),
            parent_digest=row["parent_digest"],
            diff=list(row["diff"]),
            evaluation=(
                None if row["evaluation"] is None
                else dict(row["evaluation"])
            ),
            created_at=float(row["created_at"]),
            source=(
                None if row.get("source") is None
                else dict(row["source"])
            ),
        )
