"""Markdown model reports — RAScad's documentation generation.

One call produces a complete engineering document for a model: the
block inventory with parameters, the solved availability hierarchy, the
system measure table, and the downtime budget.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.downtime import downtime_budget
from ..core.block import DiagramBlockModel
from ..core.measures import SystemMeasures, compute_measures
from ..core.translator import SystemSolution, translate
from ..units import nines


def _measure_rows(measures: SystemMeasures) -> List[str]:
    return [
        "| Measure | Value |",
        "|---|---|",
        f"| Steady-state availability | {measures.availability:.9f} |",
        f"| Nines | {nines(measures.availability):.2f} |",
        (
            "| Yearly downtime | "
            f"{measures.yearly_downtime_minutes:.2f} minutes |"
        ),
        f"| System failures / year | {measures.failures_per_year:.4f} |",
        (
            "| Mean time between interruptions | "
            f"{measures.mean_time_between_interruptions:.1f} hours |"
        ),
        (
            "| Mean downtime per interruption | "
            f"{measures.mean_downtime_hours * 60:.1f} minutes |"
        ),
        f"| Mission time T | {measures.mission_time_hours:.0f} hours |",
        (
            "| Interval availability (0, T) | "
            f"{measures.interval_availability:.9f} |"
        ),
        f"| Reliability at T | {measures.reliability_at_mission:.6f} |",
        f"| MTTF | {measures.mttf_hours:.1f} hours |",
        (
            "| Interval failure rate (0, T) | "
            f"{measures.interval_failure_rate:.3e} /hour |"
        ),
    ]


def model_report(
    model: DiagramBlockModel,
    solution: Optional[SystemSolution] = None,
    measures: Optional[SystemMeasures] = None,
) -> str:
    """A complete markdown report for a diagram/block model.

    Pass a pre-computed solution/measures to avoid re-solving; both are
    computed on demand otherwise.
    """
    solution = solution if solution is not None else translate(model)
    measures = (
        measures if measures is not None else compute_measures(solution)
    )

    lines: List[str] = [f"# RAS model report: {model.name}", ""]
    lines.append(
        f"Levels: {model.depth()} · blocks: {model.block_count()} · "
        f"physical units: {model.component_count()}"
    )
    lines.append("")

    lines.append("## System measures")
    lines.append("")
    lines.extend(_measure_rows(measures))
    lines.append("")

    lines.append("## Block inventory")
    lines.append("")
    lines.append(
        "| Level | Block | Part # | N | K | MTBF (h) | FIT | "
        "Recovery | Repair | Availability |"
    )
    lines.append("|---|---|---|---|---|---|---|---|---|---|")
    for level, path, block in model.walk():
        parameters = block.parameters
        solved = solution.by_path.get(path)
        availability = (
            f"{solved.availability:.9f}" if solved is not None else "-"
        )
        lines.append(
            f"| {level} | {block.name} | {parameters.part_number or '-'} "
            f"| {parameters.quantity} | {parameters.min_required} "
            f"| {parameters.mtbf_hours:g} | {parameters.transient_fit:g} "
            f"| {parameters.recovery.value} | {parameters.repair.value} "
            f"| {availability} |"
        )
    lines.append("")

    lines.append("## Downtime budget")
    lines.append("")
    lines.append("| Block | Model type | Downtime (min/yr) | Share |")
    lines.append("|---|---|---|---|")
    for row in downtime_budget(solution):
        model_type = (
            f"Type {row.model_type}" if row.model_type is not None else "RBD"
        )
        lines.append(
            f"| {row.path} | {model_type} "
            f"| {row.yearly_downtime_minutes:.3f} | {row.share:.1%} |"
        )
    lines.append("")
    return "\n".join(lines)
