"""Rendering of design-space study results: Pareto fronts.

Two views of a finished study payload (the document
:func:`repro.studies.aggregate_study` produces):

* :func:`render_front_table` — an aligned text table of the
  non-dominated candidates, cheapest first, with the winner marked.
* :func:`front_to_dot` — a Graphviz-dot scatter of *all* evaluated
  candidates in cost/downtime space, front members highlighted, so
  ``dot -Kneato -Tsvg`` draws the trade-off curve directly.
"""

from __future__ import annotations

from typing import List, Mapping

from ..errors import SpecError


def _front_rows(payload: Mapping[str, object]) -> List[Mapping[str, object]]:
    from ..studies import front_rows

    if not isinstance(payload, Mapping) or "front" not in payload:
        raise SpecError(
            "expected a finished study payload with a 'front' key"
        )
    return front_rows(payload)


def _changes_text(row: Mapping[str, object]) -> str:
    changes = row.get("changes") or []
    parts = []
    for change in changes:
        where = change.get("path") or "(global)"
        parts.append(
            f"{where}.{change.get('field')}={change.get('value')}"
        )
    return ", ".join(parts) if parts else "(base model)"


def render_front_table(payload: Mapping[str, object]) -> str:
    """The Pareto front as aligned text, cheapest candidate first."""
    rows = _front_rows(payload)
    winner = payload.get("winner")
    lines: List[str] = [
        f"Study: {payload.get('name')}  "
        f"[{payload.get('strategy')}; {payload.get('evaluated')} evaluated, "
        f"{payload.get('feasible')} feasible, {len(rows)} on front]"
    ]
    lines.append("")
    header = (
        f"{'':>2} {'idx':>4} {'cost':>12} {'downtime min/yr':>16} "
        f"{'availability':>14}  changes"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in sorted(rows, key=lambda r: (r["cost"], r["index"])):
        mark = "*" if row["index"] == winner else ""
        lines.append(
            f"{mark:>2} {row['index']:>4} {row['cost']:>12.2f} "
            f"{row['yearly_downtime_minutes']:>16.4f} "
            f"{row['availability']:>14.9f}  {_changes_text(row)}"
        )
    lines.append("")
    lines.append("* = winner (lowest downtime, ties broken by cost)")
    return "\n".join(lines)


def front_to_dot(payload: Mapping[str, object]) -> str:
    """All evaluated candidates as a dot scatter in objective space.

    Positions are ``pos="cost,downtime!"`` pinned coordinates (render
    with ``-Kneato``), normalized to a 10x10 canvas; front members are
    filled, dominated candidates grey, infeasible ones hollow.
    """
    rows = _front_rows(payload)
    front_indexes = {row["index"] for row in rows}
    winner = payload.get("winner")
    candidates = [
        row for row in payload.get("candidates", [])
        if row.get("valid")
    ]
    costs = [float(row["cost"]) for row in candidates]
    downtimes = [
        float(row["yearly_downtime_minutes"]) for row in candidates
    ]

    def scaled(value: float, values: List[float]) -> float:
        lo, hi = min(values), max(values)
        return 5.0 if hi == lo else 10.0 * (value - lo) / (hi - lo)

    lines = [
        "graph pareto_front {",
        "    // x = cost, y = yearly downtime; render with -Kneato",
        '    node [shape=circle, width=0.25, fixedsize=true, '
        'fontsize=8];',
    ]
    for row, cost, downtime in zip(candidates, costs, downtimes):
        index = row["index"]
        x = scaled(cost, costs)
        # Downtime grows downward so "better" is visually up.
        y = 10.0 - scaled(downtime, downtimes)
        if index == winner:
            style = 'style=filled, fillcolor="#d62728"'
        elif index in front_indexes:
            style = 'style=filled, fillcolor="#1f77b4"'
        elif row.get("feasible"):
            style = 'style=filled, fillcolor="#cccccc"'
        else:
            style = "style=dashed"
        lines.append(
            f'    c{index} [label="{index}", pos="{x:.3f},{y:.3f}!", '
            f"{style}, tooltip=\"cost={cost:.2f}, "
            f'downtime={downtime:.4f}min/yr"];'
        )
    ordered = sorted(rows, key=lambda r: (r["cost"], r["index"]))
    for left, right in zip(ordered, ordered[1:]):
        lines.append(
            f"    c{left['index']} -- c{right['index']} "
            '[color="#1f77b4"];'
        )
    lines.append("}")
    return "\n".join(lines)
