"""Graphviz-dot export of generated Markov chains.

The paper's figures 3 and 4 are state diagrams; this module emits the
same diagrams in dot form so they can be rendered with any Graphviz
install (no Graphviz dependency is needed to *generate* the text).
"""

from __future__ import annotations

from typing import List

from ..markov.chain import MarkovChain


def _quote(name: str) -> str:
    escaped = name.replace('"', r"\"")
    return f'"{escaped}"'


def model_to_dot(model) -> str:
    """The diagram/block tree as a Graphviz digraph (Figures 1-2 style).

    Diagrams render as boxed clusters is overkill for dot's plain
    digraph form; instead blocks are nodes, subdiagram membership is an
    edge, and the label carries the N/K redundancy and model type.
    """
    from ..core.block import DiagramBlockModel
    from ..core.generator import classify_model_type

    if not isinstance(model, DiagramBlockModel):
        raise TypeError(
            f"model_to_dot expects a DiagramBlockModel, got "
            f"{type(model).__name__}"
        )
    root = model.root.name
    lines: List[str] = [
        f"digraph {_quote(model.name)} {{",
        "    rankdir=TB;",
        "    node [shape=box, fontsize=10];",
        f"    {_quote(root)} [shape=folder];",
    ]
    for _level, path, block in model.walk():
        parameters = block.parameters
        if block.has_subdiagram and not parameters.is_redundant:
            kind = "RBD"
        else:
            kind = f"Type {classify_model_type(parameters)}"
        label = (
            f"{block.name}\\nN={parameters.quantity}, "
            f"K={parameters.min_required} ({kind})"
        )
        style = ", style=filled, fillcolor=\"#e8e8e8\"" if (
            block.has_subdiagram
        ) else ""
        lines.append(f"    {_quote(path)} [label=\"{label}\"{style}];")
        parent = path.rsplit("/", 1)[0]
        parent_node = parent if "/" in parent else root
        lines.append(f"    {_quote(parent_node)} -> {_quote(path)};")
    lines.append("}")
    return "\n".join(lines)


def chain_to_dot(chain: MarkovChain, include_labels: bool = True) -> str:
    """The chain as a Graphviz digraph.

    Up states render as solid ellipses, down states as shaded boxes —
    matching the visual convention of reward-1 vs reward-0 states in
    the paper's figures.
    """
    lines: List[str] = [
        f"digraph {_quote(chain.name)} {{",
        "    rankdir=LR;",
        "    node [fontsize=10];",
    ]
    for state in chain:
        if state.is_up:
            style = "shape=ellipse"
        else:
            style = 'shape=box, style=filled, fillcolor="#dddddd"'
        lines.append(
            f"    {_quote(state.name)} [{style}, "
            f'xlabel="r={state.reward:g}"];'
        )
    for transition in chain.transitions():
        label = f"{transition.rate:.3e}"
        if include_labels and transition.label:
            label = f"{transition.label}\\n{label}"
        lines.append(
            f"    {_quote(transition.source)} -> "
            f"{_quote(transition.target)} "
            f'[label="{label}", fontsize=8];'
        )
    lines.append("}")
    return "\n".join(lines)
