"""Plain-text rendering of models and chains."""

from __future__ import annotations

from typing import List, Optional

from ..core.block import DiagramBlockModel
from ..core.generator import classify_model_type
from ..markov.chain import MarkovChain


def render_model_tree(model: DiagramBlockModel) -> str:
    """The diagram/block tree as indented text (Figures 1-2 in ASCII).

    Each line shows the block name, its N/K redundancy, and the Markov
    model type MG will generate (or "RBD" for pass-through blocks with
    subdiagrams).
    """
    lines: List[str] = [f"{model.name}  [level 1 diagram]"]
    for level, path, block in model.walk():
        indent = "    " * level
        parameters = block.parameters
        if block.has_subdiagram and not parameters.is_redundant:
            kind = "RBD"
        else:
            kind = f"Type {classify_model_type(parameters)}"
        redundancy = (
            f"N={parameters.quantity}, K={parameters.min_required}"
        )
        suffix = (
            f"  -> level {level + 1} diagram"
            if block.has_subdiagram
            else ""
        )
        lines.append(
            f"{indent}{block.name}  ({redundancy}; {kind}){suffix}"
        )
    return "\n".join(lines)


def render_chain_table(
    chain: MarkovChain, probabilities: Optional[dict] = None
) -> str:
    """States and transitions of a chain as aligned text tables."""
    lines: List[str] = [f"Markov chain: {chain.name}"]
    lines.append("")
    header = f"{'state':<20} {'reward':>6}"
    if probabilities is not None:
        header += f" {'steady-state':>14}"
    lines.append(header)
    lines.append("-" * len(header))
    for state in chain:
        row = f"{state.name:<20} {state.reward:>6.1f}"
        if probabilities is not None:
            row += f" {probabilities.get(state.name, 0.0):>14.6e}"
        lines.append(row)
    lines.append("")
    lines.append(f"{'from':<20} {'to':<20} {'rate/hour':>12}  label")
    lines.append("-" * 68)
    for transition in chain.transitions():
        lines.append(
            f"{transition.source:<20} {transition.target:<20} "
            f"{transition.rate:>12.4e}  {transition.label}"
        )
    return "\n".join(lines)
