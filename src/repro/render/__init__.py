"""Rendering and documentation generation.

Substitutes RAScad's GUI output and "documentation generation" feature:
ASCII diagram trees, tabular chain dumps, Graphviz-dot export of
generated Markov chains, and full markdown model reports.
"""

from .ascii import render_model_tree, render_chain_table
from .dot import chain_to_dot, model_to_dot
from .front import front_to_dot, render_front_table
from .report import model_report

__all__ = [
    "render_model_tree",
    "render_chain_table",
    "chain_to_dot",
    "front_to_dot",
    "model_to_dot",
    "model_report",
    "render_front_table",
]
