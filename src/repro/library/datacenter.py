"""The paper's worked example: the Data Center System of Figures 1-2.

Level 1 has four blocks — Server Box, "Boot Drives, RAID1",
"Storage 1, RAID5" and "Storage 2, RAID5" — each with a subdiagram.
The Server Box subdiagram has 19 blocks (System Board, CPU Module,
etc.), matching the paper's description; the other three wrap disk
shelves in redundant (RAID) configurations.

Parameter values come from the builtin component catalog; scenario and
service settings are representative of the architectures Section 2
describes (hot-plug PSUs and fans are fully transparent, CPU deconfig
recovers by reboot and repairs on-line via dynamic reconfiguration,
and so on).
"""

from __future__ import annotations

from typing import Optional

from ..core.block import DiagramBlockModel, MGBlock, MGDiagram
from ..core.parameters import BlockParameters, GlobalParameters
from ..database.builtin import builtin_database
from ..database.parts import PartsDatabase


def _block(
    database: PartsDatabase, part_number: str, **fields: object
) -> MGBlock:
    """A leaf block with catalog hardware defaults plus overrides."""
    record = database.lookup(part_number)
    merged = dict(record.as_block_fields())
    merged["part_number"] = part_number
    merged.update(fields)
    return MGBlock(BlockParameters(**merged))  # type: ignore[arg-type]


def server_box_diagram(
    database: Optional[PartsDatabase] = None,
) -> MGDiagram:
    """The 19-block Server Box subdiagram (paper Figure 2, level 2)."""
    db = database or builtin_database()
    return MGDiagram(
        "Server Box",
        [
            _block(db, "SYSBD-01", name="System Board",
                   quantity=4, min_required=4),
            _block(db, "CPU-400", name="CPU Module",
                   quantity=16, min_required=14,
                   recovery="nontransparent", ar_time_minutes=12.0,
                   repair="transparent", p_latent_fault=0.02,
                   mttdlf_hours=48.0, p_spf=0.005),
            _block(db, "MEM-1G", name="Memory Bank",
                   quantity=16, min_required=15,
                   recovery="nontransparent", ar_time_minutes=12.0,
                   repair="transparent", p_latent_fault=0.05,
                   mttdlf_hours=24.0, p_spf=0.005),
            _block(db, "PSU-650", name="Power Supply",
                   quantity=3, min_required=2,
                   recovery="transparent", repair="transparent"),
            _block(db, "FAN-92", name="Fan Tray",
                   quantity=6, min_required=5,
                   recovery="transparent", repair="transparent"),
            _block(db, "IOB-PCI", name="I/O Board",
                   quantity=4, min_required=3,
                   recovery="nontransparent", ar_time_minutes=12.0,
                   repair="transparent", p_spf=0.01),
            _block(db, "NIC-GE", name="Network Adapter",
                   quantity=2, min_required=1,
                   recovery="transparent", repair="transparent"),
            _block(db, "HBA-FC", name="FC Host Adapter",
                   quantity=2, min_required=1,
                   recovery="transparent", repair="transparent"),
            _block(db, "CLKBD-01", name="Clock Board",
                   quantity=2, min_required=1,
                   recovery="nontransparent", ar_time_minutes=10.0,
                   repair="nontransparent", reintegration_minutes=10.0,
                   p_spf=0.01),
            _block(db, "SCBD-01", name="System Controller",
                   quantity=2, min_required=1,
                   recovery="transparent", repair="nontransparent",
                   reintegration_minutes=10.0),
            _block(db, "SWBD-16", name="Switch Board",
                   quantity=2, min_required=1,
                   recovery="nontransparent", ar_time_minutes=10.0,
                   repair="nontransparent", reintegration_minutes=15.0,
                   p_spf=0.02),
            _block(db, "PSU-650", name="DC Power Distribution",
                   quantity=8, min_required=7,
                   recovery="transparent", repair="transparent"),
            MGBlock(BlockParameters(
                name="Operating System",
                quantity=1, min_required=1,
                mtbf_hours=50_000.0, transient_fit=10_000.0,
                diagnosis_minutes=60.0, corrective_minutes=60.0,
                verification_minutes=30.0,
                description="Solaris-class OS: panics modeled as "
                            "transients, bugs needing a patch as "
                            "permanents",
            )),
            MGBlock(BlockParameters(
                name="Environmental Monitor",
                quantity=1, min_required=1,
                mtbf_hours=1_500_000.0, transient_fit=50.0,
                diagnosis_minutes=15.0, corrective_minutes=15.0,
                verification_minutes=10.0,
            )),
            _block(db, "TAPE-DLT", name="Media Tray",
                   quantity=1, min_required=1),
            _block(db, "BKPL-FCAL", name="Disk Backplane",
                   quantity=1, min_required=1),
            _block(db, "SCBD-01", name="Service Processor",
                   quantity=1, min_required=1),
            _block(db, "HDD-36G", name="Internal Disk",
                   quantity=2, min_required=1,
                   recovery="transparent", repair="transparent",
                   p_latent_fault=0.01, mttdlf_hours=168.0),
            _block(db, "RAIDC-01", name="RAID Controller",
                   quantity=2, min_required=1,
                   recovery="transparent", repair="transparent"),
        ],
    )


def _storage_array(
    database: PartsDatabase, name: str, disks: int, required: int
) -> MGBlock:
    """A RAID disk shelf: a redundant block over a disk subdiagram."""
    shelf = MGDiagram(
        f"{name} Shelf",
        [_block(database, "HDD-36G", name="Disk Drive")],
    )
    return MGBlock(
        BlockParameters(
            name=name,
            quantity=disks,
            min_required=required,
            recovery="transparent",            # hot spare rebuild
            repair="transparent",              # hot-plug drive bays
            p_latent_fault=0.01,
            mttdlf_hours=168.0,                # weekly surface scan
            p_spf=0.002,                       # double-fault during rebuild
            spf_recovery_minutes=240.0,        # restore from tape
            service_response_hours=4.0,
        ),
        subdiagram=shelf,
    )


def datacenter_model(
    database: Optional[PartsDatabase] = None,
    global_parameters: Optional[GlobalParameters] = None,
) -> DiagramBlockModel:
    """The complete Data Center System model (paper Figures 1-2)."""
    db = database or builtin_database()
    root = MGDiagram(
        "Data Center System",
        [
            MGBlock(
                BlockParameters(name="Server Box"),
                subdiagram=server_box_diagram(db),
            ),
            MGBlock(
                BlockParameters(
                    name="Boot Drives, RAID1",
                    quantity=2,
                    min_required=1,
                    recovery="transparent",
                    repair="transparent",
                    p_latent_fault=0.01,
                    mttdlf_hours=168.0,
                ),
                subdiagram=MGDiagram(
                    "Boot Shelf",
                    [_block(db, "HDD-36G", name="Boot Disk")],
                ),
            ),
            _storage_array(db, "Storage 1, RAID5", disks=6, required=5),
            _storage_array(db, "Storage 2, RAID5", disks=6, required=5),
        ],
    )
    return DiagramBlockModel(
        root,
        global_parameters
        or GlobalParameters(
            reboot_minutes=10.0,
            mttm_hours=48.0,
            mttrfid_hours=8.0,
            mission_time_hours=8760.0,
        ),
        name="Data Center System",
    )
