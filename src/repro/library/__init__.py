"""Model library: ready-made diagram/block models.

RAScad ships "a library of models for existing Sun products"; this
package provides the reproduction's equivalents, with parameters drawn
from the builtin component database:

* :func:`datacenter_model` — the paper's Figures 1-2 Data Center System
  (Server Box with a 19-block subdiagram, mirrored boot drives, two
  RAID5 storage arrays).
* :func:`e10000_model` — an Enterprise-10000-class single server, the
  ground truth for the field-data validation experiment (E6).
* :func:`workgroup_model` — a small, mostly non-redundant workgroup
  server dominated by Type 0 chains.
* :func:`cluster_chain` / :func:`cluster_availability` — the paper's
  "work in progress" primary/standby cluster extension.
"""

from .datacenter import datacenter_model, server_box_diagram
from .e10000 import e10000_model
from .workgroup import workgroup_model
from .cluster import (
    ClusterParameters,
    cluster_chain,
    cluster_availability,
    secondary_cluster_chain,
    secondary_cluster_measures,
)

__all__ = [
    "datacenter_model",
    "server_box_diagram",
    "e10000_model",
    "workgroup_model",
    "ClusterParameters",
    "cluster_chain",
    "cluster_availability",
    "secondary_cluster_chain",
    "secondary_cluster_measures",
]
