"""Primary/standby cluster model — the paper's "work in progress".

Section 2: "Model generation for the primary standby and primary
secondary (e.g., cluster) architecture is the work in progress."  This
module implements that extension: an asymmetric two-node cluster whose
nodes are *not* interchangeable load-sharing units (so the symmetric
N/K generator does not apply), generated directly as a Markov chain.

States:

* ``Ok`` (up) — primary serving, standby healthy.
* ``Failover`` (down) — primary faulted, service moving to the standby.
* ``StandbyOnly`` (up) — serving on the standby, old primary in repair.
* ``PrimaryOnly`` (up) — standby faulted, primary still serving.
* ``ManualRecovery`` (down) — failover failed; operator intervention.
* ``AllDown`` (down) — both nodes faulted; emergency repair.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ParameterError
from ..markov.chain import MarkovChain
from ..markov.rewards import steady_state_availability
from ..units import minutes


@dataclass(frozen=True)
class ClusterParameters:
    """Engineering parameters for a primary/standby pair.

    Attributes:
        node_mtbf_hours: Per-node failure MTBF (any failure needing a
            node-level repair; transient node panics fold in here when
            they force a failover).
        failover_minutes: Automatic failover duration (downtime).
        p_failover_success: Probability the automatic failover works.
        manual_recovery_hours: Mean operator recovery time when the
            failover fails (split-brain cleanup, manual restart).
        node_repair_hours: Mean logistic + hands-on repair of a faulted
            node while the cluster still serves on the other node.
        emergency_repair_hours: Mean repair when both nodes are down
            (immediate service call).
    """

    node_mtbf_hours: float = 10_000.0
    failover_minutes: float = 3.0
    p_failover_success: float = 0.95
    manual_recovery_hours: float = 2.0
    node_repair_hours: float = 12.0
    emergency_repair_hours: float = 8.0

    def __post_init__(self) -> None:
        if self.node_mtbf_hours <= 0:
            raise ParameterError(
                f"node MTBF must be positive, got {self.node_mtbf_hours}"
            )
        if self.failover_minutes <= 0:
            raise ParameterError(
                f"failover time must be positive, got {self.failover_minutes}"
            )
        if not 0.0 <= self.p_failover_success <= 1.0:
            raise ParameterError(
                "failover success probability must lie in [0, 1], "
                f"got {self.p_failover_success}"
            )
        for label, value in (
            ("manual recovery time", self.manual_recovery_hours),
            ("node repair time", self.node_repair_hours),
            ("emergency repair time", self.emergency_repair_hours),
        ):
            if value <= 0:
                raise ParameterError(f"{label} must be positive, got {value}")

    def with_changes(self, **changes: object) -> "ClusterParameters":
        return replace(self, **changes)


def cluster_chain(parameters: ClusterParameters) -> MarkovChain:
    """Generate the primary/standby availability chain."""
    lam = 1.0 / parameters.node_mtbf_hours
    fo = 1.0 / minutes(parameters.failover_minutes)
    p_ok = parameters.p_failover_success
    manual = 1.0 / parameters.manual_recovery_hours
    repair = 1.0 / parameters.node_repair_hours
    emergency = 1.0 / parameters.emergency_repair_hours

    chain = MarkovChain("cluster#primary-standby")
    chain.add_state("Ok", reward=1.0, meta={"kind": "base"})
    chain.add_state("Failover", reward=0.0, meta={"kind": "failover"})
    chain.add_state("StandbyOnly", reward=1.0, meta={"kind": "degraded"})
    chain.add_state("PrimaryOnly", reward=1.0, meta={"kind": "degraded"})
    chain.add_state("ManualRecovery", reward=0.0, meta={"kind": "manual"})
    chain.add_state("AllDown", reward=0.0, meta={"kind": "down"})

    chain.add_transition("Ok", "Failover", lam, label="primary fault")
    chain.add_transition("Ok", "PrimaryOnly", lam, label="standby fault")
    chain.add_transition(
        "Failover", "StandbyOnly", fo * p_ok, label="failover succeeds"
    )
    if p_ok < 1.0:
        chain.add_transition(
            "Failover", "ManualRecovery", fo * (1.0 - p_ok),
            label="failover fails",
        )
        chain.add_transition(
            "ManualRecovery", "StandbyOnly", manual, label="manual restart"
        )
    chain.add_transition(
        "StandbyOnly", "Ok", repair, label="old primary repaired"
    )
    chain.add_transition(
        "PrimaryOnly", "Ok", repair, label="standby repaired"
    )
    chain.add_transition(
        "StandbyOnly", "AllDown", lam, label="surviving node faults"
    )
    chain.add_transition(
        "PrimaryOnly", "AllDown", lam, label="surviving node faults"
    )
    chain.add_transition(
        "AllDown", "PrimaryOnly", emergency, label="one node restored"
    )
    chain.validate()
    return chain


def cluster_availability(parameters: ClusterParameters) -> float:
    """Steady-state availability of the primary/standby pair."""
    return steady_state_availability(cluster_chain(parameters))


def secondary_cluster_chain(
    parameters: ClusterParameters,
    degraded_capacity: float = 0.5,
) -> MarkovChain:
    """Primary/secondary (active-active) cluster chain.

    Both nodes serve load ("primary secondary (e.g., cluster)" in the
    paper's Section 2).  Either node's failure triggers a failover of
    its share, so the failover hazard is ``2 * lam`` from the
    all-up state; single-node operation is an *up* state that delivers
    only ``degraded_capacity`` of the service (a performability
    reward), making the chain a capacity model as well as an
    availability model.
    """
    if not 0.0 < degraded_capacity <= 1.0:
        raise ParameterError(
            f"degraded capacity must lie in (0, 1], got {degraded_capacity}"
        )
    lam = 1.0 / parameters.node_mtbf_hours
    fo = 1.0 / minutes(parameters.failover_minutes)
    p_ok = parameters.p_failover_success
    manual = 1.0 / parameters.manual_recovery_hours
    repair = 1.0 / parameters.node_repair_hours
    emergency = 1.0 / parameters.emergency_repair_hours

    chain = MarkovChain("cluster#primary-secondary")
    chain.add_state("BothUp", reward=1.0, meta={"kind": "base"})
    chain.add_state("Failover", reward=0.0, meta={"kind": "failover"})
    chain.add_state(
        "OneUp", reward=degraded_capacity, meta={"kind": "degraded"}
    )
    chain.add_state("ManualRecovery", reward=0.0, meta={"kind": "manual"})
    chain.add_state("AllDown", reward=0.0, meta={"kind": "down"})

    chain.add_transition(
        "BothUp", "Failover", 2.0 * lam, label="either node faults"
    )
    chain.add_transition(
        "Failover", "OneUp", fo * p_ok, label="load consolidates"
    )
    if p_ok < 1.0:
        chain.add_transition(
            "Failover", "ManualRecovery", fo * (1.0 - p_ok),
            label="failover fails",
        )
        chain.add_transition(
            "ManualRecovery", "OneUp", manual, label="manual restart"
        )
    chain.add_transition("OneUp", "BothUp", repair, label="node repaired")
    chain.add_transition(
        "OneUp", "AllDown", lam, label="surviving node faults"
    )
    chain.add_transition(
        "AllDown", "OneUp", emergency, label="one node restored"
    )
    chain.validate()
    return chain


def secondary_cluster_measures(
    parameters: ClusterParameters,
    degraded_capacity: float = 0.5,
) -> dict:
    """Availability and expected capacity of the active-active pair."""
    chain = secondary_cluster_chain(parameters, degraded_capacity)
    from ..markov.steady_state import steady_state

    pi = steady_state(chain)
    availability = sum(
        pi[state.name] for state in chain if state.is_up
    )
    capacity = sum(pi[state.name] * state.reward for state in chain)
    return {
        "availability": availability,
        "expected_capacity": capacity,
        "time_on_one_node": pi["OneUp"],
    }
