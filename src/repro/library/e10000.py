"""An Enterprise-10000-class high-end server model.

Section 5 of the paper validates RAScad against field data from two
large operational E10000 servers; this model is the reproduction's
ground truth for that experiment (E6).  The E10000 was a 64-processor
domain-capable server with 16 system boards, redundant power/cooling,
and dynamic reconfiguration — the parameters below model one large
domain of such a machine.
"""

from __future__ import annotations

from typing import Optional

from ..core.block import DiagramBlockModel, MGBlock, MGDiagram
from ..core.parameters import BlockParameters, GlobalParameters
from ..database.builtin import builtin_database
from ..database.parts import PartsDatabase
from .datacenter import _block


def e10000_model(
    database: Optional[PartsDatabase] = None,
    global_parameters: Optional[GlobalParameters] = None,
) -> DiagramBlockModel:
    """A 64-CPU, 16-board E10000-class server as a diagram/block model."""
    db = database or builtin_database()
    root = MGDiagram(
        "E10000 Server",
        [
            _block(db, "SYSBD-01", name="System Board",
                   service_response_hours=2.0,
                   quantity=16, min_required=15,
                   recovery="nontransparent", ar_time_minutes=15.0,
                   repair="transparent",          # dynamic reconfiguration
                   p_latent_fault=0.02, mttdlf_hours=72.0,
                   p_spf=0.01),
            _block(db, "CPU-400", name="CPU Module",
                   service_response_hours=2.0,
                   quantity=64, min_required=60,
                   recovery="nontransparent", ar_time_minutes=12.0,
                   repair="transparent",
                   p_latent_fault=0.02, mttdlf_hours=48.0,
                   p_spf=0.003),
            _block(db, "MEM-1G", name="Memory Bank",
                   service_response_hours=2.0,
                   quantity=64, min_required=62,
                   recovery="nontransparent", ar_time_minutes=12.0,
                   repair="transparent",
                   p_latent_fault=0.05, mttdlf_hours=24.0,
                   p_spf=0.003),
            _block(db, "PSU-650", name="Bulk Power Supply",
                   service_response_hours=2.0,
                   quantity=8, min_required=6,
                   recovery="transparent", repair="transparent"),
            _block(db, "FAN-92", name="Fan Tray",
                   service_response_hours=2.0,
                   quantity=16, min_required=14,
                   recovery="transparent", repair="transparent"),
            _block(db, "IOB-PCI", name="I/O Board",
                   service_response_hours=2.0,
                   quantity=8, min_required=7,
                   recovery="nontransparent", ar_time_minutes=12.0,
                   repair="transparent", p_spf=0.01),
            _block(db, "SWBD-16", name="Centerplane Support Board",
                   service_response_hours=2.0,
                   quantity=2, min_required=1,
                   recovery="nontransparent", ar_time_minutes=10.0,
                   repair="nontransparent", reintegration_minutes=20.0,
                   p_spf=0.02),
            _block(db, "CLKBD-01", name="Clock Board",
                   service_response_hours=2.0,
                   quantity=2, min_required=1,
                   recovery="nontransparent", ar_time_minutes=10.0,
                   repair="nontransparent", reintegration_minutes=10.0,
                   p_spf=0.01),
            _block(db, "SCBD-01", name="System Service Processor",
                   service_response_hours=2.0,
                   quantity=2, min_required=1,
                   recovery="transparent", repair="nontransparent",
                   reintegration_minutes=10.0),
            _block(db, "HDD-36G", name="Boot Disk",
                   service_response_hours=2.0,
                   quantity=2, min_required=1,
                   recovery="transparent", repair="transparent",
                   p_latent_fault=0.01, mttdlf_hours=168.0),
            MGBlock(BlockParameters(
                name="Operating System",
                quantity=1, min_required=1,
                mtbf_hours=40_000.0, transient_fit=12_000.0,
                diagnosis_minutes=60.0, corrective_minutes=60.0,
                verification_minutes=30.0,
                description="domain OS instance",
            )),
        ],
    )
    return DiagramBlockModel(
        root,
        global_parameters
        or GlobalParameters(
            reboot_minutes=25.0,      # big-iron POST + boot
            mttm_hours=24.0,          # production site: fast maintenance
            mttrfid_hours=8.0,
            mission_time_hours=10_950.0,  # 15 months, the paper's window
        ),
        name="E10000 Server",
    )
