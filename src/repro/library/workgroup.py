"""A small workgroup server: the low-redundancy end of the spectrum.

Mostly non-redundant (Type 0 chains), with a mirrored disk pair as the
only redundancy.  Useful as a contrast case in the transparency
ablation and the parametric sweeps: with almost no redundancy the
recovery/repair scenarios barely matter and logistics dominate.
"""

from __future__ import annotations

from typing import Optional

from ..core.block import DiagramBlockModel, MGBlock, MGDiagram
from ..core.parameters import BlockParameters, GlobalParameters
from ..database.builtin import builtin_database
from ..database.parts import PartsDatabase
from .datacenter import _block


def workgroup_model(
    database: Optional[PartsDatabase] = None,
    global_parameters: Optional[GlobalParameters] = None,
) -> DiagramBlockModel:
    """A 2-CPU tower server with mirrored disks."""
    db = database or builtin_database()
    root = MGDiagram(
        "Workgroup Server",
        [
            _block(db, "SYSBD-01", name="Motherboard",
                   quantity=1, min_required=1,
                   service_response_hours=24.0),
            _block(db, "CPU-400", name="CPU Module",
                   quantity=2, min_required=2,
                   service_response_hours=24.0),
            _block(db, "MEM-1G", name="Memory Bank",
                   quantity=4, min_required=4,
                   service_response_hours=24.0),
            _block(db, "PSU-650", name="Power Supply",
                   quantity=1, min_required=1,
                   service_response_hours=24.0),
            _block(db, "FAN-92", name="Fan",
                   quantity=2, min_required=2,
                   service_response_hours=24.0),
            _block(db, "NIC-GE", name="Network Adapter",
                   quantity=1, min_required=1,
                   service_response_hours=24.0),
            _block(db, "HDD-36G", name="Mirrored Disk",
                   quantity=2, min_required=1,
                   recovery="transparent", repair="nontransparent",
                   reintegration_minutes=15.0,
                   service_response_hours=24.0,
                   p_latent_fault=0.01, mttdlf_hours=336.0),
            MGBlock(BlockParameters(
                name="Operating System",
                quantity=1, min_required=1,
                mtbf_hours=30_000.0, transient_fit=15_000.0,
                diagnosis_minutes=45.0, corrective_minutes=45.0,
                verification_minutes=30.0,
            )),
        ],
    )
    return DiagramBlockModel(
        root,
        global_parameters
        or GlobalParameters(
            reboot_minutes=5.0,
            mttm_hours=72.0,          # next-business-day style service
            mttrfid_hours=12.0,
            mission_time_hours=8760.0,
        ),
        name="Workgroup Server",
    )
