"""Fixed-bucket, mergeable latency histograms (Prometheus-compatible).

A :class:`Histogram` counts observations into a fixed ladder of
``le``-style buckets (each bucket holds values ``<= bound``; one
overflow bucket catches the rest).  Because the bucket bounds are fixed
at construction, two histograms over the same ladder merge by adding
counts — the property that lets per-worker or per-process histograms
roll up into one service-wide view without keeping raw samples.

The serialized form mirrors the Prometheus exposition model exactly:
cumulative bucket counts keyed by the ``le`` label value, plus ``sum``
and ``count`` — so ``GET /metrics`` can render native
``_bucket``/``_sum``/``_count`` series straight from
:meth:`Histogram.to_dict` with no reshaping.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["DEFAULT_LATENCY_BUCKETS", "Histogram", "format_bound"]

#: Default bucket upper bounds, in seconds: sub-millisecond cache hits
#: through 30-second deep solves.  Roughly the Prometheus client
#: defaults, extended at both ends for this workload.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: The ``le`` label value of the overflow bucket.
INF_LABEL = "+Inf"


def format_bound(bound: float) -> str:
    """The ``le`` label value for one bucket bound (``repr``-exact)."""
    if math.isinf(bound):
        return INF_LABEL
    text = repr(float(bound))
    if text.endswith(".0"):
        text = text[:-2]
    return text


class Histogram:
    """A mergeable fixed-bucket histogram of non-negative samples."""

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        cleaned = tuple(float(bound) for bound in bounds)
        if not cleaned:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(cleaned, cleaned[1:])):
            raise ValueError(
                f"bucket bounds must be strictly increasing: {cleaned}"
            )
        if any(math.isinf(bound) or math.isnan(bound) for bound in cleaned):
            raise ValueError(
                "bounds must be finite; the +Inf bucket is implicit"
            )
        self.bounds = cleaned
        #: Per-bucket (non-cumulative) counts; the last slot is +Inf.
        self.counts: List[int] = [0] * (len(cleaned) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Count one sample (``le`` semantics: bucket holds <= bound)."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram over the same ladder into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket ladders: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum

    @property
    def count(self) -> int:
        return self.total

    @property
    def mean(self) -> float:
        if self.total == 0:
            return 0.0
        return self.sum / self.total

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le label, cumulative count)`` pairs, ending at ``+Inf``."""
        pairs: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            pairs.append((format_bound(bound), running))
        pairs.append((INF_LABEL, running + self.counts[-1]))
        return pairs

    def quantile(self, q: float) -> float:
        """An estimated quantile (0..1), interpolated within its bucket.

        The estimate is bounded by the bucket ladder: values past the
        last finite bound report that bound (the histogram cannot know
        how far into the overflow bucket the tail reaches).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        running = 0
        previous_bound = 0.0
        for bound, count in zip(self.bounds, self.counts):
            if count:
                if running + count >= rank:
                    fraction = (rank - running) / count
                    return previous_bound + fraction * (
                        bound - previous_bound
                    )
                running += count
            previous_bound = bound
        return self.bounds[-1]

    def to_dict(self) -> Dict[str, object]:
        """The JSON/Prometheus shape: cumulative buckets + sum + count."""
        return {
            "count": self.total,
            "sum": self.sum,
            "buckets": dict(self.cumulative()),
        }

    @classmethod
    def from_dict(
        cls,
        payload: Dict[str, object],
        bounds: Optional[Sequence[float]] = None,
    ) -> "Histogram":
        """Rebuild a histogram from its :meth:`to_dict` payload.

        ``bounds`` defaults to the labels recorded in the payload, so a
        snapshot taken with a custom ladder round-trips losslessly.
        """
        buckets = payload.get("buckets")
        if not isinstance(buckets, dict):
            raise ValueError("payload has no 'buckets' mapping")
        if bounds is None:
            bounds = [
                float(label) for label in buckets if label != INF_LABEL
            ]
        histogram = cls(bounds)
        running = 0
        for index, bound in enumerate(histogram.bounds):
            cumulative = int(buckets.get(format_bound(bound), running))
            histogram.counts[index] = cumulative - running
            running = cumulative
        total = int(buckets.get(INF_LABEL, payload.get("count", running)))
        histogram.counts[-1] = total - running
        histogram.total = total
        histogram.sum = float(payload.get("sum", 0.0))
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Histogram(count={self.total}, sum={self.sum:.6f}, "
            f"buckets={len(self.bounds) + 1})"
        )
