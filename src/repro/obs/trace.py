"""Tracing: spans with monotonic clocks, parent links, and propagation.

One :class:`Tracer` (usually the process-global one behind
:func:`get_tracer`) hands out :class:`Span` context managers.  Entering
a span makes it the *current* span via a :mod:`contextvars` variable,
so nested ``with tracer.span(...)`` blocks — across ``await`` points
and into ``asyncio.to_thread`` workers, both of which propagate
context — form a parent-linked tree without any explicit plumbing.

Tracing is **off by default and cheap when off**: a disabled tracer's
``span()`` returns a shared no-op singleton, so instrumented hot paths
pay one attribute check and one method call, nothing else.

Crossing the process-pool boundary is explicit, because contextvars do
not survive pickling:

* the parent captures :func:`current_carrier` — a small serializable
  dict naming the active trace/span and its sampling verdict — and
  ships it with the task;
* the worker wraps the task in :func:`capture_spans`, which activates
  the remote parent and collects every span the task finishes;
* the collected span dicts travel back with the result and the parent
  re-exports them via :func:`export_remote`, parent links intact.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

from .clock import monotonic, wall_time
from .export import SpanExporter, head_sampled

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "configure_tracing",
    "current_span",
    "current_carrier",
    "capture_spans",
    "export_remote",
    "use_span",
    "TRACE_PARENT_HEADER",
    "carrier_to_header",
    "carrier_from_header",
    "remote_parent_span",
]

#: The active span of the current logical context (task / thread).
_CURRENT: "ContextVar[Optional[Span]]" = ContextVar(
    "rascad_current_span", default=None
)


# Ids are sliced from a thread-local pool of urandom bytes: one
# syscall per 4 KiB of ids instead of one per id, which matters on the
# block-solve hot path.  Thread-local so concurrent spans never slice
# the same range; reset after fork so pool workers never mint
# duplicates.
_ID_POOL_BYTES = 4096
_ID_LOCAL = threading.local()


def _reset_id_pool() -> None:
    global _ID_LOCAL
    _ID_LOCAL = threading.local()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reset_id_pool)


def _new_id(nbytes: int) -> str:
    local = _ID_LOCAL
    pos = getattr(local, "pos", _ID_POOL_BYTES)
    end = pos + nbytes
    if end > _ID_POOL_BYTES:
        local.buf = os.urandom(_ID_POOL_BYTES)
        pos, end = 0, nbytes
    local.pos = end
    return local.buf[pos:end].hex()


class Span:
    """One timed operation in a trace.

    Spans are context managers: entering activates them as the current
    span (so children link to them), exiting records the duration from
    the monotonic clock, captures any in-flight exception as an error
    status, and hands the span to the tracer's exporter.  Spans created
    with :meth:`Tracer.start_span` can instead be finished explicitly
    with :meth:`Tracer.finish` — the shape used when start and end live
    in different tasks (queue wait, batch membership).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "start_unix",
        "attrs", "status", "error", "sampled", "pid",
        "duration", "_started_mono", "_tracer", "_token", "_finished",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        sampled: bool,
        tracer: "Tracer",
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled
        # The attrs dict is taken as-is (creators hand over a fresh
        # one); copying here would tax every span on the hot path.
        self.attrs: Dict[str, object] = attrs if attrs is not None else {}
        self.status = "ok"
        self.error: Optional[str] = None
        self.pid = os.getpid()
        self.start_unix = wall_time()
        self.duration = 0.0
        self._started_mono = monotonic()
        self._tracer = tracer
        self._token = None
        self._finished = False

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.record_error(f"{exc_type.__name__}: {exc}")
        if self._tracer is not None:  # None once finished explicitly
            self._tracer.finish(self)
        return False

    # -- recording -----------------------------------------------------
    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def record_error(self, message: str) -> None:
        self.status = "error"
        self.error = message

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration": self.duration,
            "status": self.status,
            "pid": self.pid,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.error is not None:
            payload["error"] = self.error
        return payload


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    sampled = False
    name = ""
    status = "ok"
    attrs: Dict[str, object] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: object) -> None:
        pass

    def record_error(self, message: str) -> None:
        pass

    def to_dict(self) -> Dict[str, object]:  # pragma: no cover - debug
        return {}


NULL_SPAN = _NullSpan()


class Tracer:
    """Hands out spans, owns the sampling policy and the exporter."""

    def __init__(
        self,
        enabled: bool = False,
        exporter: Optional[SpanExporter] = None,
        sample_ratio: float = 1.0,
        detail: bool = False,
    ) -> None:
        self.enabled = enabled
        self.exporter = exporter if exporter is not None else SpanExporter()
        self.sample_ratio = sample_ratio
        self.detail = detail

    # -- creation ------------------------------------------------------
    def span(self, name: str, **attrs: object):
        """A context-manager span under the current span (or a root)."""
        if not self.enabled:
            return NULL_SPAN
        return self.start_span(name, **attrs)

    def span_detail(self, name: str, **attrs: object):
        """A span emitted only at ``detail`` verbosity.

        Hot inner loops — one span per *block* solve rather than per
        request — instrument through this method, so the default traced
        configuration stays cheap and per-block depth is an explicit
        opt-in (``detail=True`` / ``--trace-detail``).
        """
        if not self.enabled or not self.detail:
            return NULL_SPAN
        return self.start_span(name, **attrs)

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attrs: object,
    ):
        """An un-entered span; finish it with :meth:`finish`.

        ``parent`` overrides the context lookup — for spans whose
        lifetime crosses task boundaries (queue wait, batch).
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = _CURRENT.get()
        if parent is None or parent is NULL_SPAN:
            trace_id = _new_id(16)
            parent_id = None
            sampled = head_sampled(trace_id, self.sample_ratio)
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            sampled = parent.sampled
        return Span(
            name,
            trace_id=trace_id,
            span_id=_new_id(8),
            parent_id=parent_id,
            sampled=sampled,
            tracer=self,
            attrs=attrs,
        )

    # -- completion ----------------------------------------------------
    def finish(self, span, error: Optional[BaseException] = None) -> None:
        """Record duration and export; safe on null spans and twice."""
        if span is NULL_SPAN or not isinstance(span, Span):
            return
        if span._finished:
            return
        span._finished = True
        span.duration = monotonic() - span._started_mono
        if error is not None:
            span.record_error(f"{type(error).__name__}: {error}")
        # Hand the Span itself to the exporter — it serializes lazily
        # (ring) or eagerly (JSONL) as its sinks demand.  Dropping the
        # back-reference afterwards keeps finished spans acyclic, so
        # ring contents never anchor a tracer for the cycle collector.
        self.exporter.export(span, sampled=span.sampled)
        span._tracer = None


# ----------------------------------------------------------------------
# the process-global tracer
# ----------------------------------------------------------------------

_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (disabled until configured)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def configure_tracing(
    enabled: bool = True,
    trace_dir=None,
    sample_ratio: float = 1.0,
    capacity: int = 2048,
    slow_threshold: float = 0.25,
    detail: bool = False,
) -> Tracer:
    """Build and install the process-global tracer.

    ``trace_dir`` additionally mirrors every kept span into
    ``<trace_dir>/spans.jsonl``; without it spans live only in the
    in-memory ring buffer (``/debug/traces``, ``exporter.recent()``).
    ``detail`` additionally emits per-block spans
    (:meth:`Tracer.span_detail`) — deep-dive verbosity.
    """
    exporter = SpanExporter(
        capacity=capacity,
        trace_dir=trace_dir,
        slow_threshold=slow_threshold,
    )
    tracer = Tracer(
        enabled=enabled,
        exporter=exporter,
        sample_ratio=sample_ratio,
        detail=detail,
    )
    set_tracer(tracer)
    return tracer


def current_span() -> Optional[Span]:
    """The active span of this context, or ``None``."""
    span = _CURRENT.get()
    if span is None or span is NULL_SPAN:
        return None
    return span


@contextmanager
def use_span(span) -> Iterator[None]:
    """Make an existing span current without finishing it on exit."""
    if span is None or span is NULL_SPAN or not isinstance(span, Span):
        yield
        return
    token = _CURRENT.set(span)
    try:
        yield
    finally:
        _CURRENT.reset(token)


# ----------------------------------------------------------------------
# cross-process propagation
# ----------------------------------------------------------------------

def current_carrier() -> Optional[Dict[str, object]]:
    """A serializable snapshot of the active span, or ``None``.

    ``None`` means tracing is off (or nothing is active) — callers ship
    the carrier with pool tasks and skip the capture machinery when it
    is absent, keeping the disabled path free.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return None
    span = current_span()
    if span is None:
        return None
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "sampled": span.sampled,
        "detail": tracer.detail,
    }


class _CollectingExporter(SpanExporter):
    """Keeps every span in a plain list — the worker-side buffer."""

    def __init__(self, sink: List[Dict[str, object]]) -> None:
        super().__init__(capacity=1)
        self._sink = sink

    def export(self, payload, sampled: bool = True) -> bool:  # noqa: D102
        if not isinstance(payload, dict):
            payload = payload.to_dict()
        self._sink.append(payload)
        return True


@contextmanager
def capture_spans(
    carrier: Dict[str, object],
) -> Iterator[List[Dict[str, object]]]:
    """Worker-side capture: record spans under a remote parent.

    Temporarily replaces the process-global tracer with a recording one
    whose parent context comes from ``carrier``, runs the body, and
    yields the list that fills with finished span dicts.  The caller
    returns that list to the parent process, which feeds it to
    :func:`export_remote`.

    Pool workers execute one task at a time, so swapping the global is
    safe; the previous tracer (usually the disabled default) is always
    restored.
    """
    collected: List[Dict[str, object]] = []
    capture_tracer = Tracer(
        enabled=True,
        exporter=_CollectingExporter(collected),
        detail=bool(carrier.get("detail", False)),
    )
    remote_parent = Span(
        name="<remote-parent>",
        trace_id=str(carrier["trace_id"]),
        span_id=str(carrier["span_id"]),
        parent_id=None,
        sampled=bool(carrier.get("sampled", True)),
        tracer=capture_tracer,
    )
    previous = set_tracer(capture_tracer)
    token = _CURRENT.set(remote_parent)
    try:
        yield collected
    finally:
        _CURRENT.reset(token)
        set_tracer(previous)


#: HTTP header carrying a trace carrier between cluster processes.
TRACE_PARENT_HEADER = "X-Rascad-Trace-Parent"


def carrier_to_header(carrier: Dict[str, object]) -> str:
    """Serialize a :func:`current_carrier` dict for an HTTP header.

    The wire form is ``trace_id:span_id:sampled:detail`` with the two
    flags as ``0``/``1`` — the cross-*host* edition of the carrier the
    process pool already ships by pickle.
    """
    return (
        f"{carrier['trace_id']}:{carrier['span_id']}:"
        f"{1 if carrier.get('sampled', True) else 0}:"
        f"{1 if carrier.get('detail', False) else 0}"
    )


def carrier_from_header(text: str) -> Optional[Dict[str, object]]:
    """Parse a :data:`TRACE_PARENT_HEADER` value; ``None`` if invalid.

    Malformed headers are ignored rather than rejected — a bad trace
    header must never fail the request it rides on.
    """
    parts = text.strip().split(":")
    if len(parts) != 4 or not parts[0] or not parts[1]:
        return None
    return {
        "trace_id": parts[0],
        "span_id": parts[1],
        "sampled": parts[2] == "1",
        "detail": parts[3] == "1",
    }


def remote_parent_span(carrier: Dict[str, object]) -> Optional[Span]:
    """An un-entered stand-in for a span living in another process.

    Pass the result as ``parent=`` to :meth:`Tracer.start_span` so a
    locally created span links into a remote trace (the coordinator's
    ``cluster.shard`` span becomes the parent of a worker's
    ``service.request``).  The stand-in is never entered, finished, or
    exported — it only donates its ids and sampling verdict.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return None
    return Span(
        name="<remote-parent>",
        trace_id=str(carrier["trace_id"]),
        span_id=str(carrier["span_id"]),
        parent_id=None,
        sampled=bool(carrier.get("sampled", True)),
        tracer=tracer,
    )


def export_remote(
    payloads: List[Dict[str, object]], sampled: bool = True
) -> int:
    """Feed worker-collected span dicts into this process's exporter."""
    tracer = get_tracer()
    if not tracer.enabled or not payloads:
        return 0
    kept = 0
    for payload in payloads:
        if tracer.exporter.export(payload, sampled=sampled):
            kept += 1
    return kept
