"""Structured logging: JSON records carrying trace/span ids.

All repro loggers live under the ``"rascad"`` namespace
(:func:`get_logger`).  :func:`configure_logging` installs one stream
handler on that namespace — plain text for humans, or, with
``json_output=True``, one JSON object per line whose fields are stable
enough to grep and to join against the span export: every record
emitted inside an active span carries that span's ``trace_id`` and
``span_id``, so ``rascad trace tail`` and the JSONL log line up.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional

from .trace import current_span

__all__ = [
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "ROOT_LOGGER_NAME",
]

#: The namespace every repro logger hangs off.
ROOT_LOGGER_NAME = "rascad"

#: ``logging.LogRecord`` attributes that are plumbing, not payload.
_STANDARD_ATTRS = frozenset((
    "args", "asctime", "created", "exc_info", "exc_text", "filename",
    "funcName", "levelname", "levelno", "lineno", "message", "module",
    "msecs", "msg", "name", "pathname", "process", "processName",
    "relativeCreated", "stack_info", "taskName", "thread", "threadName",
))


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``extra=`` keys pass through."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
            "pid": record.process,
        }
        span = current_span()
        if span is not None:
            payload["trace_id"] = span.trace_id
            payload["span_id"] = span.span_id
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        for key, value in record.__dict__.items():
            if key in _STANDARD_ATTRS or key.startswith("_"):
                continue
            if key not in payload:
                payload[key] = value
        return json.dumps(payload, sort_keys=True, default=str)


def configure_logging(
    level: str = "info",
    json_output: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install one handler on the ``rascad`` logger namespace.

    Idempotent: reconfiguring replaces the previous handler instead of
    stacking a second one (the CLI calls this once per command, tests
    many times per process).
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    handler = logging.StreamHandler(stream or sys.stderr)
    if json_output:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s %(message)s"
        ))
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger in the ``rascad`` namespace (``rascad.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")
