"""Monotonic timing helpers — the one idiom behind every duration.

Before :mod:`repro.obs` existed, ``time.perf_counter()`` pairs were
hand-rolled independently in ``engine/stats.py``, ``engine/executor.py``
and ``service/app.py``.  Every duration in the codebase now flows
through a :class:`Stopwatch` (or the :func:`stopwatch` context manager),
so "how do we measure elapsed time" has exactly one answer: the
monotonic high-resolution clock, never wall time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["monotonic", "wall_time", "Stopwatch", "stopwatch"]


def monotonic() -> float:
    """The monotonic high-resolution clock durations are measured on."""
    return time.perf_counter()


def wall_time() -> float:
    """Wall-clock epoch seconds — for timestamps, never for durations."""
    return time.time()


class Stopwatch:
    """A started monotonic stopwatch.

    ``elapsed`` can be read any number of times while running;
    :meth:`stop` freezes it.  Restarting is deliberate non-goal — make
    a new one, they are cheap.
    """

    __slots__ = ("started_at", "_stopped_at")

    def __init__(self) -> None:
        self.started_at = monotonic()
        self._stopped_at: float = -1.0

    @property
    def elapsed(self) -> float:
        """Seconds since start (frozen once :meth:`stop` was called)."""
        if self._stopped_at >= 0.0:
            return self._stopped_at - self.started_at
        return monotonic() - self.started_at

    def stop(self) -> float:
        """Freeze and return the elapsed time."""
        if self._stopped_at < 0.0:
            self._stopped_at = monotonic()
        return self.elapsed


@contextmanager
def stopwatch() -> Iterator[Stopwatch]:
    """``with stopwatch() as watch: ...`` — stopped on exit."""
    watch = Stopwatch()
    try:
        yield watch
    finally:
        watch.stop()
