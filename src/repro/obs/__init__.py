"""Observability — tracing, histograms, span export, structured logs.

The one instrumentation layer every other subsystem meters through,
built entirely on the stdlib:

* :mod:`.clock` — the monotonic :class:`Stopwatch` behind every
  duration (replacing three hand-rolled ``time.perf_counter()`` pairs).
* :mod:`.trace` — :class:`Tracer`/:class:`Span` with ``contextvars``
  propagation and an explicit carrier protocol for the process-pool
  boundary; off by default and cheap when off.
* :mod:`.histogram` — fixed-bucket, mergeable, Prometheus-compatible
  latency histograms.
* :mod:`.export` — bounded ring buffer plus atomic-append JSONL with
  head sampling (errors and slow spans are always kept).
* :mod:`.logging` — JSON log records carrying trace/span ids.
"""

from .clock import Stopwatch, monotonic, stopwatch, wall_time
from .export import SPANS_FILENAME, SpanExporter, head_sampled, read_spans
from .histogram import DEFAULT_LATENCY_BUCKETS, Histogram, format_bound
from .logging import JsonFormatter, configure_logging, get_logger
from .trace import (
    TRACE_PARENT_HEADER,
    Span,
    Tracer,
    capture_spans,
    carrier_from_header,
    carrier_to_header,
    configure_tracing,
    current_carrier,
    current_span,
    export_remote,
    get_tracer,
    remote_parent_span,
    set_tracer,
    use_span,
)

__all__ = [
    "Stopwatch",
    "monotonic",
    "stopwatch",
    "wall_time",
    "SPANS_FILENAME",
    "SpanExporter",
    "head_sampled",
    "read_spans",
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "format_bound",
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "Span",
    "TRACE_PARENT_HEADER",
    "Tracer",
    "capture_spans",
    "carrier_from_header",
    "carrier_to_header",
    "configure_tracing",
    "current_carrier",
    "current_span",
    "export_remote",
    "get_tracer",
    "remote_parent_span",
    "set_tracer",
    "use_span",
]
