"""Span export: bounded ring buffer plus atomic-append JSONL.

Finished spans arrive here as plain dicts (see
:meth:`repro.obs.trace.Span.to_dict`).  The exporter keeps the most
recent spans in a bounded in-memory ring (behind ``/debug/traces``) and
optionally appends each kept span as one JSON line to
``<trace_dir>/spans.jsonl``.

Writes go through :class:`repro.store.JsonlAppender` — a single
``os.write`` on an ``O_APPEND`` descriptor — so concurrent writers — a
server process and a ``rascad jobs worker`` sharing one trace
directory — interleave whole lines, never bytes.

Sampling is *head* sampling: the keep/drop decision is a deterministic
hash of the trace id, made once per trace, so either every span of a
trace is kept or none — a sampled-out trace never shows up as orphan
fragments.  Two classes of span override the head decision and are
always kept: spans that ended in an error, and spans slower than the
exporter's slow threshold.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from ..store import JsonlAppender

__all__ = ["SpanExporter", "head_sampled", "SPANS_FILENAME"]

#: File name of the JSONL span log inside a trace directory.
SPANS_FILENAME = "spans.jsonl"

#: Default capacity of the in-memory ring buffer.
DEFAULT_CAPACITY = 2048

#: Spans at least this slow (seconds) are kept even when sampled out.
DEFAULT_SLOW_THRESHOLD = 0.25


def head_sampled(trace_id: str, ratio: float) -> bool:
    """The deterministic head-sampling decision for one trace.

    Hashes the trace id into [0, 1) so every participant — parent
    process, pool workers, a later resumed job — reaches the same
    verdict without coordination.
    """
    if ratio >= 1.0:
        return True
    if ratio <= 0.0:
        return False
    try:
        bucket = int(trace_id[:8], 16) / float(0xFFFFFFFF)
    except ValueError:
        return True
    return bucket < ratio


class SpanExporter:
    """Ring buffer + optional JSONL sink for finished spans."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        trace_dir: Optional[Union[str, Path]] = None,
        slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.slow_threshold = slow_threshold
        self.trace_dir: Optional[Path] = None
        self._ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._appender: Optional[JsonlAppender] = None
        self._dropped = 0
        if trace_dir is not None:
            self.trace_dir = Path(trace_dir).expanduser()
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            self._appender = JsonlAppender(
                self.trace_dir / SPANS_FILENAME
            )

    @property
    def path(self) -> Optional[Path]:
        """The JSONL file spans land in, or ``None`` (memory only)."""
        if self.trace_dir is None:
            return None
        return self.trace_dir / SPANS_FILENAME

    def keep(self, payload, sampled: bool) -> bool:
        """Head decision, overridden for errors and slow spans.

        Accepts either a span payload dict or a finished ``Span``.
        """
        if sampled:
            return True
        if isinstance(payload, dict):
            status = payload.get("status")
            duration = payload.get("duration")
        else:
            status = payload.status
            duration = payload.duration
        if status == "error":
            return True
        return (
            isinstance(duration, (int, float))
            and duration >= self.slow_threshold
        )

    def export(self, payload, sampled: bool = True) -> bool:
        """Store one finished span; returns whether it was kept.

        ``payload`` is either a span dict (remote spans arriving from a
        pool worker) or a finished ``Span`` object.  Span objects are
        kept as-is in the ring and serialized lazily on read: the extra
        dicts a ``to_dict`` would allocate here are what tips the GC
        into extra gen-0 collections mid-solve, and reads are rare.
        """
        if not self.keep(payload, sampled):
            with self._lock:
                self._dropped += 1
            return False
        if self.trace_dir is not None:
            # The JSONL sink needs the dict now anyway; reuse it for
            # the ring so readers never re-serialize.
            if not isinstance(payload, dict):
                payload = payload.to_dict()
            line = (
                json.dumps(payload, sort_keys=True, default=str) + "\n"
            ).encode("utf-8")
            # deque.append is atomic under the GIL — no lock on the
            # ring; the appender serializes descriptor access itself.
            self._ring.append(payload)
            assert self._appender is not None
            self._appender.append_line(line)
        else:
            self._ring.append(payload)
        return True

    def _snapshot(self) -> List[Dict[str, object]]:
        # Appends don't lock, so a concurrent writer can invalidate
        # this iteration; retry — reads are rare, writes are cheap.
        while True:
            try:
                items = list(self._ring)
                break
            except RuntimeError:
                continue
        return [
            item if isinstance(item, dict) else item.to_dict()
            for item in items
        ]

    def recent(
        self,
        limit: int = 100,
        trace_id: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """The newest kept spans, newest first, optionally filtered."""
        spans = self._snapshot()
        spans.reverse()
        if trace_id is not None:
            spans = [s for s in spans if s.get("trace_id") == trace_id]
        if name is not None:
            spans = [s for s in spans if s.get("name") == name]
        return spans[: max(0, limit)]

    def trace(self, trace_id: str) -> List[Dict[str, object]]:
        """Every buffered span of one trace, in arrival order."""
        return [
            span for span in self._snapshot()
            if span.get("trace_id") == trace_id
        ]

    @property
    def dropped(self) -> int:
        """Spans discarded by head sampling since construction."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        return len(self._ring)  # len() on a deque is atomic

    def close(self) -> None:
        """Release the JSONL descriptor (spans already written stay)."""
        if self._appender is not None:
            self._appender.close()


def read_spans(
    trace_dir: Union[str, Path],
    limit: Optional[int] = None,
    trace_id: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Parse ``spans.jsonl`` under a trace directory (newest last).

    Corrupt lines (a process killed mid-``os.write`` can leave at most
    one) are skipped, never fatal.
    """
    path = Path(trace_dir).expanduser() / SPANS_FILENAME
    spans: List[Dict[str, object]] = []
    try:
        text = path.read_text()
    except OSError:
        return spans
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(payload, dict):
            continue
        if trace_id is not None and payload.get("trace_id") != trace_id:
            continue
        spans.append(payload)
    if limit is not None and limit >= 0:
        spans = spans[-limit:]
    return spans
