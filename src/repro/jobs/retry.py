"""Retry policy: failure classification and backoff schedule.

Failures split along the :mod:`repro.errors` hierarchy:

* **Permanent** — the job can never succeed as specified: a malformed
  spec, an unknown part number, an invalid model, or a solver that
  deterministically fails to converge on these exact inputs.  Retrying
  would burn worker time reproducing the same exception.
* **Transient** — the environment failed, not the job: an engine task
  timeout, a dead pool worker, an I/O error, or any exception the
  library doesn't recognize.  These retry with exponential backoff
  until the attempt budget runs out (at-least-once execution).

The backoff jitter is *deterministic* — derived by hashing the job id
and attempt number — so two workers racing on a requeued job still
agree on when it becomes runnable, and tests are reproducible.
"""

from __future__ import annotations

from ..errors import (
    DatabaseError,
    ModelError,
    SolverError,
    SpecError,
)
from ..ident import digest_int64

#: Exception types whose failures no retry can fix.  ``ParameterError``
#: is a ``SpecError`` subclass and ``EngineError`` (timeouts, pool
#: crashes) is deliberately absent — the engine failing is exactly the
#: transient case the retry loop exists for.
PERMANENT_ERRORS = (SpecError, ModelError, DatabaseError, SolverError)

#: Backoff schedule bounds, in seconds.
DEFAULT_BASE_DELAY = 0.5
DEFAULT_MAX_DELAY = 60.0


def is_permanent(error: BaseException) -> bool:
    """Whether a failure is deterministic and retrying is pointless."""
    return isinstance(error, PERMANENT_ERRORS)


def classify(error: BaseException) -> str:
    """``"permanent"`` or ``"transient"`` — the stored failure class."""
    return "permanent" if is_permanent(error) else "transient"


def backoff_delay(
    attempt: int,
    key: str = "",
    base: float = DEFAULT_BASE_DELAY,
    cap: float = DEFAULT_MAX_DELAY,
) -> float:
    """Delay before retry number ``attempt`` (1-based), in seconds.

    Exponential (``base * 2**(attempt-1)``) with multiplicative jitter
    in ``[0.5, 1.0)`` so requeued jobs don't thunder back in lockstep.
    The jitter is a pure function of ``(key, attempt)``.
    """
    if attempt < 1:
        return 0.0
    raw = min(base * (2.0 ** (attempt - 1)), cap)
    fraction = digest_int64(f"rascad-backoff:{key}:{attempt}") / 2**64
    return raw * (0.5 + 0.5 * fraction)
