"""Job, checkpoint, and result types for the background-job subsystem.

A *job* is one offline batch workload — a parametric sweep, an
uncertainty propagation, or a Monte-Carlo validation — expressed as a
model spec plus kind-specific parameters.  Jobs are identified by a
**content digest**: the id hashes the parsed model (via
:func:`repro.engine.keys.model_digest`, so two spec documents that parse
to the same model share an id regardless of key order or spelled-out
defaults) together with the kind and canonicalized parameters.
Resubmitting an identical job therefore *is* the original job — the
store dedups on the primary key instead of enqueuing duplicate work.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..database import PartsDatabase
from ..engine.keys import model_digest
from ..ident import content_digest, digest_id
from ..errors import SpecError
from ..semimarkov.distributions import (
    Distribution,
    Erlang,
    Lognormal,
    Uniform,
    Weibull,
)
from ..spec import parse_spec

#: Workload kinds the runner knows how to execute.
JOB_KINDS = ("sweep", "uncertainty", "validate", "study", "calibration")

#: Job state machine.  ``queued -> running -> succeeded | failed |
#: cancelled``; a transient failure or an expired lease moves a running
#: job back to ``queued`` until its attempt budget runs out.
QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, SUCCEEDED, FAILED, CANCELLED)

#: States a job never leaves.
TERMINAL_STATES = frozenset({SUCCEEDED, FAILED, CANCELLED})

#: Distribution constructors an uncertainty job may name.
_DISTRIBUTIONS = {
    "uniform": Uniform,
    "lognormal": Lognormal,
    "weibull": Weibull,
    "erlang": Erlang,
}


def distribution_from_dict(payload: Mapping[str, object]) -> Distribution:
    """Build a sampling distribution from its JSON description.

    ``{"type": "uniform", "low": 2e4, "high": 8e4}`` and friends; the
    non-``type`` keys are the constructor's keyword arguments.
    """
    if not isinstance(payload, Mapping) or "type" not in payload:
        raise SpecError(
            "distribution must be an object with a 'type' key, "
            f"got {payload!r}"
        )
    kind = payload["type"]
    factory = _DISTRIBUTIONS.get(kind)  # type: ignore[arg-type]
    if factory is None:
        raise SpecError(
            f"unknown distribution type {kind!r}; "
            f"known: {sorted(_DISTRIBUTIONS)}"
        )
    kwargs = {k: v for k, v in payload.items() if k != "type"}
    try:
        return factory(**kwargs)  # type: ignore[arg-type]
    except TypeError as exc:
        raise SpecError(
            f"bad arguments for {kind!r} distribution: {exc}"
        ) from exc


@dataclass(frozen=True)
class JobSpec:
    """What a job should compute — the durable, hashable submission.

    Attributes:
        kind: One of :data:`JOB_KINDS`.
        spec: The model spec document (the ``repro.spec`` JSON format).
        params: Kind-specific parameters:

            * ``sweep`` — ``field`` (required), ``values`` (list of
              numbers, required), ``block`` (path; omit for a global
              field), ``method``.
            * ``uncertainty`` — ``uncertain`` (list of ``{path, field,
              distribution}``), ``samples``, ``seed``.
            * ``validate`` — ``replications``, ``horizon``, ``seed``,
              ``method``.
            * ``study`` — the study document minus ``base`` (``spec``
              is the base model): ``variables`` (required),
              ``strategy``, ``options``, ``constraints``, ``method``,
              ``name``.
            * ``calibration`` — ``source`` (required; ``{"kind":
              "synthetic", seed, window_hours, server, shifts}`` or
              ``{"kind": "events", "events": [...]}``),
              ``chunk_events``, ``window_hours``, ``drift`` (the
              detector config), ``confidence``, ``method``.
        priority: Higher runs first among queued jobs.
        max_attempts: Execution attempts before a transient failure
            becomes permanent.
    """

    kind: str
    spec: Mapping[str, object]
    params: Mapping[str, object] = field(default_factory=dict)
    priority: int = 0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise SpecError(
                f"unknown job kind {self.kind!r}; known: {list(JOB_KINDS)}"
            )
        if self.max_attempts < 1:
            raise SpecError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind,
                "spec": self.spec,
                "params": self.params,
                "priority": self.priority,
                "max_attempts": self.max_attempts,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        payload = json.loads(text)
        return cls(
            kind=payload["kind"],
            spec=payload["spec"],
            params=payload.get("params", {}),
            priority=int(payload.get("priority", 0)),
            max_attempts=int(payload.get("max_attempts", 3)),
        )


def job_digest(
    spec: JobSpec, database: Optional[PartsDatabase] = None
) -> str:
    """The content-digest job id for a submission.

    Parses the model spec (validating it in the process — a malformed
    spec fails *here*, at submission, not in a worker) and hashes the
    parsed model's engine digest with the kind and canonical-JSON
    parameters.  Two submissions share an id exactly when they describe
    the same computation.
    """
    model = parse_spec(dict(spec.spec), database=database)
    method = str(spec.params.get("method", "direct"))
    document = {
        "kind": spec.kind,
        "model": model_digest(model, method),
        "params": spec.params,
    }
    return digest_id("job", document, 32)


@dataclass(frozen=True)
class JobRecord:
    """One job's durable row: spec, state machine position, telemetry.

    Attributes mirror the SQLite schema; ``result`` is the payload of a
    succeeded job (including its ``result_digest``) and ``error`` the
    last failure message.
    """

    id: str
    kind: str
    state: str
    priority: int
    attempts: int
    max_attempts: int
    submitted_at: float
    updated_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    heartbeat_at: Optional[float]
    not_before: float
    cancel_requested: bool
    worker: Optional[str]
    error: Optional[str]
    spec_json: str
    result: Optional[Dict[str, object]]

    @property
    def spec(self) -> JobSpec:
        return JobSpec.from_json(self.spec_json)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, include_spec: bool = False) -> Dict[str, object]:
        """The API/CLI view of the record."""
        payload: Dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "heartbeat_at": self.heartbeat_at,
            "cancel_requested": self.cancel_requested,
            "worker": self.worker,
            "error": self.error,
            "result": self.result,
        }
        if include_spec:
            payload["spec"] = json.loads(self.spec_json)
        return payload


@dataclass
class Checkpoint:
    """A durable prefix of a job's computed point values.

    Written atomically (temp file + rename) every ``checkpoint_every``
    points, so after a crash the runner re-solves only points past the
    last checkpoint.  ``values`` is positional: index ``i`` holds point
    ``i``'s scalar result, and the aggregation over the *complete* list
    is a pure function — a resumed run is bit-identical to an
    uninterrupted one.
    """

    job_id: str
    kind: str
    total: int
    values: List[float] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(
            {
                "job_id": self.job_id,
                "kind": self.kind,
                "total": self.total,
                "values": self.values,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        payload = json.loads(text)
        return cls(
            job_id=payload["job_id"],
            kind=payload["kind"],
            total=int(payload["total"]),
            values=[float(v) for v in payload["values"]],
        )


def result_digest(payload: Mapping[str, object]) -> str:
    """Content digest of a result payload, for bit-identity checks."""
    return content_digest(payload)


def job_counts(records: "List[JobRecord]") -> Dict[str, int]:
    """Per-state totals for a record list (metrics helper)."""
    counts = {state: 0 for state in JOB_STATES}
    for record in records:
        counts[record.state] = counts.get(record.state, 0) + 1
    return counts
