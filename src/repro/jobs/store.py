r"""The durable job store: one SQLite file shared by submitters and workers.

Every mutation is a single transaction on a short-lived connection, so
the store is safe to share between the CLI, the HTTP service, and any
number of worker processes — SQLite's file locking is the coordination
mechanism, exactly what a stdlib-only deployment has available.

State machine (enforced here, not in callers)::

    queued --lease--> running --succeed--> succeeded
                         |  \--fail(permanent or budget spent)--> failed
                         |  \--fail(transient)/lease expiry--> queued
                         \--release (graceful preemption)--> queued
    queued/running --cancel--> cancelled (running jobs observe the
                               flag at their next checkpoint)

Leases double as crash detection: a worker heartbeats while executing,
and :meth:`JobStore.lease` requeues any running job whose heartbeat is
older than the lease timeout — the recovery path behind the
SIGKILL-and-resume guarantee.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..database import PartsDatabase
from ..errors import RascadError
from ..store import Migration, Schema, SqliteStore
from .types import (
    CANCELLED,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    JobRecord,
    JobSpec,
    job_digest,
)

#: Default file name inside a cache directory.
JOBS_DB_FILENAME = "jobs.sqlite3"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    kind             TEXT NOT NULL,
    state            TEXT NOT NULL,
    priority         INTEGER NOT NULL DEFAULT 0,
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL DEFAULT 3,
    submitted_at     REAL NOT NULL,
    updated_at       REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    heartbeat_at     REAL,
    not_before       REAL NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    worker           TEXT,
    error            TEXT,
    spec             TEXT NOT NULL,
    result           TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_claim
    ON jobs (state, priority DESC, submitted_at);
"""

#: The jobs database schema, versioned via ``PRAGMA user_version``.
JOBS_SCHEMA = Schema(
    "jobs", [Migration(1, "jobs table and claim index", _SCHEMA)]
)


class JobNotFoundError(RascadError):
    """No job with the given id exists in the store."""


class JobStore:
    """SQLite-backed durable job queue.

    Args:
        path: The database file; parent directories are created.
        database: Parts database used to validate submitted specs when
            computing content-digest ids.
    """

    def __init__(
        self,
        path: Union[str, Path],
        database: Optional[PartsDatabase] = None,
    ) -> None:
        self.db = SqliteStore(path, JOBS_SCHEMA)
        self.path = self.db.path
        self.database = database

    def close(self) -> None:
        self.db.close()

    # ------------------------------------------------------------------
    # submission and inspection
    # ------------------------------------------------------------------
    def submit(
        self, spec: JobSpec, now: Optional[float] = None
    ) -> "tuple[JobRecord, bool]":
        """Enqueue a job; returns ``(record, created)``.

        The id is the submission's content digest, so resubmitting an
        identical spec returns the existing record with
        ``created=False`` — no duplicate work is enqueued, whatever
        state the original is in.
        """
        job_id = job_digest(spec, database=self.database)
        now = time.time() if now is None else now
        with self.db.transaction() as conn:
            cursor = conn.execute(
                """
                INSERT OR IGNORE INTO jobs
                    (id, kind, state, priority, max_attempts,
                     submitted_at, updated_at, spec)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    job_id, spec.kind, QUEUED, spec.priority,
                    spec.max_attempts, now, now, spec.to_json(),
                ),
            )
            created = cursor.rowcount == 1
            row = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return _record(row), created

    def get(self, job_id: str) -> JobRecord:
        with self.db.connection() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise JobNotFoundError(f"no job with id {job_id!r}")
        return _record(row)

    def list_jobs(
        self,
        state: Optional[str] = None,
        kind: Optional[str] = None,
        limit: int = 100,
    ) -> List[JobRecord]:
        """Recent jobs, newest first, optionally filtered."""
        if state is not None and state not in JOB_STATES:
            raise RascadError(
                f"unknown job state {state!r}; known: {list(JOB_STATES)}"
            )
        clauses, args = [], []  # type: ignore[var-annotated]
        if state is not None:
            clauses.append("state = ?")
            args.append(state)
        if kind is not None:
            clauses.append("kind = ?")
            args.append(kind)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        with self.db.connection() as conn:
            rows = conn.execute(
                f"SELECT * FROM jobs {where} "
                "ORDER BY submitted_at DESC LIMIT ?",
                (*args, int(limit)),
            ).fetchall()
        return [_record(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Jobs per state — the ``/metrics`` job gauges."""
        totals = {state: 0 for state in JOB_STATES}
        with self.db.connection() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        for row in rows:
            totals[row["state"]] = row["n"]
        return totals

    # ------------------------------------------------------------------
    # worker-side transitions
    # ------------------------------------------------------------------
    def lease(
        self,
        worker: str,
        lease_timeout: float = 60.0,
        now: Optional[float] = None,
    ) -> Optional[JobRecord]:
        """Atomically claim the best queued job, or ``None``.

        Before claiming, running jobs whose heartbeat is older than
        ``lease_timeout`` are recovered: requeued while they still have
        attempts left, failed otherwise — the path a SIGKILLed worker's
        jobs come back through.
        """
        now = time.time() if now is None else now
        stale = now - lease_timeout
        with self.db.transaction(immediate=True) as conn:
            conn.execute(
                """
                UPDATE jobs SET state = ?, worker = NULL, updated_at = ?
                WHERE state = ? AND heartbeat_at < ? AND
                      attempts < max_attempts
                """,
                (QUEUED, now, RUNNING, stale),
            )
            conn.execute(
                """
                UPDATE jobs SET state = ?, worker = NULL, updated_at = ?,
                       finished_at = ?,
                       error = 'lease expired with no attempts left'
                WHERE state = ? AND heartbeat_at < ?
                """,
                (FAILED, now, now, RUNNING, stale),
            )
            row = conn.execute(
                """
                SELECT id FROM jobs
                WHERE state = ? AND not_before <= ?
                ORDER BY priority DESC, submitted_at
                LIMIT 1
                """,
                (QUEUED, now),
            ).fetchone()
            if row is None:
                return None
            conn.execute(
                """
                UPDATE jobs SET state = ?, worker = ?, attempts = attempts + 1,
                       started_at = COALESCE(started_at, ?),
                       heartbeat_at = ?, updated_at = ?
                WHERE id = ?
                """,
                (RUNNING, worker, now, now, now, row["id"]),
            )
            claimed = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (row["id"],)
            ).fetchone()
        return _record(claimed)

    def heartbeat(
        self, job_id: str, now: Optional[float] = None
    ) -> None:
        now = time.time() if now is None else now
        with self.db.transaction() as conn:
            conn.execute(
                "UPDATE jobs SET heartbeat_at = ?, updated_at = ? "
                "WHERE id = ? AND state = ?",
                (now, now, job_id, RUNNING),
            )

    def succeed(
        self,
        job_id: str,
        result: Dict[str, object],
        now: Optional[float] = None,
    ) -> None:
        now = time.time() if now is None else now
        with self.db.transaction() as conn:
            conn.execute(
                """
                UPDATE jobs SET state = ?, result = ?, finished_at = ?,
                       updated_at = ?, error = NULL, worker = NULL
                WHERE id = ? AND state = ?
                """,
                (
                    SUCCEEDED, json.dumps(result, sort_keys=True),
                    now, now, job_id, RUNNING,
                ),
            )

    def fail(
        self,
        job_id: str,
        error: str,
        retryable: bool,
        backoff: float = 0.0,
        now: Optional[float] = None,
    ) -> str:
        """Record a failed attempt; returns the resulting state.

        A retryable failure with budget left requeues the job gated by
        ``not_before = now + backoff``; anything else is terminal.
        """
        now = time.time() if now is None else now
        with self.db.transaction(immediate=True) as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts FROM jobs "
                "WHERE id = ? AND state = ?",
                (job_id, RUNNING),
            ).fetchone()
            if row is None:
                return self.get(job_id).state
            retry = retryable and row["attempts"] < row["max_attempts"]
            state = QUEUED if retry else FAILED
            conn.execute(
                """
                UPDATE jobs SET state = ?, error = ?, updated_at = ?,
                       worker = NULL, not_before = ?, finished_at = ?
                WHERE id = ?
                """,
                (
                    state, error, now,
                    now + backoff if retry else 0.0,
                    None if retry else now,
                    job_id,
                ),
            )
        return state

    def release(self, job_id: str, now: Optional[float] = None) -> None:
        """Return a running job to the queue without spending an attempt.

        The graceful-preemption path (SIGTERM): the worker checkpoints,
        releases, and exits; a later lease resumes from the checkpoint.
        """
        now = time.time() if now is None else now
        with self.db.transaction() as conn:
            conn.execute(
                """
                UPDATE jobs SET state = ?, worker = NULL, updated_at = ?,
                       attempts = MAX(attempts - 1, 0)
                WHERE id = ? AND state = ?
                """,
                (QUEUED, now, job_id, RUNNING),
            )

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str, now: Optional[float] = None) -> JobRecord:
        """Cancel a job.

        Queued jobs cancel immediately; running jobs get
        ``cancel_requested`` set and transition when their worker next
        checks (at a checkpoint boundary).  Terminal jobs are returned
        unchanged.
        """
        now = time.time() if now is None else now
        with self.db.transaction(immediate=True) as conn:
            conn.execute(
                """
                UPDATE jobs SET state = ?, finished_at = ?, updated_at = ?,
                       cancel_requested = 1, worker = NULL
                WHERE id = ? AND state = ?
                """,
                (CANCELLED, now, now, job_id, QUEUED),
            )
            conn.execute(
                "UPDATE jobs SET cancel_requested = 1, updated_at = ? "
                "WHERE id = ? AND state = ?",
                (now, job_id, RUNNING),
            )
        return self.get(job_id)

    def cancel_requested(self, job_id: str) -> bool:
        return self.get(job_id).cancel_requested

    def mark_cancelled(
        self, job_id: str, now: Optional[float] = None
    ) -> None:
        """A worker acknowledging a cancel request mid-run."""
        now = time.time() if now is None else now
        with self.db.transaction() as conn:
            conn.execute(
                """
                UPDATE jobs SET state = ?, finished_at = ?, updated_at = ?,
                       worker = NULL
                WHERE id = ? AND state = ?
                """,
                (CANCELLED, now, now, job_id, RUNNING),
            )


def _record(row: sqlite3.Row) -> JobRecord:
    result = row["result"]
    return JobRecord(
        id=row["id"],
        kind=row["kind"],
        state=row["state"],
        priority=row["priority"],
        attempts=row["attempts"],
        max_attempts=row["max_attempts"],
        submitted_at=row["submitted_at"],
        updated_at=row["updated_at"],
        started_at=row["started_at"],
        finished_at=row["finished_at"],
        heartbeat_at=row["heartbeat_at"],
        not_before=row["not_before"],
        cancel_requested=bool(row["cancel_requested"]),
        worker=row["worker"],
        error=row["error"],
        spec_json=row["spec"],
        result=json.loads(result) if result else None,
    )
