"""Durable background jobs — the offline half of the serving stack.

The online service (:mod:`repro.service`) answers interactive solves in
milliseconds; design-space studies are a different shape of work: a
5,000-point sweep or a long uncertainty run must survive process death,
not hold an HTTP connection open.  This package runs those workloads as
**durable jobs**:

* :mod:`.types` — job/checkpoint/result dataclasses and content-digest
  job ids (resubmitting an identical spec dedups to the original job).
* :mod:`.store` — the SQLite-backed job store: state machine,
  priorities, attempt budgets, heartbeat leases.
* :mod:`.retry` — permanent/transient failure classification over the
  :mod:`repro.errors` hierarchy; exponential backoff with
  deterministic jitter.
* :mod:`.runner` — the worker loop: lease, execute through the
  :mod:`repro.engine` pool in checkpointed chunks, resume after crash
  or SIGTERM with bit-identical results.

Semantics are **at-least-once**: a job may execute partially more than
once (a crash between a checkpoint and the store update re-runs the
tail), but checkpoints make re-execution cheap and the result is
deterministic, so duplicated work is invisible in the output.
"""

from .retry import backoff_delay, classify, is_permanent
from .runner import (
    Checkpointer,
    Plan,
    Worker,
    WorkerConfig,
    execute_job,
    open_store,
    plan_job,
)
from .store import JOBS_DB_FILENAME, JobNotFoundError, JobStore
from .types import (
    CANCELLED,
    FAILED,
    JOB_KINDS,
    JOB_STATES,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    Checkpoint,
    JobRecord,
    JobSpec,
    distribution_from_dict,
    job_digest,
    result_digest,
)

__all__ = [
    "JobSpec",
    "JobRecord",
    "Checkpoint",
    "job_digest",
    "result_digest",
    "distribution_from_dict",
    "JOB_KINDS",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "JobStore",
    "JobNotFoundError",
    "JOBS_DB_FILENAME",
    "Checkpointer",
    "Plan",
    "Worker",
    "WorkerConfig",
    "execute_job",
    "plan_job",
    "open_store",
    "backoff_delay",
    "classify",
    "is_permanent",
]
