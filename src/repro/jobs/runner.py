"""The worker loop: lease, execute in checkpointed chunks, resume.

Execution is *point-wise*: every job kind decomposes into an ordered
list of scalar point computations (sweep points, uncertainty samples,
simulation replications), each a pure function of the job spec and the
point index.  The runner solves points in chunks through the existing
:class:`repro.engine.Engine` (fanning out over its process pool when
``jobs > 1``), and after every chunk durably records the completed
prefix as a :class:`~repro.jobs.types.Checkpoint` via temp-file+rename.

Because points are pure and the final aggregation is a pure function of
the *complete* value list, a run that crashes (SIGKILL) or is preempted
(SIGTERM) and later resumed by any worker produces a result payload
bit-identical to an uninterrupted run — and re-solves only the points
past the last checkpoint.
"""

from __future__ import annotations

import os
import signal
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..analysis.parametric import with_block_changes
from ..core.block import DiagramBlockModel
from ..engine import Engine, task_seed
from ..engine.engine import (
    _replication_task,
    _solve_availability_task,
    _sweep_point_task,
)
from ..errors import SolverError, SpecError, StoreBusyError
from ..num import SolverOptions, as_options
from ..obs import get_logger, get_tracer
from ..spec import parse_spec
from ..store import atomic_write_text
from ..units import MINUTES_PER_YEAR, availability_to_yearly_downtime_minutes
from .retry import backoff_delay, classify, is_permanent
from .store import JobStore
from .types import (
    Checkpoint,
    JobRecord,
    JobSpec,
    distribution_from_dict,
    result_digest,
)

#: Points solved between durable checkpoints (and heartbeats).
DEFAULT_CHECKPOINT_EVERY = 25


class Checkpointer:
    """Atomic per-job checkpoint files under one directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.ckpt.json"

    def save(self, checkpoint: Checkpoint) -> Path:
        """Write-then-rename, so a crash mid-write never corrupts the
        previous checkpoint."""
        target = self.path(checkpoint.job_id)
        atomic_write_text(target, checkpoint.to_json(), prefix=".ckpt-")
        return target

    def load(self, job_id: str) -> Optional[Checkpoint]:
        """The last durable checkpoint, or ``None`` (missing/corrupt)."""
        try:
            text = self.path(job_id).read_text()
            checkpoint = Checkpoint.from_json(text)
        except (OSError, ValueError, KeyError):
            return None
        if checkpoint.job_id != job_id:
            return None
        return checkpoint

    def clear(self, job_id: str) -> None:
        try:
            self.path(job_id).unlink()
        except OSError:
            pass


@dataclass
class Plan:
    """A job decomposed into point computations plus an aggregation.

    ``solve_range(lo, hi)`` may return fewer than ``hi - lo`` values —
    adaptive kinds (studies) clamp chunks to their round boundaries,
    and the runner simply keeps calling until ``total`` values exist.
    ``resume``, when set, is called once with the checkpointed value
    prefix before any solving, so plans that carry internal search
    state (again: studies) can replay it.
    """

    total: int
    solve_range: Callable[[int, int], List[float]]
    aggregate: Callable[[List[float]], Dict[str, object]]
    resume: Optional[Callable[[List[float]], None]] = None


def _require(params, key: str, kind_name: str):
    if key not in params:
        raise SpecError(f"{kind_name} job requires params.{key}")
    return params[key]


def _solver_options(params, kind_name: str) -> SolverOptions:
    """The job's solver configuration from ``params``.

    ``params.solver`` (a full options object) wins over the legacy
    ``params.method`` string.  Both live in the job's persisted,
    digested parameters, so a resumed job re-plans with exactly the
    backend it started with.  Bad names or tolerances are the
    submitter's fault — a permanent :class:`~repro.errors.SpecError`,
    not a retryable solver failure.
    """
    raw = params.get("solver")
    if raw is None:
        raw = str(params.get("method", "direct"))
    try:
        return as_options(raw)
    except SolverError as exc:
        raise SpecError(
            f"{kind_name} job has invalid params.solver: {exc}"
        ) from exc


def _float_list(raw: object, label: str) -> List[float]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise SpecError(f"{label} must be a non-empty list of numbers")
    values: List[float] = []
    for position, value in enumerate(raw):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(f"{label}[{position}] must be a number")
        values.append(float(value))
    return values


def plan_job(
    spec: JobSpec, model: DiagramBlockModel, engine: Engine
) -> Plan:
    """Validate a job's parameters and build its execution plan.

    Parameter problems raise :class:`~repro.errors.SpecError` —
    permanent failures, classified as such by the retry policy.
    """
    if spec.kind == "sweep":
        return _plan_sweep(spec, model, engine)
    if spec.kind == "uncertainty":
        return _plan_uncertainty(spec, model, engine)
    if spec.kind == "validate":
        return _plan_validate(spec, model, engine)
    if spec.kind == "study":
        return _plan_study(spec, model, engine)
    if spec.kind == "calibration":
        return _plan_calibration(spec, model, engine)
    raise SpecError(f"unknown job kind {spec.kind!r}")


def _plan_sweep(
    spec: JobSpec, model: DiagramBlockModel, engine: Engine
) -> Plan:
    params = spec.params
    field = str(_require(params, "field", "sweep"))
    values = _float_list(_require(params, "values", "sweep"),
                         "params.values")
    block = params.get("block")
    method = _solver_options(params, "sweep")

    def solve_range(lo: int, hi: int) -> List[float]:
        if engine.jobs == 1:
            return [
                _sweep_point_task(model, block, field, value, method, engine)
                for value in values[lo:hi]
            ]
        cache_dir, use_cache = engine._worker_cache_config
        return engine.map(
            _sweep_point_task,
            [
                (model, block, field, value, method, None,
                 cache_dir, use_cache)
                for value in values[lo:hi]
            ],
            stage="jobs",
        )

    def aggregate(availabilities: List[float]) -> Dict[str, object]:
        return {
            "kind": "sweep",
            "model": model.name,
            "field": field,
            "block": block,
            "points": [
                {
                    "value": value,
                    "availability": availability,
                    "yearly_downtime_minutes": (
                        availability_to_yearly_downtime_minutes(availability)
                    ),
                }
                for value, availability in zip(values, availabilities)
            ],
        }

    return Plan(len(values), solve_range, aggregate)


def _plan_uncertainty(
    spec: JobSpec, model: DiagramBlockModel, engine: Engine
) -> Plan:
    params = spec.params
    samples = int(params.get("samples", 100))
    if samples < 2:
        raise SpecError(f"need at least 2 samples, got {samples}")
    method = _solver_options(params, "uncertainty")
    seed = params.get("seed")
    entries = _require(params, "uncertain", "uncertainty")
    if not isinstance(entries, (list, tuple)) or not entries:
        raise SpecError("params.uncertain must be a non-empty list")
    parsed = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise SpecError("each uncertain entry must be an object")
        parsed.append((
            str(_require(entry, "path", "uncertainty")),
            str(_require(entry, "field", "uncertainty")),
            distribution_from_dict(
                _require(entry, "distribution", "uncertainty")
            ),
        ))
    # Draws are sequential from one generator — the exact stream of
    # Engine.propagate_uncertainty — so the variants (and hence the
    # results) match an online run of the same spec bit-for-bit.
    rng = np.random.default_rng(seed)
    variants = []
    for _ in range(samples):
        variant = model
        for path, field, distribution in parsed:
            value = distribution.sample(rng)
            variant = with_block_changes(variant, path, **{field: value})
        variants.append(variant)

    def solve_range(lo: int, hi: int) -> List[float]:
        if engine.jobs == 1:
            return [
                engine._solve(variant, method).availability
                for variant in variants[lo:hi]
            ]
        cache_dir, use_cache = engine._worker_cache_config
        return engine.map(
            _solve_availability_task,
            [
                (variant, method, cache_dir, use_cache)
                for variant in variants[lo:hi]
            ],
            stage="jobs",
        )

    def aggregate(availabilities: List[float]) -> Dict[str, object]:
        # Bit-identical to analysis.uncertainty.UncertaintyResult.
        arr = np.asarray(availabilities, dtype=float)
        downtimes = (1.0 - arr) * MINUTES_PER_YEAR
        p05, p50, p95 = np.percentile(downtimes, [5.0, 50.0, 95.0])
        return {
            "kind": "uncertainty",
            "model": model.name,
            "samples": samples,
            "mean_availability": float(arr.mean()),
            "std_availability": float(arr.std(ddof=1)),
            "downtime_p05": float(p05),
            "downtime_p50": float(p50),
            "downtime_p95": float(p95),
        }

    return Plan(samples, solve_range, aggregate)


def _plan_validate(
    spec: JobSpec, model: DiagramBlockModel, engine: Engine
) -> Plan:
    from ..semimarkov.simulation import _summarize
    from ..validation.simulator import contributing_blocks

    params = spec.params
    replications = int(params.get("replications", 40))
    if replications < 2:
        raise SpecError(
            f"need at least 2 replications, got {replications}"
        )
    horizon = float(params.get("horizon", 30_000.0))
    seed = params.get("seed", 0)
    seed = 0 if seed is None else int(seed)  # resumes must be seeded
    method = _solver_options(params, "validate")
    solution = engine.solve(model, method)
    contributing = contributing_blocks(solution)
    g = model.global_parameters

    def solve_range(lo: int, hi: int) -> List[float]:
        tasks = [
            (contributing, g, horizon, task_seed(seed, index))
            for index in range(lo, hi)
        ]
        if engine.jobs == 1:
            return [_replication_task(*task) for task in tasks]
        return engine.map(_replication_task, tasks, stage="jobs")

    def aggregate(samples: List[float]) -> Dict[str, object]:
        result = _summarize(np.asarray(samples, dtype=float), 0.95)
        return {
            "kind": "validate",
            "model": model.name,
            "analytic_availability": solution.availability,
            "simulated_mean": result.mean,
            "interval_low": result.low,
            "interval_high": result.high,
            "replications": replications,
            "horizon_hours": horizon,
            "agreement": result.contains(solution.availability),
        }

    return Plan(replications, solve_range, aggregate)


def _plan_study(
    spec: JobSpec, model: DiagramBlockModel, engine: Engine
) -> Plan:
    """A checkpointed, resumable design-space study.

    The study document is the job spec's model document as ``base``
    plus the search parameters from ``params``.  Strategy rounds are a
    pure function of the availability prefix, so the checkpointed
    scalar list *is* the whole search state: ``resume`` replays it,
    ``solve_range`` evaluates the current round's remainder (clamped
    to the chunk), and ``aggregate`` recomputes everything else.
    """
    from ..database import builtin_database
    from ..studies import (
        aggregate_study,
        make_strategy,
        parse_study,
        replay,
    )
    from ..studies.runner import evaluate_candidates
    from ..studies.spec import SEARCH_KEYS

    params = spec.params
    document: Dict[str, object] = {"base": dict(spec.spec)}
    for key in SEARCH_KEYS:
        if key in params:
            document[key] = params[key]
    database = builtin_database()
    study = parse_study(document, database=database)
    strategy = make_strategy(study, model, database)
    history: List[float] = []

    def resume(values: List[float]) -> None:
        history[:] = list(values)

    def solve_range(lo: int, hi: int) -> List[float]:
        if len(history) != lo:
            raise SolverError(
                f"study plan out of sync: history has {len(history)} "
                f"values, runner asked for range [{lo}, {hi})"
            )
        _trace, pending = replay(strategy, history)
        chunk = pending[:hi - lo]
        availabilities = evaluate_candidates(engine, chunk, study.method)
        history.extend(availabilities)
        return availabilities

    def aggregate(availabilities: List[float]) -> Dict[str, object]:
        return aggregate_study(
            study, strategy, availabilities, database=database
        )

    return Plan(strategy.total(), solve_range, aggregate, resume=resume)


def _plan_calibration(
    spec: JobSpec, model: DiagramBlockModel, engine: Engine
) -> Plan:
    """A checkpointed, resumable field-data calibration fit.

    The event stream is a pure function of the job's parameters —
    either regenerated synthetically from ``(spec, seed, window,
    shifts)`` or carried verbatim in ``params.source.events`` — so a
    point is simply "ingest chunk *i*" and its checkpointed scalar is
    the accepted-event count.  ``resume`` re-ingests the checkpointed
    prefix chunks into a fresh estimator (pure replay, like the study
    plan's history), which is why a SIGKILL'd fit resumes to the
    bit-identical estimator state, fitted rates, and proposal digest.
    """
    from ..telemetry import (
        DriftConfig,
        NoDriftError,
        OutOfOrderError,
        RateEstimator,
        TelemetryError,
        build_proposal,
        parse_events,
        synthetic_field_events,
    )

    params = spec.params
    source = _require(params, "source", "calibration")
    if not isinstance(source, dict) or "kind" not in source:
        raise SpecError(
            "params.source must be an object with a 'kind' key"
        )
    chunk_events = int(params.get("chunk_events", 256))
    if chunk_events < 1:
        raise SpecError(
            f"chunk_events must be >= 1, got {chunk_events}"
        )
    window_hours = float(params.get("window_hours", 168.0))
    confidence = float(params.get("confidence", 0.95))
    drift_raw = params.get("drift")
    if drift_raw is not None and not isinstance(drift_raw, dict):
        raise SpecError("params.drift must be an object")
    try:
        drift_config = DriftConfig(
            window_hours=window_hours, **(drift_raw or {})
        )
    except (TelemetryError, TypeError) as exc:
        raise SpecError(
            f"calibration job has invalid params.drift: {exc}"
        ) from exc
    options = _solver_options(params, "calibration")

    source_kind = source["kind"]
    if source_kind == "synthetic":
        try:
            events = synthetic_field_events(
                model,
                window_hours=float(
                    source.get("window_hours", 10_950.0)
                ),
                seed=int(source.get("seed", 0)),
                server=str(source.get("server", "server-A")),
                mtbf_shifts=source.get("shifts"),
            )
        except TelemetryError as exc:
            raise SpecError(
                f"calibration job has a bad synthetic source: {exc}"
            ) from exc
    elif source_kind == "events":
        try:
            events = parse_events(
                _require(source, "events", "calibration")
            )
            # Dry-run the full stream now so ordering problems are
            # permanent submission errors, not worker retries.
            probe = RateEstimator(window_hours=window_hours)
            probe.ingest_many(events)
        except OutOfOrderError as exc:
            raise SpecError(
                f"calibration job events are out of order: {exc}"
            ) from exc
        except TelemetryError as exc:
            raise SpecError(
                f"calibration job has malformed events: {exc}"
            ) from exc
    else:
        raise SpecError(
            f"unknown calibration source kind {source_kind!r}; "
            "known: ['synthetic', 'events']"
        )

    chunks = [
        events[lo:lo + chunk_events]
        for lo in range(0, len(events), chunk_events)
    ] or [[]]
    estimator = RateEstimator(window_hours=window_hours)
    ingested = [0]  # chunks folded into ``estimator`` so far

    def resume(values: List[float]) -> None:
        for index in range(len(values)):
            estimator.ingest_many(chunks[index])
        ingested[0] = len(values)

    def solve_range(lo: int, hi: int) -> List[float]:
        if ingested[0] != lo:
            raise SolverError(
                f"calibration plan out of sync: {ingested[0]} chunks "
                f"ingested, runner asked for range [{lo}, {hi})"
            )
        accepted: List[float] = []
        for index in range(lo, hi):
            count, _duplicates = estimator.ingest_many(chunks[index])
            accepted.append(float(count))
            ingested[0] = index + 1
        return accepted

    def aggregate(values: List[float]) -> Dict[str, object]:
        fitted = estimator.fit(confidence=confidence)
        try:
            proposal: Optional[Dict[str, object]] = build_proposal(
                estimator,
                model,
                engine,
                drift_config=drift_config,
                options=options,
                confidence=confidence,
            )
        except NoDriftError:
            proposal = None
        payload: Dict[str, object] = {
            "kind": "calibration",
            "model": model.name,
            "events_total": len(events),
            "accepted": int(sum(values)),
            "chunks": len(chunks),
            "state_digest": estimator.state_digest(),
            "event_window": estimator.event_window(),
            "fitted": fitted.to_dict(),
            "drifted": proposal is not None,
            "proposal": proposal,
        }
        return payload

    return Plan(len(chunks), solve_range, aggregate, resume=resume)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

#: Outcomes :func:`execute_job` can report.
SUCCEEDED = "succeeded"
RELEASED = "released"
CANCELLED = "cancelled"


def execute_job(
    record: JobRecord,
    store: JobStore,
    engine: Engine,
    checkpointer: Checkpointer,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    should_stop: Optional[Callable[[], bool]] = None,
) -> str:
    """Run one leased job to completion, preemption, or cancellation.

    Raises on failure — the caller (the worker loop) owns the retry
    bookkeeping.  Between chunks the runner checks for a stop request
    (graceful preemption: checkpoint, release the lease, exit) and for
    cancellation; after every chunk it checkpoints and heartbeats.
    """
    spec = record.spec
    model = parse_spec(dict(spec.spec), database=store.database)
    plan = plan_job(spec, model, engine)
    stats = engine.stats

    checkpoint = checkpointer.load(record.id)
    if checkpoint is not None and (
        checkpoint.kind != spec.kind or checkpoint.total != plan.total
    ):
        checkpoint = None  # stale checkpoint from an older spec format
    values = list(checkpoint.values) if checkpoint is not None else []
    if values:
        stats.increment("jobs_points_resumed", len(values))
    if plan.resume is not None:
        plan.resume(list(values))

    tracer = get_tracer()
    log = get_logger("jobs")
    with tracer.span(
        "jobs.execute",
        job_id=record.id,
        kind=spec.kind,
        total=plan.total,
        resumed=len(values),
    ) as job_span:
        log.info(
            "executing job",
            extra={
                "job_id": record.id, "kind": spec.kind,
                "total": plan.total, "resumed": len(values),
            },
        )
        with stats.timer("jobs"):
            while len(values) < plan.total:
                if should_stop is not None and should_stop():
                    checkpointer.save(
                        Checkpoint(
                            record.id, spec.kind, plan.total, values
                        )
                    )
                    store.release(record.id)
                    stats.increment("jobs_released")
                    job_span.set_attr("outcome", RELEASED)
                    return RELEASED
                if store.cancel_requested(record.id):
                    store.mark_cancelled(record.id)
                    checkpointer.clear(record.id)
                    stats.increment("jobs_cancelled")
                    job_span.set_attr("outcome", CANCELLED)
                    return CANCELLED
                lo = len(values)
                hi = min(lo + max(1, checkpoint_every), plan.total)
                # One span per chunk: a resumed job's trace starts at
                # the first un-checkpointed chunk, so the chunk spans
                # of one job across restarts tile its point range.
                with tracer.span(
                    "jobs.chunk", job_id=record.id, lo=lo, hi=hi
                ):
                    values.extend(plan.solve_range(lo, hi))
                checkpointer.save(
                    Checkpoint(record.id, spec.kind, plan.total, values)
                )
                store.heartbeat(record.id)
                stats.increment("jobs_points_completed", hi - lo)

        payload = plan.aggregate(values)
        payload["result_digest"] = result_digest(payload)
        store.succeed(record.id, payload)
        checkpointer.clear(record.id)
        stats.increment("jobs_succeeded")
        job_span.set_attr("outcome", SUCCEEDED)
        log.info(
            "job succeeded",
            extra={"job_id": record.id, "kind": spec.kind},
        )
    return SUCCEEDED


@dataclass
class WorkerConfig:
    """Everything ``rascad jobs worker`` can configure.

    Attributes:
        name: Worker identity recorded on leased jobs.
        poll_interval: Seconds between lease attempts when idle.
        lease_timeout: Heartbeat age after which a running job is
            presumed crashed and reclaimed.
        checkpoint_every: Points per checkpoint/heartbeat chunk.
        once: Drain the queue, then exit instead of polling.
        max_jobs: Stop after this many processed jobs (None = no cap).
    """

    name: str = ""
    poll_interval: float = 0.2
    lease_timeout: float = 60.0
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    once: bool = False
    max_jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{socket.gethostname()}:{os.getpid()}"


class Worker:
    """The lease/execute/retry loop around one engine and one store."""

    def __init__(
        self,
        store: JobStore,
        engine: Engine,
        checkpointer: Checkpointer,
        config: Optional[WorkerConfig] = None,
    ) -> None:
        self.store = store
        self.engine = engine
        self.checkpointer = checkpointer
        self.config = config or WorkerConfig()
        self._stop = False

    def request_stop(self) -> None:
        """Finish the current chunk, checkpoint, release, and exit."""
        self._stop = True

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT become graceful preemption."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(
                    signum, lambda *_: self.request_stop()
                )
            except ValueError:  # pragma: no cover - non-main thread
                pass

    def process(self, record: JobRecord) -> str:
        """Execute one leased job, mapping failures through the retry
        policy; returns the outcome state."""
        try:
            return execute_job(
                record,
                self.store,
                self.engine,
                self.checkpointer,
                checkpoint_every=self.config.checkpoint_every,
                should_stop=lambda: self._stop,
            )
        except Exception as error:  # noqa: BLE001 - classified below
            retryable = not is_permanent(error)
            delay = (
                backoff_delay(record.attempts, key=record.id)
                if retryable
                else 0.0
            )
            state = self.store.fail(
                record.id,
                f"{classify(error)}: {type(error).__name__}: {error}",
                retryable=retryable,
                backoff=delay,
            )
            self.engine.stats.increment(
                "jobs_retried" if state == "queued" else "jobs_failed"
            )
            get_logger("jobs").warning(
                "job failed",
                extra={
                    "job_id": record.id,
                    "error_class": classify(error),
                    "retryable": retryable,
                    "state": state,
                },
            )
            return state

    def run(self) -> int:
        """The worker main loop; returns the number of processed jobs."""
        processed = 0
        config = self.config
        while not self._stop:
            try:
                record = self.store.lease(
                    worker=config.name, lease_timeout=config.lease_timeout
                )
            except StoreBusyError as busy:
                # Contention on the shared database is transient by
                # construction — wait out the hint and re-poll rather
                # than crashing the worker.
                get_logger("jobs").warning(
                    "job store busy; backing off",
                    extra={"retry_after": busy.retry_after},
                )
                time.sleep(max(busy.retry_after, config.poll_interval))
                continue
            if record is None:
                if config.once:
                    break
                time.sleep(config.poll_interval)
                continue
            self.process(record)
            processed += 1
            if config.max_jobs is not None and processed >= config.max_jobs:
                break
        return processed


def default_jobs_dir(
    cache_dir: Optional[Union[str, Path]] = None
) -> Path:
    """Where the job database and checkpoints live by default."""
    from ..engine import default_cache_dir

    base = Path(cache_dir).expanduser() if cache_dir else default_cache_dir()
    return base


def open_store(
    db_path: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    database=None,
) -> "tuple[JobStore, Checkpointer]":
    """The (store, checkpointer) pair the CLI and service share.

    Defaults to ``<cache-dir>/jobs.sqlite3`` with checkpoints under
    ``<cache-dir>/checkpoints/`` so CLI workers and the HTTP service
    coordinate through the same files out of the box.
    """
    from .store import JOBS_DB_FILENAME

    base = default_jobs_dir(cache_dir)
    path = Path(db_path).expanduser() if db_path else base / JOBS_DB_FILENAME
    store = JobStore(path, database=database)
    checkpointer = Checkpointer(path.parent / "checkpoints")
    return store, checkpointer
