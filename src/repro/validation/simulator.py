"""Event-level Monte Carlo simulation of MG block semantics.

This simulator executes the component life-cycle rules of DESIGN.md §4
directly — competing exponential timers, Bernoulli branch draws, level
counters — without ever assembling a generator matrix.  It therefore
validates the *chain generator* (structure and rates), not just the
numerical solvers: if :func:`repro.core.generate_block_chain` wires a
wrong rate or a wrong target state, the analytic availability and the
simulated availability diverge.

The simulated process is the MG abstraction itself (one fault level
counter, symmetric units), which is exactly what the reproduction must
cross-check; see :mod:`repro.validation.field_data` for the per-unit
trace generator used in the field-data experiment.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..core.parameters import BlockParameters, GlobalParameters, Scenario
from ..core.translator import SystemSolution
from ..errors import SolverError
from ..semimarkov.simulation import SimulationResult, _summarize


def simulate_block_availability(
    parameters: BlockParameters,
    global_parameters: Optional[GlobalParameters] = None,
    horizon: float = 87_600.0,
    replications: int = 100,
    seed: Optional[int] = None,
    confidence: float = 0.95,
) -> SimulationResult:
    """Monte Carlo interval availability of one MG block.

    Args:
        parameters: The block's engineering parameters.
        global_parameters: Global Parameter Bar values.
        horizon: Hours simulated per replication (default: ten years,
            long enough for the time average to approach steady state).
        replications: Independent replications.
        seed: Deterministic seeding for reproducible benchmarks.
        confidence: Confidence level for the returned interval.
    """
    g = global_parameters or GlobalParameters()
    rng = np.random.default_rng(seed)
    if horizon <= 0:
        raise SolverError(f"horizon must be positive, got {horizon}")
    samples = np.empty(replications)
    runner = (
        _run_redundant if parameters.is_redundant else _run_type0
    )
    for r in range(replications):
        samples[r] = runner(parameters, g, horizon, rng)
    return _summarize(samples, confidence)


def _exp(rng: np.random.Generator, rate: float) -> float:
    """An exponential holding time; rate 0 means "never"."""
    if rate <= 0.0:
        return math.inf
    return float(rng.exponential(1.0 / rate))


def _run_type0(
    p: BlockParameters,
    g: GlobalParameters,
    horizon: float,
    rng: np.random.Generator,
) -> float:
    """One trajectory of the non-redundant life-cycle (Type 0 rules)."""
    lam_p = p.quantity * p.permanent_rate
    lam_t = p.quantity * p.transient_rate
    clock = 0.0
    up_time = 0.0
    while clock < horizon:
        # Up in Ok: competing permanent and transient faults.
        t_perm = _exp(rng, lam_p)
        t_trans = _exp(rng, lam_t)
        dwell = min(t_perm, t_trans)
        if clock + dwell >= horizon or dwell == math.inf:
            up_time += min(dwell, horizon - clock)
            break
        up_time += dwell
        clock += dwell
        if t_trans < t_perm:
            clock += _exp(rng, 1.0 / g.reboot_hours)
            continue
        # Permanent fault: logistic wait, then repair attempts.
        if p.service_response_hours > 0:
            clock += _exp(rng, 1.0 / p.service_response_hours)
        while True:
            clock += _exp(rng, 1.0 / p.mttr_hours)
            if rng.random() < p.p_correct_diagnosis:
                break
            clock += _exp(rng, 1.0 / g.mttrfid_hours)
            break  # MTTRFID covers the eventual correct repair
    return min(up_time, horizon) / horizon


def _run_redundant(
    p: BlockParameters,
    g: GlobalParameters,
    horizon: float,
    rng: np.random.Generator,
) -> float:
    """One trajectory of the redundant life-cycle (Types 1-4 rules).

    State is (mode, level): mode in {"base", "latent"}; all other modes
    (AR, SPF, TF, ServiceError, Reint, down) are handled inline as
    timed excursions because they have a single exit.
    """
    n = p.quantity
    depth = p.redundancy_depth
    lam_p = p.permanent_rate
    lam_t = p.transient_rate
    nontransparent_recovery = p.recovery is Scenario.NONTRANSPARENT
    nontransparent_repair = p.repair is Scenario.NONTRANSPARENT
    mu_deferred_mean = (
        g.mttm_hours + p.service_response_hours + p.mttr_hours
    )
    mu_immediate_mean = p.service_response_hours + p.mttr_hours

    clock = 0.0
    up_time = 0.0
    mode = "base"
    level = 0

    def spend_down(duration: float) -> None:
        nonlocal clock
        clock += duration

    def recovery_outcome() -> bool:
        """True when the AR/failover works (no SPF)."""
        return rng.random() >= p.p_spf

    while clock < horizon:
        if level > depth:
            # System down: immediate service call, repair one unit.
            spend_down(_exp(rng, 1.0 / mu_immediate_mean))
            if rng.random() < p.p_correct_diagnosis:
                if nontransparent_repair:
                    spend_down(_exp(rng, 1.0 / p.reintegration_hours))
            else:
                spend_down(_exp(rng, 1.0 / g.mttrfid_hours))
            level -= 1
            mode = "base"
            continue

        # Up state (base or latent) at `level`: competing events.
        active = n - level
        events = {
            "permanent": _exp(rng, active * lam_p),
            "transient": _exp(rng, active * lam_t),
        }
        if mode == "latent":
            events["detect"] = _exp(rng, 1.0 / p.mttdlf_hours)
        if mode == "base" and level >= 1:
            events["repair"] = _exp(rng, 1.0 / mu_deferred_mean)
        kind = min(events, key=events.get)
        dwell = events[kind]
        if clock + dwell >= horizon or dwell == math.inf:
            up_time += min(dwell, horizon - clock)
            break
        up_time += dwell
        clock += dwell

        if kind == "repair":
            if rng.random() < p.p_correct_diagnosis:
                if nontransparent_repair:
                    spend_down(_exp(rng, 1.0 / p.reintegration_hours))
            else:
                spend_down(_exp(rng, 1.0 / g.mttrfid_hours))
            level -= 1
            mode = "base"
            continue

        if kind == "detect":
            # Latent fault detected: the recovery event runs now.
            mode = "base"
            if nontransparent_recovery:
                spend_down(_exp(rng, 1.0 / p.ar_time_hours))
            if not recovery_outcome():
                spend_down(_exp(rng, 1.0 / p.spf_recovery_hours))
            continue

        if kind == "transient":
            if nontransparent_recovery:
                spend_down(_exp(rng, 1.0 / p.ar_time_hours))
                if recovery_outcome():
                    # TF_j exits to base(level): a reboot-style AR also
                    # detects a latent fault (chain: T_j -> PF_j).
                    mode = "base"
                else:
                    spend_down(_exp(rng, 1.0 / p.spf_recovery_hours))
                    # The corrupted unit consumes a service action
                    # (DESIGN.md choice 1): land in PF at >= level 1.
                    level = max(level, 1)
                    mode = "base"
            else:
                # Transparent recovery: success is invisible (no state
                # change, a latent fault stays latent).
                if not recovery_outcome():
                    spend_down(_exp(rng, 1.0 / p.spf_recovery_hours))
                    level = max(level, 1)
                    mode = "base"
            continue

        # Permanent fault.
        if level == depth:
            # Boundary: straight to system-down (no AR can save it).
            level += 1
            mode = "base"
            continue
        if rng.random() < p.p_latent_fault:
            level += 1
            mode = "latent"
            continue
        level += 1
        mode = "base"
        if nontransparent_recovery:
            spend_down(_exp(rng, 1.0 / p.ar_time_hours))
        if not recovery_outcome():
            spend_down(_exp(rng, 1.0 / p.spf_recovery_hours))

    return min(up_time, horizon) / horizon


def contributing_blocks(
    solution: SystemSolution,
) -> List[Tuple[BlockParameters, int]]:
    """The ``(effective parameters, multiplicity)`` simulation units.

    Collect the blocks that actually contribute: a chain-backed block
    absorbs its whole subtree (the aggregate chain covers it); a
    pass-through block contributes its children, replicated by its
    quantity.
    """
    contributing: List[Tuple[BlockParameters, int]] = []

    def collect(block, multiplicity: int) -> None:
        if block.chain is not None:
            contributing.append((block.effective, multiplicity))
            return
        for child in block.children:
            collect(child, multiplicity * block.block.parameters.quantity)

    for top in solution.blocks:
        collect(top, 1)
    if not contributing:
        raise SolverError("solution has no chain-backed blocks to simulate")
    return contributing


def simulate_system_availability(
    solution: SystemSolution,
    horizon: float = 87_600.0,
    replications: int = 60,
    seed: Optional[int] = None,
    confidence: float = 0.95,
    jobs: Optional[int] = None,
) -> SimulationResult:
    """Monte Carlo availability of a solved model.

    Each replication simulates every chain-backed block independently
    over the horizon (the MG independence assumption) and multiplies
    the per-block interval availabilities — an unbiased estimate of the
    product of expectations the analytic hierarchy computes.

    With ``jobs=None`` (the default) the historical implementation
    runs: one generator drives all replications sequentially, so
    existing seeded results are preserved exactly.  Any explicit
    ``jobs`` — including 1 — routes through the evaluation engine,
    which derives one seed per replication: serial and parallel engine
    runs of the same seed return identical intervals.
    """
    if jobs is not None:
        from ..engine import Engine

        return Engine(jobs=jobs, cache=False).simulate_system(
            solution,
            horizon=horizon,
            replications=replications,
            seed=seed,
            confidence=confidence,
        )
    rng = np.random.default_rng(seed)
    g = solution.model.global_parameters
    contributing = contributing_blocks(solution)
    samples = np.empty(replications)
    for r in range(replications):
        product = 1.0
        for p, multiplicity in contributing:
            runner = _run_redundant if p.is_redundant else _run_type0
            for _copy in range(multiplicity):
                product *= runner(p, g, horizon, rng)
        samples[r] = product
    return _summarize(samples, confidence)
