"""Synthetic field traces: what two E10000s would have logged.

The paper compares RAScad output with "field data collected from two
large operational E10000 servers for 15 months".  We have no production
traces, so this module *generates* them: it plays each chain-backed
block of a solved model forward in time as an independent stochastic
trajectory (via the semi-Markov embedding, a code path disjoint from
the steady-state solvers), records every interval the system spends
down, and merges those into the outage log a site operator would keep.
The MEADEP-style estimator then recovers availability from the log and
the benchmark compares it against the model prediction — the same
comparison loop as the paper's, with the added power that we *know* the
ground truth and can verify the loop detects injected mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.translator import BlockSolution, SystemSolution
from ..errors import SolverError
from ..markov.chain import MarkovChain
from ..semimarkov.process import SemiMarkovProcess
from .meadep import FieldEstimate, OutageEvent, estimate_from_log, merge_intervals

#: Hours in the paper's 15-month observation window (15 * 730).
FIFTEEN_MONTHS_HOURS = 10_950.0


@dataclass(frozen=True)
class FieldLog:
    """The outage log of one simulated server."""

    server: str
    window_hours: float
    events: Tuple[OutageEvent, ...]

    def estimate(self) -> FieldEstimate:
        """MEADEP-style estimation over this log."""
        return estimate_from_log(self.events, self.window_hours)


def _down_intervals(
    chain: MarkovChain,
    horizon: float,
    rng: np.random.Generator,
    cause: str,
) -> List[Tuple[float, float, str]]:
    """One trajectory's down intervals, via the semi-Markov embedding."""
    process = SemiMarkovProcess.from_markov_chain(chain)
    current = process.state_names[0]
    clock = 0.0
    intervals: List[Tuple[float, float, str]] = []
    down_since: Optional[float] = None
    while clock < horizon:
        state = process.state(current)
        entries = process.kernel(current)
        if state.is_up:
            if down_since is not None:
                intervals.append((down_since, clock, cause))
                down_since = None
        else:
            if down_since is None:
                down_since = clock
        if not entries:
            break
        u = rng.random()
        cumulative = 0.0
        chosen = entries[-1]
        for entry in entries:
            cumulative += entry.probability
            if u <= cumulative:
                chosen = entry
                break
        clock += chosen.distribution.sample(rng)
        current = chosen.target
    if down_since is not None:
        intervals.append((down_since, min(clock, horizon), cause))
    return [
        (start, min(end, horizon), name)
        for start, end, name in intervals
        if start < horizon and end > start
    ]


def generate_field_log(
    solution: SystemSolution,
    server: str = "server-A",
    window_hours: float = FIFTEEN_MONTHS_HOURS,
    seed: Optional[int] = None,
) -> FieldLog:
    """Generate the outage log one server would record over the window.

    Every contributing chain-backed block runs as an independent
    trajectory; overlapping per-block outages merge into single logged
    events, exactly as a site log conflates concurrent causes.
    """
    if window_hours <= 0:
        raise SolverError(
            f"observation window must be positive, got {window_hours}"
        )
    rng = np.random.default_rng(seed)
    intervals: List[Tuple[float, float, str]] = []

    def visit(block: BlockSolution) -> None:
        if block.chain is not None:
            intervals.extend(
                _down_intervals(block.chain, window_hours, rng, block.name)
            )
            return
        # Pass-through: each of the block's `quantity` copies of the
        # subdiagram runs its own independent trajectories.
        for child in block.children:
            for _copy in range(block.block.parameters.quantity):
                visit(child)

    for top in solution.blocks:
        visit(top)
    events = tuple(merge_intervals(intervals))
    return FieldLog(server=server, window_hours=window_hours, events=events)


@dataclass(frozen=True)
class DowntimeDistribution:
    """Percentiles of realized downtime over an observation window.

    Expected yearly downtime is a mean; sites experience a *draw*.
    RAS engineers quote the tail (what the unlucky site sees), which
    this distribution provides.
    """

    window_hours: float
    replications: int
    mean_minutes: float
    p50_minutes: float
    p90_minutes: float
    p99_minutes: float
    max_minutes: float


def downtime_distribution(
    solution: SystemSolution,
    window_hours: float = 8760.0,
    replications: int = 200,
    seed: Optional[int] = None,
) -> DowntimeDistribution:
    """Distribution of realized downtime minutes over the window.

    Each replication generates one site history (via
    :func:`generate_field_log`) and sums its outage minutes.
    """
    if replications < 2:
        raise SolverError(
            f"need at least 2 replications, got {replications}"
        )
    totals = np.empty(replications)
    for index in range(replications):
        log = generate_field_log(
            solution,
            server=f"draw-{index}",
            window_hours=window_hours,
            seed=None if seed is None else seed + index,
        )
        totals[index] = sum(
            event.duration_hours for event in log.events
        ) * 60.0
    p50, p90, p99 = np.percentile(totals, [50.0, 90.0, 99.0])
    return DowntimeDistribution(
        window_hours=window_hours,
        replications=replications,
        mean_minutes=float(totals.mean()),
        p50_minutes=float(p50),
        p90_minutes=float(p90),
        p99_minutes=float(p99),
        max_minutes=float(totals.max()),
    )
