"""An independent analytic solver path ("SHARPE-like").

RAScad was validated by solving the same models in SHARPE and comparing
results.  This module plays SHARPE's role: it assembles the generator
itself from the chain's transition list (never calling
``MarkovChain.generator_matrix``) and solves the stationary equations
with a different formulation (augmented least squares on sparse data)
from the production solvers in :mod:`repro.markov.steady_state`.  A bug
in either path shows up as disagreement in the E4/E5 benchmarks.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy import sparse


from ..errors import SolverError
from ..markov.chain import MarkovChain


def sharpe_steady_state(chain: MarkovChain) -> Dict[str, float]:
    """Stationary probabilities via independent assembly and numerics."""
    names = chain.state_names
    n = len(names)
    if n == 0:
        raise SolverError("empty chain")
    if n == 1:
        return {names[0]: 1.0}
    index = {name: i for i, name in enumerate(names)}

    rows, cols, data = [], [], []
    exit_rates = np.zeros(n)
    for transition in chain.transitions():
        i = index[transition.source]
        j = index[transition.target]
        # Balance equations in column form: sum_i pi_i q_ij = 0.
        rows.append(j)
        cols.append(i)
        data.append(transition.rate)
        exit_rates[i] += transition.rate
    for i in range(n):
        rows.append(i)
        cols.append(i)
        data.append(-exit_rates[i])

    balance = sparse.coo_matrix((data, (rows, cols)), shape=(n, n))
    # Augment with the normalisation row and solve the overdetermined
    # system by least squares.  Availability chains are stiff (rates
    # span FIT-level 1e-9/h to reboot-level 10/h), so each balance row
    # is equilibrated to unit scale first.
    dense = balance.toarray()
    row_scale = np.abs(dense).max(axis=1)
    row_scale[row_scale == 0.0] = 1.0
    dense = dense / row_scale[:, None]
    system = np.vstack([dense, np.ones((1, n))])
    rhs = np.zeros(n + 1)
    rhs[-1] = 1.0
    pi, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    if not np.isfinite(pi).all():
        raise SolverError("SHARPE-path solve produced non-finite values")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError("SHARPE-path solve produced a zero vector")
    pi = pi / total
    residual = np.abs(balance @ pi).max()
    scale = max(exit_rates.max(), 1.0)
    if residual > 1e-6 * scale:
        raise SolverError(
            f"SHARPE-path balance residual too large: {residual:.3e}"
        )
    return dict(zip(names, pi.tolist()))


def sharpe_availability(chain: MarkovChain) -> float:
    """Steady-state availability through the independent path."""
    pi = sharpe_steady_state(chain)
    return sum(
        pi[state.name] for state in chain if state.is_up
    )
