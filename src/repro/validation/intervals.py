"""Shared confidence-interval mathematics for measured dependability.

One implementation, two consumers: the MEADEP-style batch estimator
(:mod:`repro.validation.meadep`) and the streaming telemetry rate
estimator (:mod:`repro.telemetry`) both quote intervals computed here,
so a rate fitted online and a rate fitted from the same events in batch
carry byte-identical bounds.

Everything is pure ``math`` — no scipy — so the interval math is
available wherever the standard library is, and deterministic enough to
participate in content digests.  The chi-square quantile is inverted by
bisection on the regularized lower incomplete gamma function
(series/continued-fraction evaluation, Numerical-Recipes style), which
is accurate to ~1e-12 relative — far below anything a confidence bound
cares about, and testable against closed forms (for two degrees of
freedom the quantile *is* ``-2 ln(1 - p)``).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..errors import SolverError

#: Iteration budget for the incomplete-gamma series/continued fraction.
_MAX_ITERATIONS = 500

#: Relative convergence target for the gamma evaluations.
_EPSILON = 1e-16


def regularized_gamma_p(a: float, x: float) -> float:
    """The regularized lower incomplete gamma function P(a, x).

    ``P(a, x) = gamma(a, x) / Gamma(a)``; the chi-square CDF with k
    degrees of freedom is ``P(k/2, x/2)``.
    """
    if a <= 0.0:
        raise SolverError(f"gamma shape must be positive, got {a}")
    if x < 0.0:
        raise SolverError(f"gamma argument must be non-negative, got {x}")
    if x == 0.0:
        return 0.0
    log_prefactor = -x + a * math.log(x) - math.lgamma(a)
    if x < a + 1.0:
        # Series representation converges fast left of the mean.
        term = 1.0 / a
        total = term
        denominator = a
        for _ in range(_MAX_ITERATIONS):
            denominator += 1.0
            term *= x / denominator
            total += term
            if abs(term) < abs(total) * _EPSILON:
                break
        return min(1.0, total * math.exp(log_prefactor))
    # Lentz continued fraction for Q(a, x) right of the mean.
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            break
    q = math.exp(log_prefactor) * h
    return max(0.0, 1.0 - q)


def chi2_quantile(p: float, dof: int) -> float:
    """The chi-square quantile: x with ``P(X <= x) = p`` at ``dof``.

    Inverted by bisection on :func:`regularized_gamma_p` — monotone,
    derivative-free, and deterministic.  ``p = 0`` returns 0.
    """
    if not 0.0 <= p < 1.0:
        raise SolverError(
            f"quantile probability must lie in [0, 1), got {p}"
        )
    if dof < 1:
        raise SolverError(
            f"degrees of freedom must be a positive integer, got {dof}"
        )
    if p == 0.0:
        return 0.0
    a = dof / 2.0
    low, high = 0.0, float(max(dof, 1))
    while regularized_gamma_p(a, high / 2.0) < p:
        high *= 2.0
        if high > 1e12:  # pragma: no cover - p < 1 always brackets
            break
    for _ in range(200):
        mid = 0.5 * (low + high)
        if regularized_gamma_p(a, mid / 2.0) < p:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def poisson_rate_interval(
    events: int, exposure_hours: float, confidence: float = 0.95
) -> Tuple[float, float]:
    """Exact chi-square confidence interval for a Poisson rate.

    With ``n`` events observed over exposure ``T`` the two-sided
    ``confidence`` interval for the rate is::

        [ chi2(alpha/2, 2n) / 2T ,  chi2(1 - alpha/2, 2n + 2) / 2T ]

    (Garwood's interval; the lower bound is 0 when ``n = 0``).  This is
    the MTBF interval MEADEP quotes and the per-FRU bound the telemetry
    estimator streams — both call exactly this function.
    """
    if events < 0 or int(events) != events:
        raise SolverError(
            f"event count must be a non-negative integer, got {events}"
        )
    if exposure_hours <= 0.0:
        raise SolverError(
            f"exposure must be positive, got {exposure_hours}"
        )
    if not 0.0 < confidence < 1.0:
        raise SolverError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    alpha = 1.0 - confidence
    events = int(events)
    low = (
        0.0
        if events == 0
        else chi2_quantile(alpha / 2.0, 2 * events) / (2.0 * exposure_hours)
    )
    high = (
        chi2_quantile(1.0 - alpha / 2.0, 2 * events + 2)
        / (2.0 * exposure_hours)
    )
    return low, high


def downtime_std(durations: Sequence[float]) -> float:
    """Renewal-reward standard deviation of total downtime.

    With n outages of mean duration m and duration variance s^2, the
    downtime variance is approximately ``n * (s^2 + m^2)`` — the
    normal approximation MEADEP's availability bound rests on, which
    is conservative for small logs.
    """
    n = len(durations)
    if n >= 2:
        mean = sum(durations) / n
        variance = sum((d - mean) ** 2 for d in durations) / (n - 1)
        return math.sqrt(n * (variance + mean * mean))
    if n == 1:
        return float(durations[0])
    return 0.0


def availability_halfwidth(
    durations: Sequence[float],
    window_hours: float,
    confidence_z: float = 1.96,
) -> float:
    """Half-width of the availability confidence interval.

    ``z * std(downtime) / window`` — subtract/add around the point
    availability (clamping to [0, 1]) to get the interval.
    """
    if window_hours <= 0.0:
        raise SolverError(
            f"observation window must be positive, got {window_hours}"
        )
    return confidence_z * downtime_std(durations) / window_hours
