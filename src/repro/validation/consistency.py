"""One-call model validation: the whole Section 5 protocol.

``validate_model`` runs every cross-check the reproduction builds —
independent analytic re-solution of each generated chain, matrix-free
Monte Carlo simulation, and the synthetic field-data loop with its
stationarity pre-check — and returns a structured report.  This is
what "RAScad has been validated by comparing its results with ..."
looks like as an API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.block import DiagramBlockModel
from ..core.translator import SystemSolution, translate
from ..units import availability_to_yearly_downtime_minutes
from .field_data import generate_field_log
from .meadep import laplace_trend_test
from .sharpe import sharpe_availability
from .simulator import simulate_system_availability

#: The paper's agreement band for analytic paths ("< 0.2%").
PAPER_BAND = 0.002


@dataclass(frozen=True)
class CheckResult:
    """One validation check's verdict."""

    name: str
    passed: bool
    detail: str


@dataclass(frozen=True)
class ValidationReport:
    """The combined verdict of all checks."""

    model_name: str
    availability: float
    checks: Tuple[CheckResult, ...]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def summary(self) -> str:
        lines = [
            f"validation of {self.model_name!r} "
            f"(A = {self.availability:.8f}):"
        ]
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{mark}] {check.name}: {check.detail}")
        verdict = "ALL CHECKS PASS" if self.passed else "CHECKS FAILED"
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _independent_availability(solution: SystemSolution) -> float:
    def visit(block) -> float:
        if block.chain is not None:
            return sharpe_availability(block.chain)
        value = 1.0
        for child in block.children:
            value *= visit(child)
        return value ** block.block.parameters.quantity

    product = 1.0
    for top in solution.blocks:
        product *= visit(top)
    return product


def validate_model(
    model: DiagramBlockModel,
    simulation_horizon: float = 30_000.0,
    simulation_replications: int = 40,
    field_windows: int = 8,
    field_window_hours: float = 10_950.0,
    field_min_events: int = 25,
    field_max_windows: int = 60,
    seed: int = 0,
) -> ValidationReport:
    """Run the full cross-validation protocol on one model.

    Checks, in order:

    1. **independent-analytic** — every generated chain re-solved via
       the SHARPE-like path; yearly-downtime relative error must sit
       inside the paper's 0.2 % band.
    2. **monte-carlo** — the matrix-free life-cycle simulator's 95 %
       confidence interval must contain the analytic availability.
    3. **field-loop** — synthetic site logs are *pooled* into one long
       observation period, growing past ``field_windows`` (up to
       ``field_max_windows``) until at least ``field_min_events``
       outages are observed — systems with rare, long outages need many
       window-years before the estimator has power.  The pooled MEADEP
       estimate's CI must contain the model prediction and the windows
       must pass the Laplace stationarity pre-check (allowing the 5 %
       false-positive rate).
    """
    solution = translate(model)
    checks: List[CheckResult] = []

    # 1. Independent analytic path.
    independent = _independent_availability(solution)
    mg_downtime = availability_to_yearly_downtime_minutes(
        solution.availability
    )
    independent_downtime = availability_to_yearly_downtime_minutes(
        independent
    )
    if mg_downtime > 0:
        relative = abs(mg_downtime - independent_downtime) / mg_downtime
    else:
        relative = 0.0
    checks.append(CheckResult(
        name="independent-analytic",
        passed=relative < PAPER_BAND,
        detail=(
            f"downtime {mg_downtime:.3f} vs {independent_downtime:.3f} "
            f"min/yr (rel. error {relative:.2e}, band {PAPER_BAND:.1%})"
        ),
    ))

    # 2. Monte Carlo life-cycle simulation.
    simulation = simulate_system_availability(
        solution,
        horizon=simulation_horizon,
        replications=simulation_replications,
        seed=seed,
    )
    checks.append(CheckResult(
        name="monte-carlo",
        passed=simulation.contains(solution.availability),
        detail=(
            f"simulated [{simulation.low:.6f}, {simulation.high:.6f}] "
            f"vs analytic {solution.availability:.6f}"
        ),
    ))

    # 3. Field-data loop: pool the sites into one observation period.
    from .meadep import OutageEvent, estimate_from_log

    pooled: List[OutageEvent] = []
    trend_failures = 0
    windows_used = 0
    while windows_used < field_max_windows and (
        windows_used < field_windows or len(pooled) < field_min_events
    ):
        log = generate_field_log(
            solution,
            server=f"site-{windows_used}",
            window_hours=field_window_hours,
            seed=seed + 1000 + windows_used,
        )
        trend = laplace_trend_test(log.events, log.window_hours)
        if trend.significant_at_95:
            trend_failures += 1
        offset = windows_used * field_window_hours
        pooled.extend(
            OutageEvent(
                start_hour=event.start_hour + offset,
                duration_hours=event.duration_hours,
                cause=event.cause,
            )
            for event in log.events
        )
        windows_used += 1
    estimate = estimate_from_log(
        pooled, windows_used * field_window_hours
    )
    in_ci = estimate.contains_availability(solution.availability)
    # Allow the expected 5% Laplace false-positive rate.
    trend_clean = trend_failures <= max(1, windows_used // 10)
    checks.append(CheckResult(
        name="field-loop",
        passed=in_ci and trend_clean,
        detail=(
            f"pooled {estimate.n_outages} outages over "
            f"{windows_used} windows: measured "
            f"[{estimate.availability_low:.6f}, "
            f"{estimate.availability_high:.6f}] vs predicted "
            f"{solution.availability:.6f}; "
            f"trend flags {trend_failures}/{windows_used}"
        ),
    ))

    return ValidationReport(
        model_name=model.name,
        availability=solution.availability,
        checks=tuple(checks),
    )
