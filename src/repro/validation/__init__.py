"""Validation substrates (Section 5 substitutes).

The paper validates RAScad three ways: against SHARPE, against MEADEP,
and against 15 months of field data from two E10000 servers.  None of
those resources is available, so this package builds equivalents that
exercise the same comparison loops (DESIGN.md §3):

* :mod:`.simulator` — an event-level Monte Carlo simulator of the MG
  component life-cycle rules.  It never constructs a generator matrix,
  so it is an independent oracle for the chain generator.
* :mod:`.sharpe` — an independent analytic solver path with its own
  matrix assembly and numerics (the "second tool" for E4/E5).
* :mod:`.meadep` — a MEADEP-style measurement pipeline: availability /
  MTBF / MTTR estimation from outage event logs.
* :mod:`.field_data` — a synthetic field-trace generator that plays a
  model forward in time and emits the outage log a site would record.
* :mod:`.intervals` — the shared confidence-interval math (chi-square
  Poisson-rate bounds, renewal-reward availability bounds) quoted by
  both the MEADEP estimator and the streaming telemetry estimator.
"""

from .intervals import (
    availability_halfwidth,
    chi2_quantile,
    downtime_std,
    poisson_rate_interval,
    regularized_gamma_p,
)
from .simulator import (
    simulate_block_availability,
    simulate_system_availability,
)
from .sharpe import sharpe_steady_state, sharpe_availability
from .meadep import (
    OutageEvent,
    FieldEstimate,
    estimate_from_log,
    TrendResult,
    laplace_trend_test,
)
from .field_data import (
    FieldLog,
    generate_field_log,
    DowntimeDistribution,
    downtime_distribution,
)
from .consistency import (
    CheckResult,
    ValidationReport,
    validate_model,
)

__all__ = [
    "availability_halfwidth",
    "chi2_quantile",
    "downtime_std",
    "poisson_rate_interval",
    "regularized_gamma_p",
    "simulate_block_availability",
    "simulate_system_availability",
    "sharpe_steady_state",
    "sharpe_availability",
    "OutageEvent",
    "FieldEstimate",
    "estimate_from_log",
    "TrendResult",
    "laplace_trend_test",
    "FieldLog",
    "generate_field_log",
    "DowntimeDistribution",
    "downtime_distribution",
    "CheckResult",
    "ValidationReport",
    "validate_model",
]
