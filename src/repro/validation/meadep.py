"""MEADEP-style dependability estimation from outage event logs.

MEADEP (the paper's reference [9], by the same first author) evaluates
dependability from measured data.  This module plays that role for the
field-data experiment: given the outage log a site would record, it
estimates availability, MTBF, MTTR and yearly downtime, with
normal-approximation confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..errors import SolverError
from ..units import MINUTES_PER_YEAR
from .intervals import availability_halfwidth, poisson_rate_interval


@dataclass(frozen=True)
class OutageEvent:
    """One system outage as a site log would record it."""

    start_hour: float
    duration_hours: float
    cause: str = ""

    def __post_init__(self) -> None:
        if self.start_hour < 0:
            raise SolverError(
                f"outage start must be non-negative, got {self.start_hour}"
            )
        if self.duration_hours <= 0:
            raise SolverError(
                f"outage duration must be positive, got {self.duration_hours}"
            )

    @property
    def end_hour(self) -> float:
        return self.start_hour + self.duration_hours


@dataclass(frozen=True)
class FieldEstimate:
    """Point estimates and confidence bounds from an outage log."""

    window_hours: float
    n_outages: int
    total_downtime_hours: float
    availability: float
    availability_low: float
    availability_high: float
    mtbf_hours: float
    mttr_hours: float
    yearly_downtime_minutes: float
    #: Chi-square (Garwood) bounds on the MTBF, from the shared
    #: interval math in :mod:`repro.validation.intervals` — the same
    #: implementation the streaming telemetry estimator quotes.
    mtbf_low_hours: float = 0.0
    mtbf_high_hours: float = float("inf")

    def contains_availability(self, value: float) -> bool:
        return self.availability_low <= value <= self.availability_high

    def contains_mtbf(self, value: float) -> bool:
        return self.mtbf_low_hours <= value <= self.mtbf_high_hours


def estimate_from_log(
    events: Sequence[OutageEvent],
    window_hours: float,
    confidence_z: float = 1.96,
) -> FieldEstimate:
    """Estimate dependability measures from an outage log.

    Availability is (window - downtime) / window.  The confidence bound
    treats the downtime as a compound process: with n outages of mean
    duration m and duration variance s^2, the downtime variance is
    approximately ``n * (s^2 + m^2)`` (renewal-reward normal
    approximation), which is conservative for small logs.
    """
    if window_hours <= 0:
        raise SolverError(
            f"observation window must be positive, got {window_hours}"
        )
    ordered = sorted(events, key=lambda event: event.start_hour)
    for previous, current in zip(ordered, ordered[1:]):
        if current.start_hour < previous.end_hour - 1e-9:
            raise SolverError(
                "outage log has overlapping events "
                f"({previous} and {current}); merge them first"
            )
    durations = [event.duration_hours for event in ordered]
    for event in ordered:
        if event.end_hour > window_hours + 1e-9:
            raise SolverError(
                f"outage {event} extends past the observation window"
            )
    downtime = sum(durations)
    n = len(durations)
    availability = max(0.0, 1.0 - downtime / window_hours)
    half_width = availability_halfwidth(
        durations, window_hours, confidence_z
    )

    uptime = window_hours - downtime
    mtbf = uptime / n if n > 0 else float("inf")
    mttr = downtime / n if n > 0 else 0.0
    mtbf_low, mtbf_high = 0.0, float("inf")
    if uptime > 0:
        rate_low, rate_high = poisson_rate_interval(n, uptime)
        mtbf_low = 1.0 / rate_high if rate_high > 0 else 0.0
        mtbf_high = 1.0 / rate_low if rate_low > 0 else float("inf")
    return FieldEstimate(
        window_hours=window_hours,
        n_outages=n,
        total_downtime_hours=downtime,
        availability=availability,
        availability_low=max(0.0, availability - half_width),
        availability_high=min(1.0, availability + half_width),
        mtbf_hours=mtbf,
        mttr_hours=mttr,
        yearly_downtime_minutes=(1.0 - availability) * MINUTES_PER_YEAR,
        mtbf_low_hours=mtbf_low,
        mtbf_high_hours=mtbf_high,
    )


@dataclass(frozen=True)
class TrendResult:
    """Laplace trend test result on an outage log.

    ``statistic`` is asymptotically N(0,1) under the null hypothesis of
    a homogeneous Poisson failure process.  Significantly negative
    means reliability *growth* (failures thinning out, e.g. burn-in
    completing); significantly positive means deterioration (wear-out).
    """

    n_events: int
    statistic: float
    significant_at_95: bool

    @property
    def interpretation(self) -> str:
        if not self.significant_at_95:
            return "no significant trend (homogeneous failure process)"
        if self.statistic < 0:
            return "reliability growth (failures thinning out)"
        return "reliability deterioration (failures accelerating)"


def laplace_trend_test(
    events: Sequence[OutageEvent], window_hours: float
) -> TrendResult:
    """Laplace test for trend in the failure arrival process.

    The statistic is ``(mean(t_i)/T - 1/2) * sqrt(12 n)`` over the n
    outage start times in an observation window of length T; |u| > 1.96
    rejects homogeneity at the 95% level.  MEADEP applies exactly this
    test before fitting a constant failure rate — a trending process
    invalidates a stationary availability comparison.
    """
    if window_hours <= 0:
        raise SolverError(
            f"observation window must be positive, got {window_hours}"
        )
    times = sorted(event.start_hour for event in events)
    n = len(times)
    if n == 0:
        return TrendResult(0, 0.0, False)
    for t in times:
        if t > window_hours:
            raise SolverError(
                f"outage at {t} h lies past the {window_hours} h window"
            )
    mean_fraction = sum(times) / (n * window_hours)
    statistic = (mean_fraction - 0.5) * math.sqrt(12.0 * n)
    return TrendResult(n, statistic, abs(statistic) > 1.96)


def merge_intervals(
    intervals: Sequence[Tuple[float, float, str]]
) -> List[OutageEvent]:
    """Merge possibly-overlapping (start, end, cause) down intervals.

    Overlaps happen when independent blocks are down simultaneously;
    the merged event's cause concatenates the contributors.
    """
    if not intervals:
        return []
    ordered = sorted(intervals, key=lambda item: item[0])
    merged: List[Tuple[float, float, List[str]]] = []
    for start, end, cause in ordered:
        if end <= start:
            raise SolverError(
                f"empty down interval ({start}, {end}, {cause!r})"
            )
        if merged and start <= merged[-1][1] + 1e-12:
            previous = merged[-1]
            merged[-1] = (
                previous[0],
                max(previous[1], end),
                previous[2] + [cause],
            )
        else:
            merged.append((start, end, [cause]))
    return [
        OutageEvent(
            start_hour=start,
            duration_hours=end - start,
            cause="+".join(dict.fromkeys(causes)),
        )
        for start, end, causes in merged
    ]
