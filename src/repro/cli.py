"""Command-line interface — the tool-access substitute for RAScad's web UI.

Usage (installed as ``rascad``, or ``python -m repro``):

    rascad solve model.json            # system measures
    rascad tree model.json             # the diagram/block tree
    rascad report model.json           # full markdown RAS report
    rascad budget model.json           # downtime budget, worst first
    rascad dot model.json "Sys/Block"  # Graphviz dot of one chain
    rascad sweep model.json "Sys/Block" mtbf_hours 1e5 2e5 5e5
    rascad validate model.json         # Monte Carlo cross-check
    rascad parts                       # the builtin component catalog
    rascad stats [--json]              # last run's engine counters
    rascad serve --port 8080           # the HTTP model-serving API
    rascad jobs submit model.json --kind sweep --field mtbf_hours \\
        --block "Sys/Block" --values 1e5:1e6:50   # durable batch job
    rascad jobs worker --jobs 4        # run queued jobs, resumably
    rascad trace tail traces/          # recent exported spans
    rascad trace summary traces/       # per-span latency rollup
    rascad cluster coordinator --worker http://h1:8081 \\
        --worker http://h2:8081        # shard sweeps over a fleet
    rascad cluster worker --coordinator http://h0:8080  # join a fleet
    rascad cluster status http://h0:8080   # fleet + workload view
    rascad sweep model.json "Sys/Block" mtbf_hours 1e5:1e6:200 \\
        --cluster http://h0:8080       # run the sweep on the fleet
    rascad models publish model.json --name myserver --tag prod
    rascad models list                 # registered models and tags
    rascad models show myserver@prod   # one version: lineage, numbers
    rascad models diff myserver@prod myserver@latest
    rascad models check model.json --name myserver --tag prod
    rascad models tag myserver prod a1b2c3d4   # move a tag
    rascad models rollback myserver prod       # undo the last move
    rascad importance model.json       # Birnbaum importance ranking
    rascad study run study.json        # design-space Pareto search
    rascad study status                # recorded studies
    rascad study front study-ab12..    # a study's cost/downtime front
    rascad study publish study-ab12.. --tag prod  # winner -> registry
    rascad events replay model.json --seed 3 \\
        --shift "Sys/Disk=0.01" --out trace.json  # synthetic field trace
    rascad events ingest trace.json --url http://h0:8080  # batch ingest
    rascad calibrate run model.json --events trace.json   # queued job
    rascad calibrate status            # fitted rates, stored proposal
    rascad calibrate propose model.json   # drift -> re-fitted proposal
    rascad calibrate publish --name myserver --tag prod   # gated

Specs are the JSON engineering-language format of :mod:`repro.spec`;
part numbers resolve against the builtin catalog unless ``--database``
points at a saved catalog file.

``solve``, ``sweep`` and ``validate`` run on the evaluation engine
(:mod:`repro.engine`): ``--jobs`` fans work out over processes,
``--cache-dir`` enables the persistent solve cache (default
``~/.cache/rascad``), ``--no-cache`` disables caching for the run.

``serve`` starts the :mod:`repro.service` HTTP API on the same engine
flags, so the server and CLI runs share one persistent cache.

Every engine-backed command also takes the shared observability flags
(:mod:`repro.obs`): ``--trace``/``--trace-dir`` enable tracing (the
latter exports spans to ``DIR/spans.jsonl`` for ``rascad trace``),
``--trace-detail`` adds per-block solve spans, ``--log-level`` and
``--log-json`` control structured logging.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .analysis import downtime_budget, expand_values
from .core import compute_measures, translate
from .database import PartsDatabase, builtin_database
from .engine import Engine, default_cache_dir, load_stats
from .errors import RascadError
from .render import chain_to_dot, model_report, render_model_tree
from .spec import load_spec
from .units import nines


def _load(args: argparse.Namespace):
    database = (
        PartsDatabase.load(args.database)
        if args.database
        else builtin_database()
    )
    return load_spec(args.spec, database=database)


def _configure_obs(args: argparse.Namespace) -> None:
    """Install logging/tracing from the shared observability flags."""
    from .obs import configure_logging, configure_tracing

    configure_logging(
        level=getattr(args, "log_level", "info"),
        json_output=getattr(args, "log_json", False),
    )
    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir is not None or getattr(args, "trace", False):
        configure_tracing(
            enabled=True,
            trace_dir=trace_dir,
            detail=getattr(args, "trace_detail", False),
        )


def _engine_from_args(args: argparse.Namespace) -> Engine:
    """Build the evaluation engine an engine-backed command runs on."""
    return Engine(
        jobs=getattr(args, "jobs", 1),
        cache=not getattr(args, "no_cache", False),
        cache_dir=getattr(args, "cache_dir", None),
    )


def _solver_options_from_args(args: argparse.Namespace):
    """The solver configuration selected by the shared solver flags.

    CLI flags take precedence over every other layer (request
    payloads, job params, defaults); unset flags fall back to the
    canonical defaults, so plain runs stay bit-identical to the
    pre-registry dense direct solve.
    """
    from .num import SolverOptions

    changes = {}
    steady = getattr(args, "steady_method", None)
    if steady is not None:
        changes["steady_method"] = steady
    transient = getattr(args, "transient_method", None)
    if transient is not None:
        changes["transient_method"] = transient
    representation = getattr(args, "representation", None)
    if representation is not None:
        changes["representation"] = representation
    return SolverOptions(**changes)


def _persist_stats(engine: Engine, args: argparse.Namespace) -> None:
    """Best-effort snapshot persistence for a later ``rascad stats``."""
    directory = getattr(args, "cache_dir", None) or default_cache_dir()
    try:
        engine.save_stats(directory)
    except OSError:
        pass


def _cmd_solve(args: argparse.Namespace) -> int:
    _configure_obs(args)
    model = _load(args)
    engine = _engine_from_args(args)
    solution = engine.solve(model, _solver_options_from_args(args))
    _persist_stats(engine, args)
    measures = compute_measures(
        solution, mission_time_hours=args.mission
    )
    print(f"model                     : {model.name}")
    print(f"availability              : {measures.availability:.8f} "
          f"({nines(measures.availability):.2f} nines)")
    print(f"yearly downtime           : "
          f"{measures.yearly_downtime_minutes:.2f} minutes")
    print(f"interruptions per year    : {measures.failures_per_year:.3f}")
    print(f"mean downtime per event   : "
          f"{measures.mean_downtime_hours * 60:.1f} minutes")
    print(f"mission time T            : {measures.mission_time_hours:.0f} h")
    print(f"interval availability     : {measures.interval_availability:.8f}")
    print(f"reliability at T          : {measures.reliability_at_mission:.6f}")
    print(f"MTTF                      : {measures.mttf_hours:.0f} h")
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    print(render_model_tree(_load(args)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(model_report(_load(args)))
    return 0


def _cmd_budget(args: argparse.Namespace) -> int:
    solution = translate(_load(args))
    print(f"{'min/yr':>10}  {'share':>6}  block")
    for row in downtime_budget(solution):
        print(f"{row.yearly_downtime_minutes:>10.3f}  "
              f"{row.share:>6.1%}  {row.path}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    solution = translate(_load(args))
    block = solution.block(args.block)
    if block.chain is None:
        raise RascadError(
            f"block {args.block!r} is a pass-through RBD block; "
            "pick one of its chain-backed children"
        )
    print(chain_to_dot(block.chain))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    _configure_obs(args)
    values = expand_values(args.values)
    if args.cluster:
        return _cluster_sweep(args, values)
    model = _load(args)
    engine = _engine_from_args(args)
    points = engine.sweep_block_field(
        model, args.block, args.field, values,
        method=_solver_options_from_args(args),
    )
    _persist_stats(engine, args)
    _print_sweep_points(
        (point.value, point.availability, point.yearly_downtime_minutes)
        for point in points
    )
    return 0


def _print_sweep_points(points) -> None:
    print(f"{'value':>12}  {'availability':>13}  {'min/yr':>10}")
    for value, availability, downtime in points:
        print(f"{value:>12g}  {availability:>13.8f}  {downtime:>10.3f}")


def _cluster_sweep(args: argparse.Namespace, values: List[float]) -> int:
    """Run the sweep through a cluster coordinator instead of locally."""
    import json
    from pathlib import Path

    from .cluster import CoordinatorClient

    spec_doc = json.loads(Path(args.spec).read_text())
    payload: dict = {
        "spec": spec_doc,
        "block": args.block,
        "field": args.field,
        "values": values,
    }
    solver = _solver_options_from_args(args).to_dict()
    if solver:
        payload["solver"] = solver
    client = CoordinatorClient(args.cluster)
    merged = client.sweep(payload, timeout=args.cluster_timeout)
    _print_sweep_points(
        (
            point["value"],
            point["availability"],
            point["yearly_downtime_minutes"],
        )
        for point in merged["points"]
    )
    digest = merged.get("result_digest")
    if digest:
        print(f"result digest: {digest}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    _configure_obs(args)
    model = _load(args)
    if args.deep:
        from .validation import validate_model

        report = validate_model(
            model,
            simulation_horizon=args.horizon,
            simulation_replications=args.replications,
            seed=args.seed,
        )
        print(report.summary())
        return 0 if report.passed else 1
    engine = _engine_from_args(args)
    solution = engine.solve(model, _solver_options_from_args(args))
    result = engine.simulate_system(
        solution,
        horizon=args.horizon,
        replications=args.replications,
        seed=args.seed,
    )
    _persist_stats(engine, args)
    agree = result.contains(solution.availability)
    print(f"analytic availability : {solution.availability:.6f}")
    print(f"simulated             : {result.mean:.6f} "
          f"[{result.low:.6f}, {result.high:.6f}] "
          f"({result.replications} reps x {args.horizon:.0f} h)")
    print(f"agreement             : {'PASS' if agree else 'FAIL'}")
    return 0 if agree else 1


def _cmd_requirement(args: argparse.Namespace) -> int:
    from .analysis import check_requirement

    model = _load(args)
    check = check_requirement(
        model,
        target_availability=args.availability,
        target_nines=args.nines,
        max_downtime_minutes=args.downtime,
    )
    print(f"target   : {check.target_availability:.8f} "
          f"({check.target_nines:.2f} nines)")
    print(f"achieved : {check.achieved_availability:.8f} "
          f"({check.achieved_nines:.2f} nines)")
    print(f"margin   : {check.margin_minutes:+.2f} min/yr downtime budget")
    print(f"verdict  : {'MEETS' if check.meets else 'MISSES'} requirement")
    return 0 if check.meets else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import comparison_table

    database = (
        PartsDatabase.load(args.database)
        if args.database
        else builtin_database()
    )
    candidates = []
    for path in args.specs:
        model = load_spec(path, database=database)
        candidates.append((model.name, model))
    print(comparison_table(candidates))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .spec import diff_impact, diff_models, format_diff

    database = (
        PartsDatabase.load(args.database)
        if args.database
        else builtin_database()
    )
    old = load_spec(args.old, database=database)
    new = load_spec(args.new, database=database)
    entries = diff_models(old, new)
    print(format_diff(entries))
    if entries:
        impact = diff_impact(old, new)
        delta = impact["downtime_delta_minutes"]
        print()
        print(f"availability: {impact['old_availability']:.8f} -> "
              f"{impact['new_availability']:.8f} "
              f"({delta:+.2f} min/yr downtime)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .engine import SolveCache, metrics_payload

    directory = args.cache_dir or default_cache_dir()
    stats = load_stats(directory)
    disk_usage = SolveCache(cache_dir=directory).disk_usage()
    if args.json:
        # The same serialization the service's GET /metrics emits.
        print(json.dumps(
            metrics_payload(stats, disk_usage=disk_usage),
            indent=2, sort_keys=True,
        ))
        return 0
    if stats is None:
        print(f"no engine stats recorded under {directory}")
        print("run an engine-backed command (solve, sweep, validate) first")
        return 0
    print(f"engine stats ({directory})")
    print(stats.format())
    entries, size = disk_usage
    print(f"persistent cache     : {entries} entries, {size} bytes")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        max_queue=args.max_queue,
        request_timeout=args.request_timeout,
        warm_start=args.warm_start,
        jobs_db=args.jobs_db,
        trace=args.trace,
        trace_dir=args.trace_dir,
        trace_sample=args.trace_sample,
        trace_detail=args.trace_detail,
        log_level=args.log_level,
        log_json=args.log_json,
        default_solver=_solver_options_from_args(args),
        registry_db=args.registry_db,
        registry_threshold=args.registry_threshold,
        registry_seed=not args.no_registry_seed,
        telemetry_max_pending=args.telemetry_max_pending,
        telemetry_max_batch=args.telemetry_max_batch,
        telemetry_window_hours=args.telemetry_window,
    )
    return serve(config)


def _cmd_trace_tail(args: argparse.Namespace) -> int:
    import json

    from .obs import read_spans

    spans = read_spans(
        args.trace_dir, limit=args.limit, trace_id=args.trace_id
    )
    if args.name:
        spans = [s for s in spans if s.get("name") == args.name]
    if args.json:
        for span in spans:
            print(json.dumps(span, sort_keys=True))
        return 0
    if not spans:
        print(f"no spans under {args.trace_dir}")
        return 0
    print(f"{'trace':<8} {'span':<8} {'parent':<8} "
          f"{'name':<24} {'ms':>10}  status")
    for span in spans:
        duration_ms = float(span.get("duration", 0.0) or 0.0) * 1000.0
        parent = span.get("parent_id") or "-"
        print(
            f"{str(span.get('trace_id', ''))[:8]:<8} "
            f"{str(span.get('span_id', ''))[:8]:<8} "
            f"{str(parent)[:8]:<8} "
            f"{str(span.get('name', '')):<24} "
            f"{duration_ms:>10.3f}  {span.get('status', 'ok')}"
        )
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from .obs import Histogram, read_spans

    spans = read_spans(args.trace_dir)
    if not spans:
        print(f"no spans under {args.trace_dir}")
        return 0
    groups: dict = {}
    for span in spans:
        name = str(span.get("name", "?"))
        entry = groups.setdefault(name, [Histogram(), 0])
        duration = span.get("duration")
        if isinstance(duration, (int, float)):
            entry[0].observe(float(duration))
        if span.get("status") == "error":
            entry[1] += 1
    print(f"{'name':<24} {'count':>7} {'total s':>9} "
          f"{'mean ms':>9} {'p95 ms':>9} {'errors':>7}")
    for name in sorted(groups):
        histogram, errors = groups[name]
        print(
            f"{name:<24} {histogram.count:>7} {histogram.sum:>9.3f} "
            f"{histogram.mean * 1000:>9.3f} "
            f"{histogram.quantile(0.95) * 1000:>9.3f} {errors:>7}"
        )
    traces = len({span.get("trace_id") for span in spans})
    print(f"{len(spans)} spans across {traces} trace(s)")
    return 0


def _jobs_open(args: argparse.Namespace):
    """The (store, checkpointer) pair the jobs subcommands share."""
    from .database import builtin_database
    from .jobs import open_store

    database = (
        PartsDatabase.load(args.database)
        if args.database
        else builtin_database()
    )
    return open_store(
        db_path=getattr(args, "db", None),
        cache_dir=getattr(args, "cache_dir", None),
        database=database,
    )


def _print_job(record, verbose: bool = False) -> None:
    import json

    print(f"id        : {record.id}")
    print(f"kind      : {record.kind}")
    print(f"state     : {record.state}")
    print(f"attempts  : {record.attempts}/{record.max_attempts}")
    if record.worker:
        print(f"worker    : {record.worker}")
    if record.error:
        print(f"error     : {record.error}")
    if record.result is not None:
        print("result    :")
        print(json.dumps(record.result, indent=2, sort_keys=True))
    elif verbose:
        print("result    : (none yet)")


def _cmd_jobs_submit(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .jobs import JobSpec

    spec_doc = json.loads(Path(args.spec).read_text())
    params: dict = {}
    if args.params:
        params.update(json.loads(Path(args.params).read_text()))
    if args.method:
        params["method"] = args.method
    if args.kind == "sweep":
        if args.field:
            params["field"] = args.field
        if args.block:
            params["block"] = args.block
        if args.values:
            params["values"] = expand_values(args.values)
    elif args.kind == "validate":
        if args.replications is not None:
            params["replications"] = args.replications
        if args.horizon is not None:
            params["horizon"] = args.horizon
        if args.seed is not None:
            params["seed"] = args.seed
    job = JobSpec(
        kind=args.kind,
        spec=spec_doc,
        params=params,
        priority=args.priority,
        max_attempts=args.max_attempts,
    )
    store, _ = _jobs_open(args)
    record, created = store.submit(job)
    verb = "submitted" if created else "already queued (deduplicated)"
    print(f"{record.id} {verb}")
    print(f"state: {record.state}")
    return 0


def _cmd_jobs_status(args: argparse.Namespace) -> int:
    store, _ = _jobs_open(args)
    _print_job(store.get(args.id), verbose=True)
    return 0


def _cmd_jobs_list(args: argparse.Namespace) -> int:
    store, _ = _jobs_open(args)
    records = store.list_jobs(
        state=args.state, kind=args.kind, limit=args.limit
    )
    if not records:
        print("no jobs")
        return 0
    print(f"{'id':<40} {'kind':<12} {'state':<10} {'att':>3}  error")
    for record in records:
        error = (record.error or "")[:40]
        print(f"{record.id:<40} {record.kind:<12} {record.state:<10} "
              f"{record.attempts:>3}  {error}")
    return 0


def _cmd_jobs_cancel(args: argparse.Namespace) -> int:
    store, _ = _jobs_open(args)
    record = store.cancel(args.id)
    print(f"{record.id} -> {record.state}"
          + (" (cancellation requested)"
             if record.state == "running" else ""))
    return 0


def _cmd_jobs_worker(args: argparse.Namespace) -> int:
    from .jobs import Worker, WorkerConfig

    _configure_obs(args)
    store, checkpointer = _jobs_open(args)
    engine = _engine_from_args(args)
    worker = Worker(
        store,
        engine,
        checkpointer,
        WorkerConfig(
            poll_interval=args.poll,
            lease_timeout=args.lease_timeout,
            checkpoint_every=args.checkpoint_every,
            once=args.once,
            max_jobs=args.max_jobs,
        ),
    )
    worker.install_signal_handlers()
    print(f"worker {worker.config.name} polling {store.path}", flush=True)
    processed = worker.run()
    _persist_stats(engine, args)
    print(f"worker exiting after {processed} job(s)", flush=True)
    return 0


def _cluster_service_config(args: argparse.Namespace):
    """The shared ``ServiceConfig`` of the cluster subcommands."""
    from .service import ServiceConfig

    return ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        jobs_db=getattr(args, "jobs_db", None),
        trace=args.trace,
        trace_dir=args.trace_dir,
        trace_detail=args.trace_detail,
        log_level=args.log_level,
        log_json=args.log_json,
        default_solver=_solver_options_from_args(args),
    )


def _cmd_cluster_coordinator(args: argparse.Namespace) -> int:
    import dataclasses

    from .service import serve

    config = dataclasses.replace(
        _cluster_service_config(args),
        cluster=True,
        cluster_workers=tuple(args.worker or ()),
        cluster_shard_size=args.shard_size,
        cluster_lease_timeout=args.lease_timeout,
        cluster_steal_after=args.steal_after,
        cluster_max_shard_attempts=args.max_shard_attempts,
        cluster_call_timeout=args.call_timeout,
        cluster_fanout_threshold=args.fanout_threshold,
    )
    return serve(config)


def _cmd_cluster_worker(args: argparse.Namespace) -> int:
    import asyncio

    from .cluster import HeartbeatPusher
    from .obs import configure_logging
    from .service import Server

    config = _cluster_service_config(args)
    configure_logging(
        level=config.log_level, json_output=config.log_json
    )

    async def run() -> int:
        server = Server(config)
        host, port = await server.start()
        server.install_signal_handlers()
        advertise = args.advertise or f"http://{host}:{port}"
        pusher = HeartbeatPusher(
            args.coordinator, advertise,
            interval=args.heartbeat_interval,
        )
        pusher.start()
        print(
            f"rascad cluster worker {advertise} registering with "
            f"{args.coordinator}",
            flush=True,
        )
        try:
            await server.serve_until_shutdown()
        finally:
            pusher.stop()
        print("rascad cluster worker drained and stopped", flush=True)
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - signal path
        return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    import json

    from .cluster import CoordinatorClient

    status = CoordinatorClient(args.coordinator).status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    totals = status.get("totals", {})
    print(f"coordinator {args.coordinator}")
    print(f"jobs completed   : {totals.get('jobs_completed', 0)}")
    print(f"shards completed : {totals.get('shards_completed', 0)}")
    print(f"shards stolen    : {totals.get('shards_stolen', 0)}")
    print(f"shards retried   : {totals.get('shards_retried', 0)}")
    workers = status.get("workers", [])
    if not workers:
        print("no workers registered")
        return 0
    print(f"{'worker':<24} {'state':<14} {'done':>6} {'fail':>6} "
          f"{'stolen':>7} {'in flight':>10}")
    for row in workers:
        print(f"{row.get('id', '?'):<24} {row.get('state', '?'):<14} "
              f"{row.get('shards_done', 0):>6} "
              f"{row.get('shards_failed', 0):>6} "
              f"{row.get('shards_stolen', 0):>7} "
              f"{row.get('in_flight', 0):>10}")
    active = status.get("active", [])
    for entry in active:
        print(f"active: {entry.get('kind')} {entry.get('workload')} "
              f"{entry.get('done')}/{entry.get('shards')} shards")
    return 0


def _registry_open(args: argparse.Namespace, engine=None):
    """The registry a ``rascad models`` subcommand works against."""
    from .registry import open_registry

    database = (
        PartsDatabase.load(args.database)
        if args.database
        else builtin_database()
    )
    return open_registry(
        db_path=getattr(args, "registry_db", None),
        cache_dir=getattr(args, "cache_dir", None),
        engine=engine,
        database=database,
    )


def _model_slug(name: str) -> str:
    """A legal registry name derived from a model's display name."""
    import re as _re

    slug = _re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-._").lower()
    return slug[:64] or "model"


def _print_version_record(record, heading: str = "version") -> None:
    evaluation = record.evaluation or {}
    print(f"{heading}   : {record.name}@{record.digest[:12]}")
    print(f"digest    : {record.digest}")
    parent = record.parent_digest
    print(f"parent    : {parent[:12] if parent else '(root)'}")
    if evaluation:
        print(f"availability : {evaluation['availability']:.8f}")
        print(f"downtime     : "
              f"{evaluation['yearly_downtime_minutes']:.3f} min/yr")
        print(f"MTTF         : {evaluation['mttf_hours']:.0f} h")
    if record.diff:
        print("changes vs parent:")
        for entry in record.diff:
            if entry["kind"] == "changed":
                print(f"  ~ {entry['path']}: {entry['field']} "
                      f"{entry['old']!r} -> {entry['new']!r}")
            else:
                sign = "+" if entry["kind"] == "added" else "-"
                print(f"  {sign} {entry['path']}")


def _cmd_models_publish(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .spec import parse_spec

    _configure_obs(args)
    engine = _engine_from_args(args)
    registry = _registry_open(args, engine=engine)
    try:
        spec_doc = json.loads(Path(args.spec).read_text())
        name = args.name
        if name is None:
            model = parse_spec(spec_doc, database=registry.database)
            name = _model_slug(model.name)
        result = registry.publish(
            spec_doc, name,
            description=args.description,
            tag=args.tag,
            force=args.force,
            threshold=args.threshold,
        )
    finally:
        _persist_stats(engine, args)
        registry.close()
    verb = "published" if result.created else "already published"
    print(f"{verb} {name}@{result.version.digest[:12]}")
    tags = ["latest"] + ([args.tag] if args.tag else [])
    print(f"tags      : {', '.join(dict.fromkeys(tags))}")
    evaluation = result.version.evaluation or {}
    if evaluation:
        print(f"availability : {evaluation['availability']:.8f}")
        print(f"downtime     : "
              f"{evaluation['yearly_downtime_minutes']:.3f} min/yr")
    gate = result.gate
    if gate is not None:
        delta = gate["downtime_delta_minutes"]
        print(f"gate      : {delta:+.3f} min/yr vs {gate['tag']} "
              f"baseline (threshold {gate['threshold_minutes']:g})"
              + (" [FORCED]" if gate.get("forced") else ""))
    return 0


def _cmd_models_list(args: argparse.Namespace) -> int:
    registry = _registry_open(args)
    try:
        rows = registry.list_models()
    finally:
        registry.close()
    if not rows:
        print("no models registered")
        return 0
    print(f"{'name':<20} {'vers':>4}  {'tags':<32} description")
    for row in rows:
        tags = ", ".join(
            f"{tag}={digest[:8]}"
            for tag, digest in sorted(row["tags"].items())
        )
        print(f"{row['name']:<20} {row['versions']:>4}  {tags:<32} "
              f"{row['description']}")
    return 0


def _cmd_models_show(args: argparse.Namespace) -> int:
    from .registry import parse_ref

    registry = _registry_open(args)
    try:
        name, selector = parse_ref(args.ref)
        if selector is None:
            detail = registry.model_detail(name)
            print(f"model     : {detail['name']}")
            if detail["description"]:
                print(f"about     : {detail['description']}")
            tags = detail["tags"]
            for tag in sorted(tags):
                print(f"tag       : {tag} -> {tags[tag][:12]}")
            print(f"{'digest':<14} {'parent':<14} {'min/yr':>10}")
            for version in detail["versions"]:
                evaluation = version["evaluation"] or {}
                downtime = evaluation.get("yearly_downtime_minutes")
                rendered = (
                    "-" if downtime is None else f"{downtime:.3f}"
                )
                parent = version["parent_digest"]
                parent_text = parent[:12] if parent else "(root)"
                print(f"{version['digest'][:12]:<14} "
                      f"{parent_text:<14} {rendered:>10}")
            return 0
        record = registry.resolve(args.ref)
        _print_version_record(record)
        return 0
    finally:
        registry.close()


def _cmd_models_diff(args: argparse.Namespace) -> int:
    from .spec import diff_models, format_diff, parse_spec

    registry = _registry_open(args)
    try:
        old = registry.resolve(args.old)
        new = registry.resolve(args.new)
        old_model = parse_spec(old.spec, database=registry.database)
        new_model = parse_spec(new.spec, database=registry.database)
    finally:
        registry.close()
    print(f"--- {args.old} ({old.digest[:12]})")
    print(f"+++ {args.new} ({new.digest[:12]})")
    print(format_diff(diff_models(old_model, new_model)))
    return 0


def _cmd_models_tag(args: argparse.Namespace) -> int:
    registry = _registry_open(args)
    try:
        previous, digest = registry.move_tag(
            args.name, args.tag, args.selector
        )
    finally:
        registry.close()
    was = previous[:12] if previous else "(unset)"
    print(f"{args.name}@{args.tag}: {was} -> {digest[:12]}")
    return 0


def _cmd_models_rollback(args: argparse.Namespace) -> int:
    registry = _registry_open(args)
    try:
        current, previous = registry.rollback(args.name, args.tag)
    finally:
        registry.close()
    print(f"{args.name}@{args.tag}: rolled back "
          f"{current[:12]} -> {previous[:12]}")
    return 0


def _cmd_models_check(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    _configure_obs(args)
    engine = _engine_from_args(args)
    registry = _registry_open(args, engine=engine)
    try:
        spec_doc = json.loads(Path(args.spec).read_text())
        verdict = registry.check(
            spec_doc, args.name, args.tag, threshold=args.threshold
        )
    finally:
        _persist_stats(engine, args)
        registry.close()
    print(f"candidate : {verdict['candidate_digest'][:12]}")
    baseline = verdict["baseline_digest"]
    print(f"baseline  : {baseline[:12] if baseline else '(none)'}")
    delta = verdict["downtime_delta_minutes"]
    if delta is not None:
        print(f"delta     : {delta:+.3f} min/yr "
              f"(threshold {verdict['threshold_minutes']:g})")
    rejected = bool(verdict["would_reject"])
    print(f"verdict   : {'REJECT' if rejected else 'PASS'}")
    return 1 if rejected else 0


def _cmd_importance(args: argparse.Namespace) -> int:
    from .analysis import birnbaum_importance

    _configure_obs(args)
    model = _load(args)
    engine = _engine_from_args(args)
    solution = engine.solve(model, _solver_options_from_args(args))
    _persist_stats(engine, args)
    print(f"model        : {model.name}")
    print(f"availability : {solution.availability:.8f}")
    print()
    print(f"{'birnbaum':>10}  {'avail':>10}  {'potential min/yr':>16}  "
          "block")
    for row in birnbaum_importance(solution):
        print(f"{row.birnbaum:>10.6f}  {row.availability:>10.6f}  "
              f"{row.potential_downtime_minutes:>16.3f}  {row.path}")
    return 0


def _study_store_open(args: argparse.Namespace):
    """The study store a ``rascad study`` subcommand works against.

    Shares the server's layout: ``STUDIES_DIR`` explicitly, else
    ``CACHE_DIR/studies``, falling back to the default cache
    directory — so CLI runs and a ``--cache-dir`` server see the same
    records.
    """
    from pathlib import Path

    from .studies import StudyStore

    directory = getattr(args, "studies_dir", None)
    if directory is None:
        base = getattr(args, "cache_dir", None) or default_cache_dir()
        directory = Path(base) / "studies"
    return StudyStore(directory)


def _study_parse(args: argparse.Namespace, document):
    """Parse a study document against the selected parts catalog."""
    from .studies import parse_study

    database = (
        PartsDatabase.load(args.database)
        if args.database
        else builtin_database()
    )
    return parse_study(document, database=database), database


def _cmd_study_run(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .render import render_front_table
    from .studies import run_study, study_digest

    _configure_obs(args)
    document = json.loads(Path(args.study).read_text())
    if args.base is not None:
        document["base"] = json.loads(Path(args.base).read_text())
    study, database = _study_parse(args, document)
    study_id = study_digest(study, database=database)
    store = _study_store_open(args)
    record, created = store.submit(study_id, study.to_dict())
    if not created and record.get("state") == "succeeded" and not args.rerun:
        print(f"{study_id} already solved (--rerun to force)")
        print()
        print(render_front_table(record["result"]))
        return 0
    engine = _engine_from_args(args)
    try:
        result = run_study(study, engine=engine, database=database)
    except RascadError as error:
        store.fail(study_id, f"{type(error).__name__}: {error}")
        raise
    finally:
        _persist_stats(engine, args)
    store.succeed(study_id, result)
    print(f"study     : {study_id}")
    print(f"digest    : {result['result_digest']}")
    print()
    print(render_front_table(result))
    return 0


def _cmd_study_status(args: argparse.Namespace) -> int:
    store = _study_store_open(args)
    if args.id is not None:
        record = store.get(args.id)
        print(f"study    : {record['study_id']}")
        print(f"name     : {record.get('name')}")
        print(f"strategy : {record.get('strategy')}")
        print(f"state    : {record.get('state')}")
        if record.get("error"):
            print(f"error    : {record['error']}")
        result = record.get("result")
        if isinstance(result, dict):
            print(f"evaluated: {result.get('evaluated')} "
                  f"({result.get('feasible')} feasible)")
            print(f"front    : {result.get('front')}")
            print(f"winner   : {result.get('winner')}")
            print(f"digest   : {result.get('result_digest')}")
        return 0
    summaries = store.list()
    if not summaries:
        print("no studies recorded")
        return 0
    print(f"{'study id':<40} {'strategy':<10} {'state':<10} "
          f"{'eval':>5} {'front':>5}  name")
    for row in summaries:
        evaluated = row["evaluated"] if row["evaluated"] is not None else "-"
        front = row["front_size"] if row["front_size"] is not None else "-"
        print(f"{row['study_id']:<40} {row['strategy']:<10} "
              f"{row['state']:<10} {evaluated:>5} {front:>5}  "
              f"{row['name']}")
    return 0


def _study_result(store, study_id):
    record = store.get(study_id)
    result = record.get("result")
    if not isinstance(result, dict):
        raise RascadError(
            f"study {study_id} is {record.get('state')}; no result "
            "to render"
        )
    return record, result


def _cmd_study_front(args: argparse.Namespace) -> int:
    from .render import front_to_dot, render_front_table

    _, result = _study_result(_study_store_open(args), args.id)
    print(front_to_dot(result) if args.dot else render_front_table(result))
    return 0


def _cmd_study_publish(args: argparse.Namespace) -> int:
    from .spec import model_to_spec
    from .studies import CandidateFactory, parse_study

    _configure_obs(args)
    store = _study_store_open(args)
    record, result = _study_result(store, args.id)
    winner = result.get("winner")
    if winner is None:
        raise RascadError(
            f"study {args.id} has an empty front; nothing to publish"
        )
    rows = [
        row for row in result.get("candidates", [])
        if row.get("index") == winner
    ]
    if not rows:
        raise RascadError(
            f"study {args.id} result names winner {winner} but has "
            "no such candidate row"
        )
    engine = _engine_from_args(args)
    registry = _registry_open(args, engine=engine)
    try:
        study = parse_study(
            record["document"], database=registry.database
        )
        base_model = parse_spec_document(
            study.base, registry.database
        )
        factory = CandidateFactory(study, base_model, registry.database)
        candidate = factory.build(tuple(rows[0]["assignment"]))
        spec_doc = model_to_spec(candidate.model)
        name = args.name or _model_slug(f"{study.name}-winner")
        publish = registry.publish(
            spec_doc, name,
            description=args.description,
            tag=args.tag,
            force=args.force,
            source={
                "study_id": args.id,
                "candidate": winner,
                "result_digest": result.get("result_digest"),
            },
        )
    finally:
        _persist_stats(engine, args)
        registry.close()
    verb = "published" if publish.created else "already published"
    print(f"{verb} {name}@{publish.version.digest[:12]} "
          f"from study {args.id} candidate {winner}")
    print(f"cost      : {rows[0]['cost']:.2f}")
    print(f"downtime  : {rows[0]['yearly_downtime_minutes']:.3f} min/yr")
    return 0


def parse_spec_document(base, database):
    """Parse an inline base spec document (study publish helper)."""
    from .spec import parse_spec

    return parse_spec(dict(base), database=database)


def _http_json(url: str, payload=None, timeout: float = 60.0):
    """One JSON request/response against a running rascad server."""
    import json
    import urllib.error
    import urllib.request

    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
            return response.status, json.loads(body or b"{}"), {}
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            document = json.loads(body)
        except ValueError:
            document = {
                "error": {
                    "code": "http_error",
                    "message": body.decode("utf-8", errors="replace"),
                }
            }
        return exc.code, document, dict(exc.headers or {})


def _http_expect(url: str, payload=None, ok=(200, 201)):
    """A JSON call that turns error envelopes into CLI errors."""
    status, document, _headers = _http_json(url, payload)
    if status not in ok:
        error = document.get("error", {})
        raise RascadError(
            f"{url} answered {status} "
            f"{error.get('code', '?')}: {error.get('message', '')}"
        )
    return document


def _parse_shifts(raw) -> dict:
    """``PATH=FACTOR`` tokens into the synthetic-source shift map."""
    shifts: dict = {}
    for token in raw or []:
        path, separator, factor = token.rpartition("=")
        if not separator or not path:
            raise RascadError(
                f"--shift must be PATH=FACTOR, got {token!r}"
            )
        try:
            shifts[path] = float(factor)
        except ValueError:
            raise RascadError(
                f"--shift factor must be a number, got {factor!r}"
            ) from None
    return shifts


def _telemetry_hub_open(args: argparse.Namespace):
    """The local telemetry hub a CLI subcommand works against.

    State lives under ``CACHE_DIR/telemetry`` — the same directory a
    ``rascad serve --cache-dir`` server persists to, so local and
    served workflows see one estimator.
    """
    from pathlib import Path as _Path

    from .engine import default_cache_dir
    from .telemetry import TelemetryHub

    base = getattr(args, "cache_dir", None) or default_cache_dir()
    return TelemetryHub(
        directory=_Path(base) / "telemetry",
        window_hours=getattr(args, "window", None) or 168.0,
    )


def _drift_config_from_args(args: argparse.Namespace, window_hours):
    from .telemetry import DriftConfig

    changes = {"window_hours": window_hours}
    if getattr(args, "drift_shift", None) is not None:
        changes["shift"] = args.drift_shift
    if getattr(args, "drift_threshold", None) is not None:
        changes["threshold"] = args.drift_threshold
    if getattr(args, "min_events", None) is not None:
        changes["min_events"] = args.min_events
    return DriftConfig(**changes)


def _cmd_events_replay(args: argparse.Namespace) -> int:
    """Generate a reproducible synthetic field trace from a spec."""
    import json
    from pathlib import Path

    from .telemetry import synthetic_field_events

    _configure_obs(args)
    model = _load(args)
    events = synthetic_field_events(
        model,
        window_hours=args.window,
        seed=args.seed,
        server=args.server,
        mtbf_shifts=_parse_shifts(args.shift) or None,
    )
    document = {
        "model": model.name,
        "window_hours": args.window,
        "seed": args.seed,
        "events": [event.to_dict() for event in events],
    }
    if args.url:
        accepted, duplicates = _post_events(
            args.url, document["events"], args.batch_size
        )
        print(f"replayed {accepted} event(s) to {args.url} "
              f"({duplicates} duplicate(s) skipped)")
        return 0
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {len(events)} event(s) to {args.out}")
    else:
        print(text)
    return 0


def _post_events(url: str, events, batch_size: int):
    """POST events in batches, honouring 429 Retry-After backpressure."""
    import time as _time

    endpoint = url.rstrip("/") + "/v1/events"
    accepted = duplicates = 0
    for lo in range(0, len(events), max(1, batch_size)):
        batch = events[lo:lo + max(1, batch_size)]
        for _attempt in range(10):
            status, document, headers = _http_json(
                endpoint, {"events": batch}
            )
            if status != 429:
                break
            _time.sleep(float(headers.get("Retry-After", 1)))
        if status != 200:
            error = document.get("error", {})
            raise RascadError(
                f"ingest batch at {lo} answered {status} "
                f"{error.get('code', '?')}: {error.get('message', '')}"
            )
        accepted += int(document.get("accepted", 0))
        duplicates += int(document.get("duplicates", 0))
    return accepted, duplicates


def _read_events_file(path) -> list:
    """The event list from a trace file (bare list or ``{"events"}``)."""
    import json
    from pathlib import Path

    document = json.loads(Path(path).read_text())
    events = (
        document.get("events") if isinstance(document, dict) else document
    )
    if not isinstance(events, list):
        raise RascadError(
            f"{path} holds no event list; expected a JSON array or "
            "an object with an 'events' key"
        )
    return events


def _cmd_events_ingest(args: argparse.Namespace) -> int:
    """Ingest a trace file into a server or the local estimator."""
    from .telemetry import parse_events

    _configure_obs(args)
    events = _read_events_file(args.events)
    if args.url:
        accepted, duplicates = _post_events(
            args.url, events, args.batch_size
        )
        print(f"ingested {accepted} event(s) into {args.url} "
              f"({duplicates} duplicate(s) skipped)")
        return 0
    hub = _telemetry_hub_open(args)
    parsed = parse_events(events)
    accepted = duplicates = 0
    for lo in range(0, len(parsed), max(1, args.batch_size)):
        result = hub.ingest(
            [
                event.to_dict()
                for event in parsed[lo:lo + max(1, args.batch_size)]
            ]
        )
        accepted += int(result["accepted"])
        duplicates += int(result["duplicates"])
    print(f"ingested {accepted} event(s) "
          f"({duplicates} duplicate(s) skipped)")
    print(f"state digest : {hub.estimator.state_digest()}")
    print(f"parts        : {hub.estimator.parts}, "
          f"units: {hub.estimator.units}")
    return 0


def _print_calibration_summary(summary: dict) -> None:
    print(f"events       : {summary['events_total']} across "
          f"{summary['parts']} part(s), {summary['units']} unit(s)")
    window = summary.get("event_window")
    if window:
        print(f"window       : {window['start_hours']:.1f} .. "
              f"{window['end_hours']:.1f} h")
    print(f"state digest : {summary['state_digest']}")
    fitted = summary.get("fitted", {})
    rows = fitted.get("parts", [])
    if rows:
        print(f"{'failures':>8} {'rate/h':>12} {'mtbf h':>12}  part")
        for row in rows:
            mtbf = row.get("mtbf_hours")
            mtbf_text = f"{mtbf:.0f}" if mtbf else "-"
            print(f"{row['failures']:>8} {row['failure_rate']:>12.3e} "
                  f"{mtbf_text:>12}  {row['part']}")
    proposal = summary.get("proposal")
    if proposal:
        print(f"proposal     : {proposal['proposal_digest'][:16]} "
              f"({', '.join(proposal.get('drifted_parts') or [])})")


def _cmd_calibrate_status(args: argparse.Namespace) -> int:
    if args.url:
        summary = _http_expect(
            args.url.rstrip("/") + "/v1/calibration"
        )
    else:
        summary = _telemetry_hub_open(args).summary()
    import json

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    _print_calibration_summary(summary)
    return 0


def _cmd_calibrate_run(args: argparse.Namespace) -> int:
    """Submit a checkpointed ``kind="calibration"`` background job."""
    import json
    from pathlib import Path

    from .jobs import JobSpec

    _configure_obs(args)
    spec_doc = json.loads(Path(args.spec).read_text())
    if args.events:
        source: dict = {
            "kind": "events", "events": _read_events_file(args.events),
        }
    else:
        source = {
            "kind": "synthetic",
            "seed": args.seed,
            "window_hours": args.trace_window,
            "server": args.server,
        }
        shifts = _parse_shifts(args.shift)
        if shifts:
            source["shifts"] = shifts
    params: dict = {
        "source": source,
        "chunk_events": args.chunk_events,
        "window_hours": args.window,
    }
    drift: dict = {}
    if args.drift_shift is not None:
        drift["shift"] = args.drift_shift
    if args.drift_threshold is not None:
        drift["threshold"] = args.drift_threshold
    if args.min_events is not None:
        drift["min_events"] = args.min_events
    if drift:
        params["drift"] = drift
    job = JobSpec(kind="calibration", spec=spec_doc, params=params)
    store, _ = _jobs_open(args)
    record, created = store.submit(job)
    verb = "submitted" if created else "already queued (deduplicated)"
    print(f"{record.id} {verb}")
    print(f"state: {record.state}")
    print("run it with: rascad jobs worker --once")
    return 0


def _cmd_calibrate_propose(args: argparse.Namespace) -> int:
    """Fit, drift-detect against a spec, and store a proposal."""
    import json
    from pathlib import Path

    _configure_obs(args)
    if args.url:
        payload: dict = {
            "spec": json.loads(Path(args.spec).read_text())
        }
        drift: dict = {}
        if args.drift_shift is not None:
            drift["shift"] = args.drift_shift
        if args.drift_threshold is not None:
            drift["threshold"] = args.drift_threshold
        if args.min_events is not None:
            drift["min_events"] = args.min_events
        if drift:
            payload["drift"] = drift
        document = _http_expect(
            args.url.rstrip("/") + "/v1/calibration/propose", payload
        )
        proposal = document["proposal"]
    else:
        hub = _telemetry_hub_open(args)
        model = _load(args)
        engine = _engine_from_args(args)
        try:
            proposal = hub.propose(
                model,
                engine,
                drift_config=_drift_config_from_args(
                    args, hub.estimator.window_hours
                ),
                options=_solver_options_from_args(args),
            )
        finally:
            _persist_stats(engine, args)
    drift = proposal.get("drift", {})
    print(f"proposal  : {proposal['proposal_digest'][:16]}")
    print(f"model     : {proposal['model']}")
    print(f"drifted   : {', '.join(drift.get('drifted_parts', []))}")
    for part, entry in sorted(proposal.get("refit", {}).items()):
        new = entry.get("new_mtbf_hours")
        new_text = f"{new:.0f}" if new else "-"
        print(f"  ~ {part}: mtbf {entry['old_mtbf_hours']:.0f} "
              f"-> {new_text} h")
    evaluation = proposal.get("evaluation", {})
    if evaluation:
        print(f"candidate : {evaluation['availability']:.8f} avail, "
              f"{evaluation['yearly_downtime_minutes']:.3f} min/yr")
    return 0


def _cmd_calibrate_publish(args: argparse.Namespace) -> int:
    """Publish the stored proposal to the registry (gated when tagged)."""
    _configure_obs(args)
    if args.url:
        payload: dict = {"name": args.name}
        if args.tag:
            payload["tag"] = args.tag
        if args.force:
            payload["force"] = True
        if args.threshold is not None:
            payload["threshold"] = args.threshold
        document = _http_expect(
            args.url.rstrip("/") + "/v1/calibration/publish", payload
        )
        version = document.get("version", {})
        verb = (
            "published" if document.get("created") else "already published"
        )
        print(f"{verb} {args.name}@{version.get('digest', '')[:12]}")
        return 0
    hub = _telemetry_hub_open(args)
    engine = _engine_from_args(args)
    registry = _registry_open(args, engine=engine)
    try:
        result = hub.publish(
            registry,
            args.name,
            tag=args.tag,
            force=args.force,
            threshold=args.threshold,
        )
    finally:
        _persist_stats(engine, args)
        registry.close()
    verb = "published" if result.created else "already published"
    print(f"{verb} {args.name}@{result.version.digest[:12]} "
          "from calibration proposal")
    source = result.version.source or {}
    rates = source.get("fitted_rates", {})
    for part, rate in sorted(rates.items()):
        print(f"  {part}: fitted rate {rate:.3e}/h")
    gate = result.gate
    if gate is not None:
        delta = gate["downtime_delta_minutes"]
        print(f"gate      : {delta:+.3f} min/yr vs {gate['tag']} "
              f"baseline (threshold {gate['threshold_minutes']:g})"
              + (" [FORCED]" if gate.get("forced") else ""))
    return 0


def _db_targets(args: argparse.Namespace) -> List[dict]:
    """The databases a ``rascad db`` verb operates on.

    Explicit paths win; otherwise the known store databases under the
    cache directory (default ``~/.cache/rascad``) are discovered.
    """
    from pathlib import Path

    from .store import discover_databases

    paths = getattr(args, "paths", None) or []
    if paths:
        return [{"name": Path(p).stem, "path": p} for p in paths]
    base = getattr(args, "cache_dir", None) or default_cache_dir()
    found = discover_databases(base)
    if not found:
        raise RascadError(
            f"no store databases under {base} "
            "(pass database paths explicitly, or --cache-dir)"
        )
    return found


def _cmd_db_status(args: argparse.Namespace) -> int:
    import json

    from .store import db_status

    statuses = []
    for target in _db_targets(args):
        status = db_status(target["path"])
        status["name"] = target["name"]
        statuses.append(status)
    if args.json:
        print(json.dumps(statuses, indent=2, sort_keys=True))
        return 0
    print(f"{'store':<12} {'uv':>3} {'journal':<8} {'bytes':>12}  rows")
    for status in statuses:
        rows = ", ".join(
            f"{table}={count}"
            for table, count in sorted(status["tables"].items())
        ) or "-"
        print(f"{status['name']:<12} {status['user_version']:>3} "
              f"{status['journal_mode']:<8} "
              f"{status['size_bytes']:>12}  {rows}")
    return 0


def _cmd_db_check(args: argparse.Namespace) -> int:
    import json

    from .store import db_check

    reports = []
    for target in _db_targets(args):
        report = db_check(target["path"])
        report["name"] = target["name"]
        reports.append(report)
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
    else:
        for report in reports:
            verdict = "ok" if report["ok"] else "CORRUPT"
            print(f"{report['name']:<12} {verdict}  {report['path']}")
            if not report["ok"]:
                for message in report["messages"]:
                    print(f"  {message}")
    return 0 if all(report["ok"] for report in reports) else 1


def _cmd_db_backup(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .store import db_backup, default_backup_destination

    targets = _db_targets(args)
    if args.out and len(targets) != 1:
        raise RascadError(
            "--out names one file; it needs exactly one database "
            f"(got {len(targets)})"
        )
    results = []
    for target in targets:
        destination = (
            Path(args.out)
            if args.out
            else default_backup_destination(
                target["path"], args.out_dir
            )
        )
        result = db_backup(
            target["path"], destination, pages=args.pages
        )
        result["name"] = target["name"]
        results.append(result)
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    else:
        for result in results:
            print(f"{result['name']:<12} {result['size_bytes']:>12} "
                  f"bytes -> {result['destination']}")
    return 0


def _cmd_parts(args: argparse.Namespace) -> int:
    database = (
        PartsDatabase.load(args.database)
        if args.database
        else builtin_database()
    )
    print(f"{'part':<12} {'MTBF h':>10} {'FIT':>8}  description")
    for record in database:
        print(f"{record.part_number:<12} {record.mtbf_hours:>10.0f} "
              f"{record.transient_fit:>8.0f}  {record.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rascad",
        description="RAScad-style availability modeling from "
                    "engineering-language specs",
    )
    parser.add_argument(
        "--database", metavar="PARTS.json", default=None,
        help="component catalog file (default: builtin catalog)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}",
        help="print the version and exit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_engine_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for batch evaluation (default: 1)",
        )
        subparser.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="enable the persistent solve cache at DIR "
                 "(default: in-memory cache only)",
        )
        subparser.add_argument(
            "--no-cache", action="store_true",
            help="disable the solve cache for this run",
        )
        add_solver_flags(subparser)
        add_obs_flags(subparser)

    def add_solver_flags(subparser: argparse.ArgumentParser) -> None:
        from .num import STEADY_ALIASES, TRANSIENT_METHODS, backend_names

        subparser.add_argument(
            "--steady-method", default=None, metavar="BACKEND",
            choices=sorted(set(backend_names()) | set(STEADY_ALIASES)),
            help="steady-state solver backend "
                 "(default: dense-direct; see docs/solvers.md)",
        )
        subparser.add_argument(
            "--transient-method", default=None, metavar="METHOD",
            choices=sorted(TRANSIENT_METHODS),
            help="transient solver: uniformization, expm, ode, or auto "
                 "(default: uniformization)",
        )
        subparser.add_argument(
            "--representation", default=None,
            choices=["auto", "dense", "sparse"],
            help="generator storage: dense ndarray, sparse CSR, or "
                 "auto-select by size and fill-in (default: auto)",
        )

    def add_obs_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--trace", action="store_true",
            help="enable tracing without a span export file",
        )
        subparser.add_argument(
            "--trace-dir", default=None, metavar="DIR",
            help="enable tracing and export spans to DIR/spans.jsonl",
        )
        subparser.add_argument(
            "--trace-detail", action="store_true",
            help="also emit per-block solve spans (deep-dive traces)",
        )
        subparser.add_argument(
            "--log-level", default="info", metavar="LEVEL",
            choices=["debug", "info", "warning", "error"],
            help="log level for the rascad logger (default: info)",
        )
        subparser.add_argument(
            "--log-json", action="store_true",
            help="emit structured JSON log lines (with trace ids)",
        )

    solve = commands.add_parser("solve", help="system measures")
    solve.add_argument("spec")
    solve.add_argument("--mission", type=float, default=None,
                       help="mission time T in hours")
    add_engine_flags(solve)
    solve.set_defaults(handler=_cmd_solve)

    tree = commands.add_parser("tree", help="diagram/block tree")
    tree.add_argument("spec")
    tree.set_defaults(handler=_cmd_tree)

    report = commands.add_parser("report", help="markdown RAS report")
    report.add_argument("spec")
    report.set_defaults(handler=_cmd_report)

    importance = commands.add_parser(
        "importance",
        help="Birnbaum importance and improvement potentials",
    )
    importance.add_argument("spec")
    add_engine_flags(importance)
    importance.set_defaults(handler=_cmd_importance)

    budget = commands.add_parser("budget", help="downtime budget")
    budget.add_argument("spec")
    budget.set_defaults(handler=_cmd_budget)

    dot = commands.add_parser("dot", help="Graphviz dot of one chain")
    dot.add_argument("spec")
    dot.add_argument("block", help="block path, e.g. 'Sys/Server/CPU'")
    dot.set_defaults(handler=_cmd_dot)

    sweep = commands.add_parser("sweep", help="parametric sweep")
    sweep.add_argument("spec")
    sweep.add_argument("block")
    sweep.add_argument("field")
    sweep.add_argument("values", nargs="+")
    sweep.add_argument(
        "--cluster", default=None, metavar="URL",
        help="run the sweep through a cluster coordinator at URL "
             "instead of the local engine",
    )
    sweep.add_argument(
        "--cluster-timeout", type=float, default=600.0, metavar="SECONDS",
        help="deadline for a --cluster sweep (default: 600)",
    )
    add_engine_flags(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    validate = commands.add_parser(
        "validate", help="Monte Carlo cross-check of the analytic solution"
    )
    validate.add_argument("spec")
    validate.add_argument("--replications", type=int, default=40)
    validate.add_argument("--horizon", type=float, default=30_000.0)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument(
        "--deep", action="store_true",
        help="run the full Section-5 protocol (independent analytic "
             "path, Monte Carlo, field-data loop)",
    )
    add_engine_flags(validate)
    validate.set_defaults(handler=_cmd_validate)

    requirement = commands.add_parser(
        "requirement", help="check the model against an availability target"
    )
    requirement.add_argument("spec")
    target_group = requirement.add_mutually_exclusive_group(required=True)
    target_group.add_argument("--availability", type=float, default=None)
    target_group.add_argument("--nines", type=float, default=None)
    target_group.add_argument(
        "--downtime", type=float, default=None,
        help="maximum downtime budget in minutes/year",
    )
    requirement.set_defaults(handler=_cmd_requirement)

    compare = commands.add_parser(
        "compare", help="side-by-side comparison of several specs"
    )
    compare.add_argument("specs", nargs="+")
    compare.set_defaults(handler=_cmd_compare)

    diff = commands.add_parser(
        "diff", help="what changed between two specs, and its impact"
    )
    diff.add_argument("old")
    diff.add_argument("new")
    diff.set_defaults(handler=_cmd_diff)

    parts = commands.add_parser("parts", help="list the component catalog")
    parts.set_defaults(handler=_cmd_parts)

    stats = commands.add_parser(
        "stats", help="engine counters and cache usage from the last run"
    )
    stats.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory to inspect (default: ~/.cache/rascad)",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="machine-readable output (the service's /metrics document)",
    )
    stats.set_defaults(handler=_cmd_stats)

    serve = commands.add_parser(
        "serve", help="run the HTTP model-serving API"
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8080,
        help="bind port; 0 picks a free port (default: 8080)",
    )
    add_engine_flags(serve)
    serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="distinct solves admitted before 429 backpressure "
             "(default: 64)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="default and maximum per-request deadline (default: 30)",
    )
    serve.add_argument(
        "--warm-start", action="store_true",
        help="pre-solve the library models into the cache at startup",
    )
    serve.add_argument(
        "--jobs-db", default=None, metavar="PATH",
        help="job store database for the /v1/jobs endpoints "
             "(default: jobs.sqlite3 inside --cache-dir; jobs are "
             "disabled when neither flag is given)",
    )
    serve.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="RATIO",
        help="head-sampling ratio in [0, 1]; errors and slow spans "
             "are always kept (default: 1.0)",
    )
    serve.add_argument(
        "--registry-db", default=None, metavar="PATH",
        help="model registry database for /v1/models "
             "(default: registry.sqlite3 inside --cache-dir, else "
             "in-memory for the server's lifetime)",
    )
    serve.add_argument(
        "--registry-threshold", type=float, default=1.0,
        metavar="MINUTES",
        help="regression-gate threshold in extra yearly downtime "
             "minutes a tagged publish may cost (default: 1.0)",
    )
    serve.add_argument(
        "--no-registry-seed", action="store_true",
        help="do not publish the built-in library models into the "
             "registry at startup",
    )
    serve.add_argument(
        "--telemetry-max-pending", type=int, default=10_000, metavar="N",
        help="field events admitted but not yet applied before "
             "POST /v1/events answers 429 (default: 10000)",
    )
    serve.add_argument(
        "--telemetry-max-batch", type=int, default=1_024, metavar="N",
        help="maximum events in one /v1/events batch (default: 1024)",
    )
    serve.add_argument(
        "--telemetry-window", type=float, default=168.0, metavar="HOURS",
        help="drift-detection window width in hours (default: 168)",
    )
    serve.set_defaults(handler=_cmd_serve)

    trace = commands.add_parser(
        "trace", help="inspect exported trace spans"
    )
    trace_commands = trace.add_subparsers(
        dest="trace_command", required=True
    )

    tail = trace_commands.add_parser(
        "tail", help="most recent spans from a trace directory"
    )
    tail.add_argument(
        "trace_dir", help="directory holding spans.jsonl",
    )
    tail.add_argument(
        "--limit", type=int, default=50, metavar="N",
        help="show at most the last N spans (default: 50)",
    )
    tail.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="only spans of one trace",
    )
    tail.add_argument(
        "--name", default=None, metavar="NAME",
        help="only spans with this name (e.g. engine.solve)",
    )
    tail.add_argument(
        "--json", action="store_true",
        help="one JSON span object per line instead of a table",
    )
    tail.set_defaults(handler=_cmd_trace_tail)

    summary = trace_commands.add_parser(
        "summary", help="per-span-name latency/error rollup"
    )
    summary.add_argument(
        "trace_dir", help="directory holding spans.jsonl",
    )
    summary.set_defaults(handler=_cmd_trace_summary)

    jobs = commands.add_parser(
        "jobs", help="durable background jobs (submit, inspect, run)"
    )
    jobs_commands = jobs.add_subparsers(dest="jobs_command", required=True)

    def add_db_flag(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--db", default=None, metavar="PATH",
            help="job store database "
                 "(default: ~/.cache/rascad/jobs.sqlite3)",
        )

    submit = jobs_commands.add_parser(
        "submit", help="enqueue a sweep/uncertainty/validate/study job"
    )
    submit.add_argument("spec", help="model spec file")
    submit.add_argument(
        "--kind",
        choices=["sweep", "uncertainty", "validate", "study",
                 "calibration"],
        default="sweep",
    )
    submit.add_argument("--block", default=None,
                        help="block path for a sweep (omit for global)")
    submit.add_argument("--field", default=None,
                        help="field to sweep")
    submit.add_argument(
        "--values", nargs="+", default=None, metavar="V",
        help="sweep values; numbers or start:stop:count ranges "
             "(e.g. 1e5:1e6:10)",
    )
    from .num import STEADY_ALIASES, backend_names

    submit.add_argument(
        "--method", default=None,
        choices=sorted(set(backend_names()) | set(STEADY_ALIASES)),
        help="steady-state backend the job's solves use "
             "(full control via a 'solver' object in --params)",
    )
    submit.add_argument("--replications", type=int, default=None)
    submit.add_argument("--horizon", type=float, default=None)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument(
        "--params", default=None, metavar="PARAMS.json",
        help="kind-specific parameters as a JSON file (merged under "
             "any explicit flags; required for uncertainty and "
             "study jobs — a study's params are the study document "
             "minus 'base')",
    )
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first (default: 0)")
    submit.add_argument("--max-attempts", type=int, default=3)
    add_db_flag(submit)
    submit.set_defaults(handler=_cmd_jobs_submit)

    status = jobs_commands.add_parser("status", help="one job's state")
    status.add_argument("id")
    add_db_flag(status)
    status.set_defaults(handler=_cmd_jobs_status)

    jlist = jobs_commands.add_parser("list", help="recent jobs")
    jlist.add_argument("--state", default=None,
                       choices=["queued", "running", "succeeded",
                                "failed", "cancelled"])
    jlist.add_argument("--kind", default=None,
                       choices=["sweep", "uncertainty", "validate",
                                "study", "calibration"])
    jlist.add_argument("--limit", type=int, default=50)
    add_db_flag(jlist)
    jlist.set_defaults(handler=_cmd_jobs_list)

    cancel = jobs_commands.add_parser("cancel", help="cancel a job")
    cancel.add_argument("id")
    add_db_flag(cancel)
    cancel.set_defaults(handler=_cmd_jobs_cancel)

    worker = jobs_commands.add_parser(
        "worker", help="run a job worker loop"
    )
    add_db_flag(worker)
    add_engine_flags(worker)
    worker.add_argument(
        "--once", action="store_true",
        help="drain the queue, then exit instead of polling",
    )
    worker.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="idle polling interval (default: 0.5)",
    )
    worker.add_argument(
        "--lease-timeout", type=float, default=60.0, metavar="SECONDS",
        help="heartbeat age before a running job is presumed crashed "
             "and reclaimed (default: 60)",
    )
    worker.add_argument(
        "--checkpoint-every", type=int, default=25, metavar="POINTS",
        help="points solved between durable checkpoints (default: 25)",
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after processing N jobs",
    )
    worker.set_defaults(handler=_cmd_jobs_worker)

    cluster = commands.add_parser(
        "cluster",
        help="sharded multi-worker fleet (coordinator, worker, status)",
    )
    cluster_commands = cluster.add_subparsers(
        dest="cluster_command", required=True
    )

    def add_bind_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--host", default="127.0.0.1",
            help="bind address (default: 127.0.0.1)",
        )
        subparser.add_argument(
            "--port", type=int, default=0,
            help="bind port; 0 picks a free port (default: 0)",
        )
        add_engine_flags(subparser)

    coordinator = cluster_commands.add_parser(
        "coordinator",
        help="serve as a coordinator fanning sweeps out over workers",
    )
    add_bind_flags(coordinator)
    coordinator.add_argument(
        "--worker", action="append", default=None, metavar="URL",
        help="static worker base URL (repeatable); more workers may "
             "join dynamically via POST /v1/cluster/workers",
    )
    coordinator.add_argument(
        "--jobs-db", default=None, metavar="PATH",
        help="SQLite path persisting the shard table (and /v1/jobs); "
             "a restarted coordinator resumes completed shards from it",
    )
    coordinator.add_argument(
        "--shard-size", type=int, default=16, metavar="POINTS",
        help="points per shard (default: 16)",
    )
    coordinator.add_argument(
        "--lease-timeout", type=float, default=15.0, metavar="SECONDS",
        help="heartbeat age before a dynamic worker leaves placement "
             "(default: 15)",
    )
    coordinator.add_argument(
        "--steal-after", type=float, default=5.0, metavar="SECONDS",
        help="shard runtime before idle workers re-execute it "
             "speculatively (default: 5)",
    )
    coordinator.add_argument(
        "--max-shard-attempts", type=int, default=4, metavar="N",
        help="attempts per shard before the workload fails (default: 4)",
    )
    coordinator.add_argument(
        "--call-timeout", type=float, default=60.0, metavar="SECONDS",
        help="socket timeout for one shard HTTP call (default: 60)",
    )
    coordinator.add_argument(
        "--fanout-threshold", type=int, default=2, metavar="POINTS",
        help="minimum sweep size worth sharding (default: 2)",
    )
    coordinator.set_defaults(handler=_cmd_cluster_coordinator)

    cluster_worker = cluster_commands.add_parser(
        "worker",
        help="serve solves and register with a coordinator",
    )
    add_bind_flags(cluster_worker)
    cluster_worker.add_argument(
        "--coordinator", required=True, metavar="URL",
        help="coordinator base URL to register with",
    )
    cluster_worker.add_argument(
        "--advertise", default=None, metavar="URL",
        help="URL the coordinator should dial back "
             "(default: http://HOST:PORT as bound)",
    )
    cluster_worker.add_argument(
        "--heartbeat-interval", type=float, default=2.0,
        metavar="SECONDS",
        help="seconds between registration heartbeats (default: 2)",
    )
    cluster_worker.set_defaults(handler=_cmd_cluster_worker)

    cluster_status = cluster_commands.add_parser(
        "status", help="one coordinator's fleet and workload view"
    )
    cluster_status.add_argument(
        "coordinator", metavar="URL", help="coordinator base URL"
    )
    cluster_status.add_argument(
        "--json", action="store_true",
        help="print the raw /v1/cluster/status document",
    )
    cluster_status.set_defaults(handler=_cmd_cluster_status)

    models = commands.add_parser(
        "models",
        help="versioned model registry (publish, tag, gate, rollback)",
    )
    models_commands = models.add_subparsers(
        dest="models_command", required=True
    )

    def add_registry_flag(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--registry-db", default=None, metavar="PATH",
            help="registry database "
                 "(default: ~/.cache/rascad/registry.sqlite3)",
        )

    publish = models_commands.add_parser(
        "publish",
        help="publish a spec as an immutable version, optionally "
             "moving a tag through the regression gate",
    )
    publish.add_argument("spec", help="model spec file")
    publish.add_argument(
        "--name", default=None, metavar="NAME",
        help="registry model name (default: slug of the spec's "
             "model name)",
    )
    publish.add_argument(
        "--tag", default=None, metavar="TAG",
        help="also point TAG at the new version (gated against the "
             "tag's current holder)",
    )
    publish.add_argument(
        "--force", action="store_true",
        help="override a regression-gate rejection (recorded)",
    )
    publish.add_argument(
        "--threshold", type=float, default=None, metavar="MINUTES",
        help="gate threshold in extra yearly downtime minutes "
             "(default: 1.0)",
    )
    publish.add_argument(
        "--description", default=None,
        help="one-line model description (first publish wins)",
    )
    add_registry_flag(publish)
    add_engine_flags(publish)
    publish.set_defaults(handler=_cmd_models_publish)

    mlist = models_commands.add_parser(
        "list", help="registered models, their tags and version counts"
    )
    add_registry_flag(mlist)
    mlist.set_defaults(handler=_cmd_models_list)

    show = models_commands.add_parser(
        "show",
        help="one model (bare name) or one version (name@tag / "
             "name@digest)",
    )
    show.add_argument("ref", help="name, name@tag, or name@digest")
    add_registry_flag(show)
    show.set_defaults(handler=_cmd_models_show)

    mdiff = models_commands.add_parser(
        "diff", help="structured diff between two registry versions"
    )
    mdiff.add_argument("old", help="baseline ref (name@tag/@digest)")
    mdiff.add_argument("new", help="candidate ref")
    add_registry_flag(mdiff)
    mdiff.set_defaults(handler=_cmd_models_diff)

    mtag = models_commands.add_parser(
        "tag", help="point a tag at a version (ungated operator move)"
    )
    mtag.add_argument("name")
    mtag.add_argument("tag")
    mtag.add_argument(
        "selector", help="tag or digest prefix to point at"
    )
    add_registry_flag(mtag)
    mtag.set_defaults(handler=_cmd_models_tag)

    rollback = models_commands.add_parser(
        "rollback",
        help="move a tag back to its previous distinct version",
    )
    rollback.add_argument("name")
    rollback.add_argument("tag")
    add_registry_flag(rollback)
    rollback.set_defaults(handler=_cmd_models_rollback)

    check = models_commands.add_parser(
        "check",
        help="dry-run the regression gate (exit 1 on would-reject)",
    )
    check.add_argument("spec", help="candidate model spec file")
    check.add_argument("--name", required=True, metavar="NAME")
    check.add_argument("--tag", required=True, metavar="TAG")
    check.add_argument(
        "--threshold", type=float, default=None, metavar="MINUTES",
        help="gate threshold in extra yearly downtime minutes "
             "(default: 1.0)",
    )
    add_registry_flag(check)
    add_engine_flags(check)
    check.set_defaults(handler=_cmd_models_check)

    study = commands.add_parser(
        "study",
        help="design-space studies (run, status, front, publish)",
    )
    study_commands = study.add_subparsers(
        dest="study_command", required=True
    )

    def add_studies_flag(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--studies-dir", default=None, metavar="DIR",
            help="study record directory "
                 "(default: CACHE_DIR/studies, ~/.cache/rascad/studies)",
        )

    run = study_commands.add_parser(
        "run", help="run a study document and print its Pareto front"
    )
    run.add_argument("study", help="study document file (JSON)")
    run.add_argument(
        "--base", default=None, metavar="SPEC.json",
        help="base model spec file (overrides the document's 'base')",
    )
    run.add_argument(
        "--rerun", action="store_true",
        help="re-run even if this study id already has a result",
    )
    add_studies_flag(run)
    add_engine_flags(run)
    run.set_defaults(handler=_cmd_study_run)

    sstatus = study_commands.add_parser(
        "status", help="recorded studies, or one study's state"
    )
    sstatus.add_argument("id", nargs="?", default=None,
                         help="study id (omit to list all)")
    add_studies_flag(sstatus)
    sstatus.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache directory holding studies/")
    sstatus.set_defaults(handler=_cmd_study_status)

    front = study_commands.add_parser(
        "front", help="a finished study's Pareto front"
    )
    front.add_argument("id", help="study id")
    front.add_argument(
        "--dot", action="store_true",
        help="emit a Graphviz scatter (render with dot -Kneato)",
    )
    add_studies_flag(front)
    front.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory holding studies/")
    front.set_defaults(handler=_cmd_study_front)

    spublish = study_commands.add_parser(
        "publish",
        help="publish a study's winning candidate to the model "
             "registry, with the study id in its lineage",
    )
    spublish.add_argument("id", help="study id")
    spublish.add_argument(
        "--name", default=None, metavar="NAME",
        help="registry model name (default: slug of '<study>-winner')",
    )
    spublish.add_argument(
        "--tag", default=None, metavar="TAG",
        help="also point TAG at the published version (gated)",
    )
    spublish.add_argument(
        "--force", action="store_true",
        help="override a regression-gate rejection (recorded)",
    )
    spublish.add_argument(
        "--description", default=None,
        help="one-line model description (first publish wins)",
    )
    add_studies_flag(spublish)
    add_registry_flag(spublish)
    add_engine_flags(spublish)
    spublish.set_defaults(handler=_cmd_study_publish)

    events = commands.add_parser(
        "events",
        help="field-event traces (replay a synthetic trace, ingest)",
    )
    events_commands = events.add_subparsers(
        dest="events_command", required=True
    )

    def add_ingest_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--url", default=None, metavar="URL",
            help="POST to a running rascad serve instead of the "
                 "local telemetry state",
        )
        subparser.add_argument(
            "--batch-size", type=int, default=256, metavar="N",
            help="events per ingest batch (default: 256)",
        )

    replay = events_commands.add_parser(
        "replay",
        help="generate a reproducible synthetic field trace from a spec",
    )
    replay.add_argument("spec", help="model spec file")
    replay.add_argument(
        "--window", type=float, default=10_950.0, metavar="HOURS",
        help="observation window in hours (default: 10950, ~15 months)",
    )
    replay.add_argument(
        "--seed", type=int, default=0,
        help="trace seed (default: 0)",
    )
    replay.add_argument(
        "--server", default="server-A", metavar="NAME",
        help="unit-name prefix for the simulated fleet "
             "(default: server-A)",
    )
    replay.add_argument(
        "--shift", action="append", default=None, metavar="PATH=FACTOR",
        help="multiply one part's spec MTBF by FACTOR before "
             "simulating (repeatable; <1 injects drift)",
    )
    replay.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the trace to FILE instead of stdout",
    )
    add_ingest_flags(replay)
    add_obs_flags(replay)
    replay.set_defaults(handler=_cmd_events_replay)

    ingest = events_commands.add_parser(
        "ingest",
        help="feed a trace file into a server or the local estimator",
    )
    ingest.add_argument(
        "events", metavar="TRACE.json",
        help="event trace file (array, or object with 'events')",
    )
    ingest.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="local telemetry state directory root "
             "(default: ~/.cache/rascad; state in DIR/telemetry)",
    )
    ingest.add_argument(
        "--window", type=float, default=None, metavar="HOURS",
        help="drift window for fresh local state (default: 168)",
    )
    add_ingest_flags(ingest)
    add_obs_flags(ingest)
    ingest.set_defaults(handler=_cmd_events_ingest)

    calibrate = commands.add_parser(
        "calibrate",
        help="online rate calibration from field events "
             "(run, status, propose, publish)",
    )
    calibrate_commands = calibrate.add_subparsers(
        dest="calibrate_command", required=True
    )

    def add_drift_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--drift-shift", type=float, default=None, metavar="S",
            help="rate-shift factor the CUSUM tests for (default: 2.0)",
        )
        subparser.add_argument(
            "--drift-threshold", type=float, default=None, metavar="H",
            help="CUSUM decision threshold (default: 8.0)",
        )
        subparser.add_argument(
            "--min-events", type=int, default=None, metavar="N",
            help="failures required before deterioration is "
                 "confirmable (default: 5)",
        )

    crun = calibrate_commands.add_parser(
        "run",
        help="submit a checkpointed calibration job "
             "(execute with: rascad jobs worker)",
    )
    crun.add_argument("spec", help="model spec file")
    crun.add_argument(
        "--events", default=None, metavar="TRACE.json",
        help="ingest this trace file (default: a synthetic trace)",
    )
    crun.add_argument("--seed", type=int, default=0,
                      help="synthetic trace seed (default: 0)")
    crun.add_argument(
        "--trace-window", type=float, default=10_950.0, metavar="HOURS",
        help="synthetic observation window (default: 10950)",
    )
    crun.add_argument(
        "--server", default="server-A", metavar="NAME",
        help="synthetic fleet unit-name prefix (default: server-A)",
    )
    crun.add_argument(
        "--shift", action="append", default=None, metavar="PATH=FACTOR",
        help="synthetic MTBF shift (repeatable; <1 injects drift)",
    )
    crun.add_argument(
        "--chunk-events", type=int, default=256, metavar="N",
        help="events per checkpointable chunk (default: 256)",
    )
    crun.add_argument(
        "--window", type=float, default=168.0, metavar="HOURS",
        help="drift-detection window width (default: 168)",
    )
    add_drift_flags(crun)
    add_db_flag(crun)
    add_obs_flags(crun)
    crun.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="cache directory holding jobs.sqlite3")
    crun.set_defaults(handler=_cmd_calibrate_run)

    cstatus = calibrate_commands.add_parser(
        "status", help="fitted per-part rates and the stored proposal"
    )
    cstatus.add_argument(
        "--url", default=None, metavar="URL",
        help="query a running rascad serve instead of local state",
    )
    cstatus.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="local telemetry state directory root")
    cstatus.add_argument("--window", type=float, default=None,
                         metavar="HOURS",
                         help="drift window for fresh local state")
    cstatus.add_argument(
        "--json", action="store_true",
        help="print the raw /v1/calibration document",
    )
    cstatus.set_defaults(handler=_cmd_calibrate_status)

    cpropose = calibrate_commands.add_parser(
        "propose",
        help="detect drift against a spec and store a re-fitted "
             "calibration proposal",
    )
    cpropose.add_argument("spec", help="model spec file")
    cpropose.add_argument(
        "--url", default=None, metavar="URL",
        help="propose on a running rascad serve instead of locally",
    )
    add_drift_flags(cpropose)
    cpropose.add_argument("--window", type=float, default=None,
                          metavar="HOURS",
                          help="drift window for fresh local state")
    add_engine_flags(cpropose)
    cpropose.set_defaults(handler=_cmd_calibrate_propose)

    cpublish = calibrate_commands.add_parser(
        "publish",
        help="publish the stored proposal to the model registry "
             "(tagging runs the regression gate)",
    )
    cpublish.add_argument(
        "--name", required=True, metavar="NAME",
        help="registry model name",
    )
    cpublish.add_argument(
        "--tag", default=None, metavar="TAG",
        help="also point TAG at the published version (gated)",
    )
    cpublish.add_argument(
        "--force", action="store_true",
        help="override a regression-gate rejection (recorded)",
    )
    cpublish.add_argument(
        "--threshold", type=float, default=None, metavar="MINUTES",
        help="gate threshold in extra yearly downtime minutes "
             "(default: 1.0)",
    )
    cpublish.add_argument(
        "--url", default=None, metavar="URL",
        help="publish through a running rascad serve instead of locally",
    )
    cpublish.add_argument("--window", type=float, default=None,
                          metavar="HOURS",
                          help="drift window for fresh local state")
    add_registry_flag(cpublish)
    add_engine_flags(cpublish)
    cpublish.set_defaults(handler=_cmd_calibrate_publish)

    db = commands.add_parser(
        "db",
        help="store database operations (status, check, backup)",
    )
    db_commands = db.add_subparsers(dest="db_command", required=True)

    def add_db_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "paths", nargs="*", metavar="DB",
            help="database file(s); omit to discover the known store "
                 "databases under the cache directory",
        )
        subparser.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="cache directory to discover databases in "
                 "(default: ~/.cache/rascad)",
        )
        subparser.add_argument(
            "--json", action="store_true",
            help="print machine-readable JSON",
        )

    dstatus = db_commands.add_parser(
        "status",
        help="size, schema version, journal mode, and row counts",
    )
    add_db_flags(dstatus)
    dstatus.set_defaults(handler=_cmd_db_status)

    dcheck = db_commands.add_parser(
        "check",
        help="PRAGMA integrity_check (exit 1 on any corruption)",
    )
    add_db_flags(dcheck)
    dcheck.set_defaults(handler=_cmd_db_check)

    dbackup = db_commands.add_parser(
        "backup",
        help="online backup to <name>.backup.sqlite3 (writers keep "
             "writing)",
    )
    add_db_flags(dbackup)
    dbackup.add_argument(
        "--out", default=None, metavar="FILE",
        help="backup file name (single database only)",
    )
    dbackup.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="directory for default-named backups "
             "(default: beside each source)",
    )
    dbackup.add_argument(
        "--pages", type=int, default=256, metavar="N",
        help="pages copied per backup step (default: 256)",
    )
    dbackup.set_defaults(handler=_cmd_db_backup)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except RascadError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early; the
        # conventional Unix response is a silent, successful exit.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
