"""``PRAGMA user_version``-based schema registry and migrations.

Each store declares a :class:`Schema`: an ordered list of
:class:`Migration` steps numbered ``1..N``.  The database header's
``user_version`` records how far a file has migrated; opening a store
applies exactly the pending suffix, each step in its own transaction
with the version bump committed atomically alongside the DDL — a
crash mid-migration leaves the previous version fully intact.

This replaces the ad-hoc ``PRAGMA table_info`` probing the registry
store used to detect a missing column: probing can only ever answer
*is this one column there*, while a version number answers *which
exact schema is this file*, works for data backfills as well as DDL,
and is what ``rascad db status`` reports.

A migration's ``apply`` is either a SQL script (split on ``;`` —
statements in this codebase never embed semicolons in literals) or a
callable taking the open connection, for steps that need Python logic
(conditional DDL against pre-versioning files, data backfills).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, Union

from ..errors import StoreError

Apply = Union[str, Callable[[sqlite3.Connection], None]]


@dataclass(frozen=True)
class Migration:
    """One numbered schema step.

    Attributes:
        version: Target ``user_version`` after this step; must be the
            predecessor's version + 1.
        description: One line for ``rascad db status`` and docs.
        apply: SQL script or ``callable(conn)``.
    """

    version: int
    description: str
    apply: Apply


class Schema:
    """An ordered migration chain for one database."""

    def __init__(self, name: str, migrations: Sequence[Migration]):
        if not migrations:
            raise StoreError(f"schema {name!r} declares no migrations")
        for index, migration in enumerate(migrations, start=1):
            if migration.version != index:
                raise StoreError(
                    f"schema {name!r} migrations must be numbered "
                    f"1..N in order; step {index} has version "
                    f"{migration.version}"
                )
        self.name = name
        self.migrations: Tuple[Migration, ...] = tuple(migrations)

    @property
    def version(self) -> int:
        """The current (latest) schema version."""
        return self.migrations[-1].version

    def pending(self, conn: sqlite3.Connection) -> List[Migration]:
        current = int(
            conn.execute("PRAGMA user_version").fetchone()[0]
        )
        if current > self.version:
            raise StoreError(
                f"database is at schema version {current}, newer than "
                f"this build of {self.name!r} (knows {self.version}); "
                "refusing to open"
            )
        return [m for m in self.migrations if m.version > current]

    def apply(self, conn: sqlite3.Connection) -> int:
        """Bring ``conn``'s database to the current version.

        Returns the number of migrations applied.  Each step runs in
        its own immediate transaction; the ``user_version`` bump
        commits atomically with the step's statements.
        """
        steps = self.pending(conn)
        for migration in steps:
            conn.execute("BEGIN IMMEDIATE")
            try:
                if callable(migration.apply):
                    migration.apply(conn)
                else:
                    for statement in _statements(migration.apply):
                        conn.execute(statement)
                conn.execute(
                    f"PRAGMA user_version = {int(migration.version)}"
                )
                conn.commit()
            except BaseException:
                conn.rollback()
                raise
        return len(steps)


def _statements(script: str) -> List[str]:
    return [part.strip() for part in script.split(";") if part.strip()]
