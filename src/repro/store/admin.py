"""Operational verbs over store databases: status, check, backup.

Backs the ``rascad db`` CLI and the store-smoke CI job.  All three
verbs work on a *live* database:

* :func:`db_status` — file size, ``user_version``, journal mode,
  table row counts.
* :func:`db_check` — ``PRAGMA integrity_check`` (full, not quick).
* :func:`db_backup` — SQLite's online backup API
  (:meth:`sqlite3.Connection.backup`), which copies a transactionally
  consistent snapshot while writers keep writing, into a temp file
  that is atomically renamed over the destination.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import StoreError

#: Known database files inside a cache directory, by store name.
KNOWN_DATABASES = (
    ("jobs", "jobs.sqlite3"),
    ("cluster", "cluster.sqlite3"),
    ("registry", "registry.sqlite3"),
    ("studies", os.path.join("studies", "studies.sqlite3")),
    ("telemetry", os.path.join("telemetry", "telemetry.sqlite3")),
)


def discover_databases(
    cache_dir: Union[str, Path]
) -> List[Dict[str, object]]:
    """The store databases that exist under ``cache_dir``."""
    base = Path(cache_dir).expanduser()
    found = []
    for name, relative in KNOWN_DATABASES:
        path = base / relative
        if path.exists():
            found.append({"name": name, "path": str(path)})
    return found


def _open_readonly(path: Union[str, Path]) -> sqlite3.Connection:
    target = Path(path).expanduser()
    if not target.exists():
        raise StoreError(f"no database at {target}")
    conn = sqlite3.connect(
        f"file:{target}?mode=ro", uri=True, timeout=30.0
    )
    conn.row_factory = sqlite3.Row
    return conn


def db_status(path: Union[str, Path]) -> Dict[str, object]:
    """Size, schema version, journal mode, and per-table row counts."""
    target = Path(path).expanduser()
    conn = _open_readonly(target)
    try:
        user_version = conn.execute(
            "PRAGMA user_version"
        ).fetchone()[0]
        journal_mode = conn.execute(
            "PRAGMA journal_mode"
        ).fetchone()[0]
        tables = [
            row["name"]
            for row in conn.execute(
                "SELECT name FROM sqlite_master "
                "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' "
                "ORDER BY name"
            )
        ]
        counts = {
            table: conn.execute(
                f'SELECT COUNT(*) FROM "{table}"'
            ).fetchone()[0]
            for table in tables
        }
    finally:
        conn.close()
    size = target.stat().st_size
    for suffix in ("-wal", "-shm"):
        sidecar = target.with_name(target.name + suffix)
        try:
            size += sidecar.stat().st_size
        except OSError:
            pass
    return {
        "path": str(target),
        "size_bytes": size,
        "user_version": int(user_version),
        "journal_mode": str(journal_mode),
        "tables": counts,
    }


def db_check(path: Union[str, Path]) -> Dict[str, object]:
    """Full ``PRAGMA integrity_check``; ``ok`` is the verdict."""
    conn = _open_readonly(path)
    try:
        rows = conn.execute("PRAGMA integrity_check").fetchall()
        messages = [str(row[0]) for row in rows]
    except sqlite3.DatabaseError as exc:
        # Damage to the header or a root page makes even the checker
        # fail to start; that is still a verdict, not a crash.
        messages = [str(exc)]
    finally:
        conn.close()
    return {
        "path": str(Path(path).expanduser()),
        "ok": messages == ["ok"],
        "messages": messages,
    }


def db_backup(
    source: Union[str, Path],
    destination: Union[str, Path],
    *,
    pages: int = 256,
) -> Dict[str, object]:
    """Online-backup ``source`` into ``destination``.

    Copies ``pages`` pages per step so writers are only briefly
    blocked, lands in a temp file beside the destination, and renames
    into place — an interrupted backup never leaves a partial file
    under the destination name.
    """
    src_path = Path(source).expanduser()
    dest_path = Path(destination).expanduser()
    if not src_path.exists():
        raise StoreError(f"no database at {src_path}")
    dest_path.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        dir=str(dest_path.parent), prefix=".backup-", suffix=".tmp"
    )
    os.close(fd)
    src = sqlite3.connect(str(src_path), timeout=30.0)
    try:
        dest = sqlite3.connect(temp_name)
        try:
            src.backup(dest, pages=int(pages))
            dest.commit()
        finally:
            dest.close()
        os.replace(temp_name, dest_path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    finally:
        src.close()
    return {
        "source": str(src_path),
        "destination": str(dest_path),
        "size_bytes": dest_path.stat().st_size,
    }


def default_backup_destination(
    path: Union[str, Path], directory: Optional[Union[str, Path]] = None
) -> Path:
    """``<name>.backup.sqlite3`` beside the source (or under ``directory``)."""
    source = Path(path).expanduser()
    stem = source.name
    for suffix in (".sqlite3", ".sqlite", ".db"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
            break
    base = Path(directory).expanduser() if directory else source.parent
    return base / f"{stem}.backup.sqlite3"
