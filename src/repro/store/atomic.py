"""Crash-safe file writes: atomic replace and append-only JSONL.

Two disciplines, previously copied into five modules (engine disk
cache, engine stats, jobs checkpointer, telemetry hub, studies store;
span exporter for the append side), now defined once:

* :func:`atomic_write_bytes` / ``_text`` / ``_json`` — write to a
  temp file in the *same directory* (so the rename cannot cross
  filesystems), then ``os.replace``.  A reader — or a process killed
  mid-write — observes either the old content or the new, never a
  truncated file.  The temp file is unlinked on any failure,
  including KeyboardInterrupt.
* :class:`JsonlAppender` — a single ``os.write`` on an ``O_APPEND``
  descriptor per record.  POSIX guarantees the append offset is
  atomic, so concurrent writers interleave whole lines; a kill
  mid-write can truncate at most the final line, which readers skip.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional, Union


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    *,
    prefix: str = ".atomic-",
) -> Path:
    """Atomically replace ``path`` with ``data`` (temp + rename)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=prefix, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return target


def atomic_write_text(
    path: Union[str, Path], text: str, *, prefix: str = ".atomic-"
) -> Path:
    return atomic_write_bytes(
        path, text.encode("utf-8"), prefix=prefix
    )


def atomic_write_json(
    path: Union[str, Path],
    document: object,
    *,
    indent: Optional[int] = None,
    prefix: str = ".atomic-",
) -> Path:
    """Atomically write ``document`` as sorted-key JSON."""
    return atomic_write_text(
        path,
        json.dumps(document, indent=indent, sort_keys=True),
        prefix=prefix,
    )


class JsonlAppender:
    """Append-only JSONL sink on one ``O_APPEND`` descriptor.

    The descriptor opens lazily on first append and is shared across
    threads behind a lock; each record is one ``os.write`` of one
    ``\\n``-terminated line.
    """

    def __init__(self, path: Union[str, Path], mode: int = 0o644):
        self.path = Path(path)
        self.mode = mode
        self._fd: Optional[int] = None
        self._lock = threading.Lock()

    def append(self, document: Dict[str, object]) -> None:
        line = (
            json.dumps(document, sort_keys=True, default=str) + "\n"
        ).encode("utf-8")
        self.append_line(line)

    def append_line(self, line: bytes) -> None:
        """Append one pre-encoded, newline-terminated line."""
        with self._lock:
            if self._fd is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fd = os.open(
                    str(self.path),
                    os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                    self.mode,
                )
            os.write(self._fd, line)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
