"""repro.store — one durable-state substrate for every store.

Before this package each durable store (jobs queue, model registry,
cluster shard ledger, studies, telemetry hub) carried its own SQLite
plumbing: its own connect-configure-close idiom, its own WAL pragmas,
its own schema probing, and two different crash-safe file-write
disciplines.  This package is the single substrate they all run on:

* :class:`SqliteStore` — managed connection lifecycle (short-lived
  file connections closed in ``finally``; one locked shared
  connection for ``:memory:``), WAL + ``busy_timeout`` configured in
  one place, and a typed :meth:`~SqliteStore.transaction` helper with
  bounded busy-retry that raises :class:`StoreBusyError`.
* :class:`Schema` / :class:`Migration` — ``PRAGMA user_version``
  ordered migrations, each step atomic with its version bump.
* :mod:`~repro.store.atomic` — atomic-replace JSON/bytes writes and
  O_APPEND JSONL, the two crash-safe file disciplines.
* :mod:`~repro.store.admin` — online ``status`` / ``check`` /
  ``backup`` verbs behind the ``rascad db`` CLI.

The package deliberately imports nothing above :mod:`repro.errors`,
so every subsystem can depend on it without cycles.
"""

from ..errors import StoreBusyError, StoreError
from .admin import (
    db_backup,
    db_check,
    db_status,
    default_backup_destination,
    discover_databases,
)
from .atomic import (
    JsonlAppender,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from .core import SqliteStore, is_busy_error
from .schema import Migration, Schema

__all__ = [
    "JsonlAppender",
    "Migration",
    "Schema",
    "SqliteStore",
    "StoreBusyError",
    "StoreError",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "db_backup",
    "db_check",
    "db_status",
    "default_backup_destination",
    "discover_databases",
    "is_busy_error",
]
