"""The shared SQLite core every durable store runs on.

One class owns the connection lifecycle, the pragma configuration, and
the transaction discipline for all five stores (jobs, registry,
cluster shards, studies, telemetry):

* **File mode** — every operation runs on a short-lived connection
  that is *guaranteed* closed in a ``finally``, even when the
  transaction body raises.  Before this core each store carried its
  own copy of that idiom, and one of them leaked the descriptor on a
  mid-transaction exception; the regression test in
  ``tests/store/test_core.py`` counts open fds across exactly that
  failure.
* **Memory mode** (``":memory:"``) — one persistent connection shared
  across threads behind a lock, because a second ``:memory:``
  connection would see a different (empty) database.
* **WAL + busy_timeout** are configured in one place, so readers never
  block writers on file stores and lock contention waits bounded
  rather than failing instantly.
* **Busy mapping** — when the database stays locked past the retry
  budget, the raw ``sqlite3.OperationalError`` is mapped to the typed
  :class:`repro.errors.StoreBusyError`, which the service layer turns
  into a structured HTTP 503 and the jobs runner treats as transient.

Health counters (transactions, busy retries, cumulative transaction
latency) feed the ``storage`` section of ``/metrics``.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from ..errors import StoreBusyError, StoreError
from .schema import Schema

#: Default SQLite lock wait, in seconds — both the driver-level
#: ``timeout`` and the ``busy_timeout`` pragma derive from it.
DEFAULT_TIMEOUT = 30.0

#: Bounded retry budget for acquiring a write transaction.
DEFAULT_BUSY_RETRIES = 5

#: Base sleep between busy retries, in seconds (linear backoff).
DEFAULT_BUSY_BACKOFF = 0.05


def is_busy_error(exc: BaseException) -> bool:
    """Whether an exception is SQLite saying *locked, try later*."""
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    message = str(exc).lower()
    return "database is locked" in message or (
        "database table is locked" in message
    )


class SqliteStore:
    """Managed SQLite database: connections, schema, transactions.

    Args:
        path: Database file (parents created), or ``":memory:"``.
        schema: Optional :class:`~repro.store.schema.Schema`; its
            pending migrations are applied on open.
        timeout: Lock wait bound in seconds.
        busy_retries: Attempts to begin a write transaction before
            raising :class:`StoreBusyError`.
        busy_backoff: Base sleep between those attempts (linear).
    """

    def __init__(
        self,
        path: Union[str, Path],
        schema: Optional[Schema] = None,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        busy_retries: int = DEFAULT_BUSY_RETRIES,
        busy_backoff: float = DEFAULT_BUSY_BACKOFF,
    ) -> None:
        self.memory = str(path) == ":memory:"
        self.path: Union[str, Path]
        if self.memory:
            self.path = ":memory:"
        else:
            self.path = Path(path).expanduser()
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.schema = schema
        self.timeout = float(timeout)
        self.busy_retries = int(busy_retries)
        self.busy_backoff = float(busy_backoff)
        self._closed = False
        self._stats_lock = threading.Lock()
        self._txns = 0
        self._busy_retries_total = 0
        self._txn_seconds_total = 0.0
        self._shared: Optional[sqlite3.Connection] = None
        self._shared_lock = threading.RLock()
        if self.memory:
            self._shared = self._open()
        if schema is not None:
            with self.connection() as conn:
                schema.apply(conn)

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            str(self.path),
            timeout=self.timeout,
            check_same_thread=not self.memory,
        )
        conn.row_factory = sqlite3.Row
        conn.execute(
            f"PRAGMA busy_timeout = {int(self.timeout * 1000)}"
        )
        if not self.memory:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    @contextmanager
    def connection(self) -> Iterator[sqlite3.Connection]:
        """A configured connection, *always* released.

        File mode opens a fresh connection and closes it in a
        ``finally`` — the body raising, even mid-transaction, cannot
        leak the descriptor (an open transaction is rolled back by
        :meth:`sqlite3.Connection.close`'s implicit rollback on the
        uncommitted journal).  Memory mode yields the one shared
        connection under its lock.

        No transaction is opened; use :meth:`transaction` for writes.
        """
        if self._closed:
            raise StoreError(f"store {self.path} is closed")
        if self.memory:
            assert self._shared is not None
            with self._shared_lock:
                yield self._shared
            return
        conn = self._open()
        try:
            yield conn
        finally:
            conn.close()

    @contextmanager
    def transaction(
        self, immediate: bool = False
    ) -> Iterator[sqlite3.Connection]:
        """One atomic transaction with bounded busy-retry.

        ``immediate=True`` takes the write lock up front (claim paths
        that read-then-update need it to avoid upgrade deadlocks).
        Acquiring the transaction retries up to ``busy_retries`` times
        with linear backoff; exhaustion — and any *locked* error out
        of the body or the commit — raises the typed
        :class:`StoreBusyError` instead of a raw
        ``sqlite3.OperationalError``.  Any exception rolls back.
        """
        started = time.perf_counter()
        with self.connection() as conn:
            self._begin(conn, immediate)
            try:
                yield conn
                conn.commit()
            except StoreError:
                self._rollback(conn)
                raise
            except sqlite3.OperationalError as exc:
                self._rollback(conn)
                if is_busy_error(exc):
                    raise StoreBusyError(
                        f"database {self.path} is busy: {exc}",
                        retry_after=self.busy_backoff * 2,
                    ) from exc
                raise
            except BaseException:
                self._rollback(conn)
                raise
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self._txns += 1
            self._txn_seconds_total += elapsed

    def _begin(self, conn: sqlite3.Connection, immediate: bool) -> None:
        statement = "BEGIN IMMEDIATE" if immediate else "BEGIN"
        last: Optional[BaseException] = None
        for attempt in range(self.busy_retries + 1):
            try:
                conn.execute(statement)
                return
            except sqlite3.OperationalError as exc:
                if not is_busy_error(exc):
                    raise
                last = exc
                with self._stats_lock:
                    self._busy_retries_total += 1
                if attempt < self.busy_retries:
                    time.sleep(self.busy_backoff * (attempt + 1))
        raise StoreBusyError(
            f"database {self.path} is busy after "
            f"{self.busy_retries} retries: {last}",
            retry_after=self.busy_backoff * (self.busy_retries + 1),
        ) from last

    @staticmethod
    def _rollback(conn: sqlite3.Connection) -> None:
        try:
            conn.rollback()
        except sqlite3.Error:
            pass

    def close(self) -> None:
        """Release the shared connection (memory mode); idempotent."""
        self._closed = True
        if self._shared is not None:
            with self._shared_lock:
                self._shared.close()
                self._shared = None

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """On-disk footprint (db + WAL + SHM), or page math in memory."""
        if self.memory:
            assert self._shared is not None
            with self._shared_lock:
                pages = self._shared.execute(
                    "PRAGMA page_count"
                ).fetchone()[0]
                page_size = self._shared.execute(
                    "PRAGMA page_size"
                ).fetchone()[0]
            return int(pages) * int(page_size)
        total = 0
        base = Path(self.path)
        for candidate in (
            base,
            base.with_name(base.name + "-wal"),
            base.with_name(base.name + "-shm"),
        ):
            try:
                total += candidate.stat().st_size
            except OSError:
                pass
        return total

    def user_version(self) -> int:
        with self.connection() as conn:
            return int(
                conn.execute("PRAGMA user_version").fetchone()[0]
            )

    def health(self) -> Dict[str, object]:
        """The ``storage`` metrics payload for this database."""
        with self._stats_lock:
            txns = self._txns
            busy = self._busy_retries_total
            seconds = self._txn_seconds_total
        return {
            "path": str(self.path),
            "mode": "memory" if self.memory else "file",
            "schema": self.schema.name if self.schema else None,
            "user_version": self.user_version(),
            "size_bytes": self.size_bytes(),
            "transactions": txns,
            "busy_retries": busy,
            "txn_seconds_total": seconds,
        }
