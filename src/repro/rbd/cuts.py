"""Minimal cut sets and edge importance for network RBDs.

A *minimal cut set* is a minimal set of components whose joint failure
disconnects the terminals — the dual of the minimal path sets, and the
vocabulary RAS review boards actually speak ("what are the double
failures that take us down?").  Edge Birnbaum importance follows from
factoring: ``I_B(e) = A(system | e up) - A(system | e down)``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Tuple

import networkx as nx

from ..errors import ModelError
from .network import Edge, Node, minimal_path_sets, network_availability


def minimal_cut_sets(
    graph: nx.Graph, source: Node, sink: Node
) -> List[List[Edge]]:
    """All minimal edge cut sets between the terminals.

    Computed as the minimal hitting sets of the minimal path sets
    (every cut must break every path; minimality is checked directly).
    Exponential in the worst case — appropriate for diagram-scale
    graphs, same as exact factoring.
    """
    paths = [frozenset(path) for path in minimal_path_sets(graph, source, sink)]
    if not paths:
        return []
    all_edges = sorted(
        {edge for path in paths for edge in path}, key=str
    )

    def is_cut(candidate: FrozenSet[Edge]) -> bool:
        return all(path & candidate for path in paths)

    cuts: List[FrozenSet[Edge]] = []
    # Breadth-first over subset sizes guarantees minimality by
    # construction: any superset of an already-found cut is skipped.
    for size in range(1, len(all_edges) + 1):
        for candidate_tuple in combinations(all_edges, size):
            candidate = frozenset(candidate_tuple)
            if any(found <= candidate for found in cuts):
                continue
            if is_cut(candidate):
                cuts.append(candidate)
    return [sorted(cut, key=str) for cut in sorted(cuts, key=str)]


def cut_set_order_profile(
    graph: nx.Graph, source: Node, sink: Node
) -> Dict[int, int]:
    """How many minimal cut sets exist of each order (size).

    Order-1 cuts are single points of failure; the profile is the
    standard summary a RAS review asks for first.
    """
    profile: Dict[int, int] = {}
    for cut in minimal_cut_sets(graph, source, sink):
        profile[len(cut)] = profile.get(len(cut), 0) + 1
    return profile


def single_points_of_failure(
    graph: nx.Graph, source: Node, sink: Node
) -> List[Edge]:
    """Edges whose lone failure disconnects the terminals."""
    return [
        cut[0]
        for cut in minimal_cut_sets(graph, source, sink)
        if len(cut) == 1
    ]


def edge_birnbaum_importance(
    graph: nx.Graph, source: Node, sink: Node
) -> List[Tuple[Edge, float]]:
    """Exact Birnbaum importance per edge, largest first.

    ``I_B(e) = A(system | e up) - A(system | e down)``, each term an
    exact factoring evaluation on the conditioned graph.
    """
    results: List[Tuple[Edge, float]] = []
    for a, b, data in graph.edges(data=True):
        if "availability" not in data:
            raise ModelError(f"edge ({a!r}, {b!r}) lacks an availability")
        up_graph = graph.copy()
        up_graph.edges[a, b]["availability"] = 1.0
        down_graph = graph.copy()
        down_graph.remove_edge(a, b)
        up_value = network_availability(up_graph, source, sink)
        down_value = network_availability(down_graph, source, sink)
        edge = tuple(sorted((a, b), key=str))
        results.append((edge, up_value - down_value))
    results.sort(key=lambda item: item[1], reverse=True)
    return results


def upper_bound_unavailability(
    graph: nx.Graph, source: Node, sink: Node
) -> float:
    """First-order cut-set bound: ``sum over cuts of prod q_e``.

    The classic rare-event upper bound on system unavailability; tight
    when component unavailabilities are small, and a fast sanity check
    against the exact factoring result.
    """
    total = 0.0
    for cut in minimal_cut_sets(graph, source, sink):
        product = 1.0
        for a, b in cut:
            product *= 1.0 - graph.edges[a, b]["availability"]
        total += product
    return min(total, 1.0)
