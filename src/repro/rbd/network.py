"""Two-terminal network reliability block diagrams.

GMB lets experts draw non-series-parallel diagrams (bridge structures).
A :class:`NetworkRBD` is an undirected graph whose *edges* carry
component availabilities; the system is up when the source and sink
terminals are connected through up edges.  Evaluation uses the exact
factoring (conditioning) algorithm with memoization; minimal path sets
are extracted with networkx for reporting and for the inclusion-
exclusion cross-check used in tests.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Hashable, List, Tuple

import networkx as nx

from ..errors import ModelError

Node = Hashable
Edge = Tuple[Node, Node]


class NetworkRBD:
    """An undirected two-terminal network with per-edge availabilities."""

    def __init__(self, source: Node, sink: Node) -> None:
        if source == sink:
            raise ModelError("source and sink terminals must differ")
        self.source = source
        self.sink = sink
        self.graph = nx.Graph()
        self.graph.add_node(source)
        self.graph.add_node(sink)

    def add_component(
        self, a: Node, b: Node, availability: float, name: str = ""
    ) -> None:
        """Add a component (edge) between junctions ``a`` and ``b``."""
        if not 0.0 <= availability <= 1.0:
            raise ModelError(
                f"availability must lie in [0, 1], got {availability}"
            )
        if self.graph.has_edge(a, b):
            raise ModelError(
                f"edge ({a!r}, {b!r}) already exists; model parallel "
                "components as separate junction pairs or combine them first"
            )
        self.graph.add_edge(a, b, availability=float(availability), name=name)

    def availability(self) -> float:
        """Exact two-terminal availability by factoring."""
        return network_availability(self.graph, self.source, self.sink)

    def path_sets(self) -> List[List[Edge]]:
        """Minimal path sets as edge lists."""
        return minimal_path_sets(self.graph, self.source, self.sink)


def network_availability(
    graph: nx.Graph, source: Node, sink: Node
) -> float:
    """Two-terminal availability of an undirected edge-weighted graph.

    Each edge must carry an ``availability`` attribute.  Uses factoring:
    condition on an edge being up (contract it) or down (delete it) and
    recurse, with series/degree-based pruning via the base cases.
    Exponential in the worst case, exact always — fine for the diagram
    sizes GMB-style tools handle interactively.
    """
    if source not in graph or sink not in graph:
        raise ModelError("source or sink terminal missing from the graph")
    for a, b, data in graph.edges(data=True):
        if "availability" not in data:
            raise ModelError(f"edge ({a!r}, {b!r}) lacks an availability")
    return _factor(graph, source, sink, {})


def _canonical_key(
    graph: nx.Graph, source: Node, sink: Node
) -> FrozenSet[Tuple[Tuple[str, str], float]]:
    edges = frozenset(
        (tuple(sorted((str(a), str(b)))), round(data["availability"], 15))
        for a, b, data in graph.edges(data=True)
    )
    return frozenset({("terminals", f"{source}->{sink}"), *edges})


def _factor(graph: nx.Graph, source: Node, sink: Node, memo: Dict) -> float:
    if source == sink:
        return 1.0
    if source not in graph or sink not in graph:
        return 0.0
    if not nx.has_path(graph, source, sink):
        return 0.0
    # Only the component containing the terminals matters.
    component = nx.node_connected_component(graph, source)
    if sink not in component:
        return 0.0
    working = graph.subgraph(component).copy()

    key = _canonical_key(working, source, sink)
    if key in memo:
        return memo[key]

    edge = _pick_edge(working, source)
    a, b = edge
    p = working.edges[a, b]["availability"]

    # Condition DOWN: delete the edge.
    down_graph = working.copy()
    down_graph.remove_edge(a, b)
    down_value = _factor(down_graph, source, sink, memo)

    # Condition UP: contract the edge.
    up_graph = _contract(working, a, b)
    new_source = a if source in (a, b) else source
    new_sink = a if sink in (a, b) else sink
    if source in (a, b) and sink in (a, b):
        up_value = 1.0
    else:
        up_value = _factor(up_graph, new_source, new_sink, memo)

    value = p * up_value + (1.0 - p) * down_value
    memo[key] = value
    return value


def _pick_edge(graph: nx.Graph, source: Node) -> Edge:
    """Prefer an edge at the source terminal (classic factoring heuristic)."""
    neighbors = list(graph.neighbors(source))
    if neighbors:
        return (source, neighbors[0])
    a, b = next(iter(graph.edges()))
    return (a, b)


def _contract(graph: nx.Graph, a: Node, b: Node) -> nx.Graph:
    """Contract edge (a, b) into node ``a``, merging parallel edges.

    Parallel edges produced by the contraction combine as
    ``1 - (1-p)(1-q)`` since either surviving path suffices.
    """
    contracted = nx.Graph()
    contracted.add_nodes_from(
        node for node in graph.nodes() if node != b
    )
    for x, y, data in graph.edges(data=True):
        if {x, y} == {a, b}:
            continue
        nx_node = a if x == b else x
        ny_node = a if y == b else y
        if nx_node == ny_node:
            continue
        p = data["availability"]
        if contracted.has_edge(nx_node, ny_node):
            existing = contracted.edges[nx_node, ny_node]["availability"]
            combined = 1.0 - (1.0 - existing) * (1.0 - p)
            contracted.edges[nx_node, ny_node]["availability"] = combined
        else:
            contracted.add_edge(nx_node, ny_node, availability=p)
    return contracted


def minimal_path_sets(
    graph: nx.Graph, source: Node, sink: Node
) -> List[List[Edge]]:
    """All minimal source-sink path sets, as sorted edge lists."""
    if source not in graph or sink not in graph:
        raise ModelError("source or sink terminal missing from the graph")
    paths = []
    for node_path in nx.all_simple_paths(graph, source, sink):
        edges = [
            tuple(sorted((node_path[i], node_path[i + 1]), key=str))
            for i in range(len(node_path) - 1)
        ]
        paths.append(sorted(edges, key=str))
    paths.sort(key=str)
    return paths


def availability_by_inclusion_exclusion(
    graph: nx.Graph, source: Node, sink: Node
) -> float:
    """Exact availability via inclusion-exclusion over minimal path sets.

    Exponential in the number of path sets; used as the independent
    cross-check against :func:`network_availability` in the test suite.
    """
    paths = minimal_path_sets(graph, source, sink)
    if not paths:
        return 0.0
    total = 0.0
    for r in range(1, len(paths) + 1):
        sign = 1.0 if r % 2 == 1 else -1.0
        for subset in itertools.combinations(paths, r):
            union_edges = set()
            for path in subset:
                union_edges.update(path)
            product = 1.0
            for a, b in union_edges:
                product *= graph.edges[a, b]["availability"]
            total += sign * product
    return min(max(total, 0.0), 1.0)
