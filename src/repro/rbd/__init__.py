"""Reliability block diagram engine (the GMB RBD substrate).

Supports the structured combinators RAScad's model generation emits
(series, parallel, k-of-N) plus general two-terminal network diagrams
(bridge structures) evaluated by factoring, for GMB power users.
"""

from .blocks import Block, Leaf, Series, Parallel, KofN, series, parallel, k_of_n
from .network import NetworkRBD, network_availability, minimal_path_sets
from .cuts import (
    minimal_cut_sets,
    cut_set_order_profile,
    single_points_of_failure,
    edge_birnbaum_importance,
    upper_bound_unavailability,
)

__all__ = [
    "Block",
    "Leaf",
    "Series",
    "Parallel",
    "KofN",
    "series",
    "parallel",
    "k_of_n",
    "NetworkRBD",
    "network_availability",
    "minimal_path_sets",
    "minimal_cut_sets",
    "cut_set_order_profile",
    "single_points_of_failure",
    "edge_birnbaum_importance",
    "upper_bound_unavailability",
]
