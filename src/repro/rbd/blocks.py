"""Structured reliability block diagrams.

Blocks form a tree.  Evaluation assumes statistically independent
components — the same assumption MG makes ("failures and repairs for
different component types are independent").  The probability an RBD
node is up is computed bottom-up:

* ``Leaf`` — a fixed probability or a named input resolved at evaluation.
* ``Series`` — product of child probabilities.
* ``Parallel`` — 1 minus product of child unavailabilities.
* ``KofN`` — at least k of the children up, heterogeneous children
  supported via a dynamic program over the count distribution.

The same combinators evaluate availability (plug in steady-state
availabilities) or mission reliability (plug in ``R_i(t)``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import ModelError

ValueMap = Mapping[str, float]


def _check_probability(value: float, where: str) -> float:
    if not 0.0 <= value <= 1.0 + 1e-12:
        raise ModelError(f"{where} must lie in [0, 1], got {value}")
    return min(float(value), 1.0)


class Block(ABC):
    """A node of a reliability block diagram."""

    name: str

    @abstractmethod
    def availability(self, values: Optional[ValueMap] = None) -> float:
        """Probability this block is up, given leaf input values."""

    @abstractmethod
    def leaves(self) -> List["Leaf"]:
        """All leaf blocks in document order."""

    def unavailability(self, values: Optional[ValueMap] = None) -> float:
        return 1.0 - self.availability(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class Leaf(Block):
    """A terminal block.

    Either carries a fixed probability, or names an input to be resolved
    from the ``values`` mapping at evaluation time (the hierarchical MG
    translator binds these to Markov-chain availabilities).
    """

    def __init__(self, name: str, probability: Optional[float] = None) -> None:
        self.name = name
        self._probability = (
            None
            if probability is None
            else _check_probability(probability, f"leaf {name!r} probability")
        )

    def availability(self, values: Optional[ValueMap] = None) -> float:
        if values is not None and self.name in values:
            return _check_probability(
                values[self.name], f"value for leaf {self.name!r}"
            )
        if self._probability is None:
            raise ModelError(
                f"leaf {self.name!r} has no fixed probability and no value "
                "was supplied"
            )
        return self._probability

    def leaves(self) -> List["Leaf"]:
        return [self]


class _Composite(Block):
    def __init__(self, name: str, children: Sequence[Block]) -> None:
        if not children:
            raise ModelError(f"composite block {name!r} needs children")
        self.name = name
        self.children = list(children)

    def leaves(self) -> List[Leaf]:
        found: List[Leaf] = []
        for child in self.children:
            found.extend(child.leaves())
        return found


class Series(_Composite):
    """Up iff every child is up."""

    def availability(self, values: Optional[ValueMap] = None) -> float:
        product = 1.0
        for child in self.children:
            product *= child.availability(values)
        return product


class Parallel(_Composite):
    """Up iff at least one child is up."""

    def availability(self, values: Optional[ValueMap] = None) -> float:
        product = 1.0
        for child in self.children:
            product *= 1.0 - child.availability(values)
        return 1.0 - product


class KofN(_Composite):
    """Up iff at least ``k`` of the N children are up.

    Children need not be identical; the count distribution is built by a
    dynamic program (Poisson-binomial), so evaluation is O(N^2).
    """

    def __init__(self, name: str, k: int, children: Sequence[Block]) -> None:
        super().__init__(name, children)
        if not 1 <= k <= len(children):
            raise ModelError(
                f"k-of-N block {name!r}: k={k} must satisfy "
                f"1 <= k <= {len(children)}"
            )
        self.k = int(k)

    def availability(self, values: Optional[ValueMap] = None) -> float:
        probabilities = [child.availability(values) for child in self.children]
        # distribution[j] = P(exactly j children up so far)
        distribution = np.zeros(len(probabilities) + 1)
        distribution[0] = 1.0
        for i, p in enumerate(probabilities):
            upper = i + 1
            distribution[1 : upper + 1] = (
                distribution[1 : upper + 1] * (1.0 - p)
                + distribution[0:upper] * p
            )
            distribution[0] *= 1.0 - p
        return float(distribution[self.k :].sum())


def series(*children: Union[Block, float], name: str = "series") -> Series:
    """Convenience constructor; bare floats become anonymous leaves."""
    return Series(name, _coerce(children))


def parallel(*children: Union[Block, float], name: str = "parallel") -> Parallel:
    """Convenience constructor; bare floats become anonymous leaves."""
    return Parallel(name, _coerce(children))


def k_of_n(
    k: int, *children: Union[Block, float], name: str = "k-of-n"
) -> KofN:
    """Convenience constructor; bare floats become anonymous leaves."""
    return KofN(name, k, _coerce(children))


def _coerce(children: Iterable[Union[Block, float]]) -> List[Block]:
    coerced: List[Block] = []
    for position, child in enumerate(children):
        if isinstance(child, Block):
            coerced.append(child)
        else:
            coerced.append(Leaf(f"leaf{position}", float(child)))
    return coerced
