"""Content identity: canonical JSON encoding and SHA-256 digests.

Every durable identity the system mints — engine cache keys, job ids,
cluster shard and workload ids, registry version digests, study ids,
telemetry event ids and state digests — is a SHA-256 over one
canonical JSON encoding.  Before this package each subsystem carried
its own ``json.dumps(..., sort_keys=True, separators=(",", ":"))`` +
``hashlib.sha256`` pair; they are consolidated here so the encoding
can never drift between subsystems.  The helpers are bit-compatible
with every id minted before the consolidation (locked by the
golden-digest fixture in ``tests/ident``).

* :func:`canonical_json` — the one canonical byte encoding.
* :func:`content_digest` — full hex digest of a JSON document.
* :func:`digest_id` — prefixed, truncated id (``job-``/``evt-``/…).
* :func:`sha256_hex` / :func:`sha256_bytes` — raw-material digests.
* :func:`digest_int64` — first 8 digest bytes as a deterministic
  unsigned integer (task seeds, rendezvous scores, backoff jitter).
"""

from .digest import (
    canonical_json,
    content_digest,
    digest_id,
    digest_int64,
    sha256_bytes,
    sha256_hex,
)

__all__ = [
    "canonical_json",
    "content_digest",
    "digest_id",
    "digest_int64",
    "sha256_bytes",
    "sha256_hex",
]
