"""The digest helpers behind every content identity in the system.

Canonical means: mapping keys sorted, no whitespace, UTF-8 — so the
digest is independent of field order and formatting, and two documents
digest equal iff they describe the same content.  Floats are encoded
by ``json``'s ``repr``-based formatting, which round-trips IEEE
doubles exactly; callers that need the stronger ``f:``-tagged float
discipline (the engine's cache keys) tag values before encoding.

These helpers are identity-critical: changing the encoding forks every
job id, shard id, version digest, study id, and event id in every
existing store.  ``tests/ident/golden_digests.json`` pins the current
behavior; touch this module only with that fixture in hand.
"""

from __future__ import annotations

import hashlib
import json
from typing import Union


def canonical_json(document: object) -> bytes:
    """The canonical byte encoding of a JSON-serializable document."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def sha256_bytes(material: Union[bytes, str]) -> bytes:
    """Raw 32-byte SHA-256 of ``material`` (str encodes as UTF-8)."""
    if isinstance(material, str):
        material = material.encode("utf-8")
    return hashlib.sha256(material).digest()


def sha256_hex(material: Union[bytes, str]) -> str:
    """Hex SHA-256 of raw material (str encodes as UTF-8)."""
    if isinstance(material, str):
        material = material.encode("utf-8")
    return hashlib.sha256(material).hexdigest()


def content_digest(document: object) -> str:
    """Full hex SHA-256 of a document's canonical JSON encoding."""
    return sha256_hex(canonical_json(document))


def digest_id(prefix: str, document: object, chars: int = 32) -> str:
    """A prefixed, truncated content id: ``{prefix}-{hex[:chars]}``.

    The house id format — ``job-``, ``evt-``, ``study-``, ``wl-``
    (32 hex chars) and ``shard-`` (24) all mint through here.
    """
    return f"{prefix}-{content_digest(document)[:chars]}"


def digest_int64(material: Union[bytes, str]) -> int:
    """The first 8 digest bytes as an unsigned big-endian integer.

    The deterministic-integer workhorse: per-task seeds, rendezvous
    placement scores, and backoff jitter all derive from it, so the
    same material maps to the same integer on every host and run.
    """
    return int.from_bytes(sha256_bytes(material)[:8], "big")
