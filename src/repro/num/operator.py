"""Generator matrices as operators, dense or sparse.

A :class:`GeneratorOperator` wraps the infinitesimal generator of a
CTMC in either dense ``ndarray`` or ``scipy.sparse`` CSR form and is
the only thing solver code ever touches.  It is built directly from a
:class:`~repro.markov.chain.MarkovChain`'s transitions — the sparse
path never materialises the ``n x n`` matrix — and the representation
is auto-selected from the state count and fill-in unless the caller
forces one.  The row-sum / off-diagonal validation that used to be
copy-pasted (or privately imported) across ``markov/steady_state.py``,
``markov/transient.py`` and ``markov/mttf.py`` lives here, once, in
:func:`validate_generator`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

import numpy as np
from scipy import sparse

from ..errors import SolverError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..markov.chain import MarkovChain

#: Auto-selection thresholds: sparse storage is chosen when the chain
#: has at least this many states *and* the generator is at most this
#: dense.  Below the state floor, dense BLAS wins regardless of fill.
SPARSE_STATE_FLOOR = 200
SPARSE_DENSITY_CEILING = 0.25


def validate_generator(matrix: Union[np.ndarray, sparse.spmatrix]) -> None:
    """The one shared CTMC generator check (rows sum to zero, rates >= 0).

    Raises :class:`~repro.errors.SolverError` with the same messages the
    pre-refactor per-module copies produced, for dense and sparse inputs
    alike.
    """
    if sparse.issparse(matrix):
        csr = matrix.tocsr()
        n = csr.shape[0]
        coo = csr.tocoo()
        off_diag = coo.data[coo.row != coo.col]
        if off_diag.size and (off_diag < -1e-15).any():
            raise SolverError("generator has negative off-diagonal rates")
        row_sums = np.abs(np.asarray(csr.sum(axis=1)).ravel())
        scale = max(1.0, float(np.abs(coo.data).max()) if coo.nnz else 0.0)
        if (row_sums > 1e-8 * scale).any():
            raise SolverError("generator rows do not sum to zero")
        if n == 0:
            raise SolverError("empty generator")
        return
    q = np.asarray(matrix, dtype=float)
    n = q.shape[0]
    off_diag = q - np.diag(np.diag(q))
    if (off_diag < -1e-15).any():
        raise SolverError("generator has negative off-diagonal rates")
    row_sums = np.abs(q.sum(axis=1))
    scale = max(1.0, float(np.abs(q).max()))
    if (row_sums > 1e-8 * scale).any():
        raise SolverError("generator rows do not sum to zero")
    if n == 0:
        raise SolverError("empty generator")


def _auto_representation(n: int, nnz: int) -> str:
    if n >= SPARSE_STATE_FLOOR and nnz <= SPARSE_DENSITY_CEILING * n * n:
        return "sparse"
    return "dense"


class GeneratorOperator:
    """A CTMC generator usable as a linear operator, dense or CSR.

    Construct via :meth:`from_chain` / :meth:`from_matrix` /
    :func:`as_operator`; the class itself never densifies a sparse
    generator unless a dense-only backend asks it to (and then caches
    the result).
    """

    __slots__ = ("representation", "_dense", "_sparse", "_csc_t", "_diagonal")

    def __init__(
        self,
        matrix: Union[np.ndarray, sparse.spmatrix],
        representation: Optional[str] = None,
    ) -> None:
        self._dense: Optional[np.ndarray] = None
        self._sparse = None
        self._csc_t = None
        self._diagonal: Optional[np.ndarray] = None
        if sparse.issparse(matrix):
            self._sparse = matrix.tocsr()
            self.representation = representation or "sparse"
        else:
            self._dense = np.asarray(matrix, dtype=float)
            self.representation = representation or "dense"

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_chain(
        cls,
        chain: "MarkovChain",
        representation: str = "auto",
        validate: bool = True,
    ) -> "GeneratorOperator":
        """Build the generator straight from a chain's transitions.

        The sparse path assembles CSR from the transition list without
        ever allocating the dense matrix; the dense path defers to
        ``chain.generator_matrix()`` so dense numerics stay bit-identical
        with the pre-refactor code.
        """
        n = chain.n_states
        if representation not in ("auto", "dense", "sparse"):
            raise SolverError(
                f"unknown representation {representation!r}; "
                "expected one of ['auto', 'dense', 'sparse']"
            )
        if representation == "auto":
            transitions = chain.transitions()
            representation = _auto_representation(n, len(transitions) + n)
        if representation == "dense":
            operator = cls(chain.generator_matrix())
        else:
            rows, cols, data = [], [], []
            exit_rates = np.zeros(n)
            index = {name: i for i, name in enumerate(chain.state_names)}
            for transition in chain.transitions():
                i = index[transition.source]
                j = index[transition.target]
                rows.append(i)
                cols.append(j)
                data.append(transition.rate)
                exit_rates[i] += transition.rate
            rows.extend(range(n))
            cols.extend(range(n))
            data.extend(-exit_rates)
            matrix = sparse.coo_matrix(
                (data, (rows, cols)), shape=(n, n), dtype=float
            ).tocsr()
            operator = cls(matrix)
        if validate:
            operator.validate()
        return operator

    @classmethod
    def from_matrix(
        cls,
        matrix: Union[np.ndarray, sparse.spmatrix],
        representation: str = "auto",
        validate: bool = True,
    ) -> "GeneratorOperator":
        """Wrap an existing dense or sparse square generator."""
        if sparse.issparse(matrix):
            csr = matrix.tocsr()
            if csr.shape[0] != csr.shape[1]:
                raise SolverError(
                    f"generator must be square, got shape {csr.shape}"
                )
            operator = cls(csr)
        else:
            q = np.asarray(matrix, dtype=float)
            if q.ndim != 2 or q.shape[0] != q.shape[1]:
                raise SolverError(
                    f"generator must be square, got shape {q.shape}"
                )
            operator = cls(q)
        if representation not in ("auto", "dense", "sparse"):
            raise SolverError(
                f"unknown representation {representation!r}; "
                "expected one of ['auto', 'dense', 'sparse']"
            )
        if representation != "auto" and representation != operator.representation:
            operator = operator.with_representation(representation)
        if validate:
            operator.validate()
        return operator

    def with_representation(self, representation: str) -> "GeneratorOperator":
        """This generator converted to the requested storage."""
        if representation == self.representation:
            return self
        if representation == "dense":
            return GeneratorOperator(self.dense())
        if representation == "sparse":
            return GeneratorOperator(self.sparse())
        raise SolverError(
            f"unknown representation {representation!r}; "
            "expected one of ['dense', 'sparse']"
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of states."""
        if self._sparse is not None and self.representation == "sparse":
            return int(self._sparse.shape[0])
        return int(self.dense().shape[0])

    @property
    def nnz(self) -> int:
        """Structurally non-zero entries of the stored generator."""
        if self.representation == "sparse":
            return int(self.sparse().nnz)
        return int(np.count_nonzero(self.dense()))

    def validate(self) -> None:
        """Run :func:`validate_generator` on the stored matrix."""
        matrix = self._sparse if self.representation == "sparse" else self._dense
        if matrix is None:  # pragma: no cover - construction invariant
            matrix = self.dense()
        validate_generator(matrix)

    def dense(self) -> np.ndarray:
        """The dense generator (cached; treat as read-only)."""
        if self._dense is None:
            self._dense = np.asarray(self._sparse.toarray(), dtype=float)
        return self._dense

    def sparse(self) -> sparse.csr_matrix:
        """The CSR generator (cached; treat as read-only)."""
        if self._sparse is None:
            self._sparse = sparse.csr_matrix(self._dense)
        return self._sparse

    def diagonal(self) -> np.ndarray:
        """The generator diagonal (total exit rates, negated)."""
        if self._diagonal is None:
            if self.representation == "sparse":
                self._diagonal = np.asarray(self.sparse().diagonal(), dtype=float)
            else:
                self._diagonal = self.dense().diagonal().copy()
        return self._diagonal

    def uniformization_rate(self) -> float:
        """``-min(diag Q)`` — the raw uniformization rate Lambda."""
        if self.n == 0:
            raise SolverError("empty generator")
        return float(-self.diagonal().min())

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, v: np.ndarray) -> np.ndarray:
        """Row-vector product ``v @ Q`` without densifying."""
        if self.representation == "sparse":
            if self._csc_t is None:
                self._csc_t = self.sparse().transpose().tocsr()
            return self._csc_t @ v
        return v @ self.dense()


def as_operator(
    model: Union["MarkovChain", GeneratorOperator, np.ndarray, sparse.spmatrix],
    representation: str = "auto",
    validate: bool = True,
) -> GeneratorOperator:
    """Coerce a chain, matrix or operator into a :class:`GeneratorOperator`.

    This replaces the per-module ``_as_generator`` helpers: it is the one
    place generators are constructed and (by default) validated.
    """
    from ..markov.chain import MarkovChain

    if isinstance(model, GeneratorOperator):
        if representation != "auto" and representation != model.representation:
            return model.with_representation(representation)
        return model
    if isinstance(model, MarkovChain):
        return GeneratorOperator.from_chain(
            model, representation=representation, validate=validate
        )
    return GeneratorOperator.from_matrix(
        model, representation=representation, validate=validate
    )
