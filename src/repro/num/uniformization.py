"""The one uniformization core shared by every transient measure.

Jensen's uniformization writes ``exp(Q t) = sum_k pois(k; lam t) P^k``
with ``P = I + Q/lam``.  Before this module, ``transient_probabilities``,
``reliability_at``, ``interval_availability`` and the reward integrals
each re-derived the truncation point and re-ran the whole
vector-matrix power sequence per time point.  Here the Poisson
machinery lives once, ``P`` is applied as an *operator* (dense matmul
or sparse matvec — never densifying a sparse generator), and
:func:`transient_grid` evaluates a whole time grid from a single pass
over the power sequence ``v_k = p0 P^k``.

The grid evaluator accumulates each time point's truncated series in
the same term order, with the same per-point truncation and the same
renormalisation as the single-point path, so grid results are
*bit-identical* to per-point evaluation — the regression suite asserts
this at 1e-12 and in fact it holds exactly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.special import gammaln
from scipy.stats import poisson

from ..errors import SolverError
from .operator import GeneratorOperator

#: Above this ``lam * t`` the truncated series needs millions of terms;
#: ``"auto"`` transient dispatch switches to an implicit ODE solve.
STIFFNESS_LIMIT = 1e6


def poisson_pmf_series(mean: float, n_terms: int) -> np.ndarray:
    """Poisson pmf values 0..n_terms-1, computed stably in log space."""
    k = np.arange(n_terms, dtype=float)
    log_pmf = k * np.log(mean) - mean - gammaln(k + 1.0) if mean > 0 else (
        np.where(k == 0, 0.0, -np.inf)
    )
    return np.exp(log_pmf)


def poisson_tail(mean: float, m: int) -> float:
    """P(Poisson(mean) > m)."""
    return float(poisson.sf(m, mean))


def poisson_truncation(mean: float, tol: float) -> int:
    """Terms needed so the truncated Poisson mass stays below ``tol``.

    Returns the count of series terms (truncation point + 1).
    """
    if mean == 0.0:
        return 1
    n_terms = int(mean + 10.0 * np.sqrt(mean) + 20.0)
    while poisson_tail(mean, n_terms) > tol:
        n_terms = int(n_terms * 1.5) + 1
        if n_terms > 50_000_000:
            raise SolverError(
                f"uniformization would need more than {n_terms} terms; "
                "the horizon is too stiff — use transient_probabilities_ode"
            )
    return n_terms + 1


def uniformized(
    op: GeneratorOperator,
) -> Tuple[Callable[[np.ndarray], np.ndarray], float]:
    """The uniformized DTMC as an operator: ``(apply, lam)``.

    ``apply(v)`` computes ``v @ P`` with ``P = I + Q/lam``; for dense
    storage ``P`` is materialised once (bit-identical to the historic
    dense path), for sparse storage the product stays matrix-free.
    ``lam`` is 0.0 for an all-absorbing generator, in which case
    ``apply`` is the identity.
    """
    lam = op.uniformization_rate()
    if lam == 0.0:
        return (lambda v: v), 0.0
    lam *= 1.0 + 1e-9  # guard against a zero row in P from rounding
    if op.representation == "sparse":
        return (lambda v: v + op.apply(v) / lam), lam
    p = np.eye(op.n) + op.dense() / lam
    return (lambda v: v @ p), lam


def _check_initial(p0: Optional[np.ndarray], n: int) -> np.ndarray:
    if p0 is None:
        p0 = np.zeros(n)
        p0[0] = 1.0
    p0 = np.asarray(p0, dtype=float)
    if p0.shape != (n,):
        raise SolverError(f"initial vector has shape {p0.shape}, expected ({n},)")
    if abs(p0.sum() - 1.0) > 1e-9 or (p0 < -1e-12).any():
        raise SolverError("initial vector is not a probability distribution")
    return p0


def transient_grid(
    op: GeneratorOperator,
    times: Sequence[float],
    p0: Optional[np.ndarray] = None,
    tol: float = 1e-12,
) -> List[np.ndarray]:
    """State distributions at every time point from one power sequence.

    The vector sequence ``v_k = p0 P^k`` is computed once, up to the
    largest truncation point any time on the grid needs; each time
    point accumulates its own Poisson-weighted, renormalised series.
    Cost is one sweep of vector-operator products for the whole grid
    instead of one per point — the >=5x win on a 65-point curve — while
    every returned vector is bit-identical to the per-point path.
    """
    times = [float(t) for t in times]
    for t in times:
        if t < 0:
            raise SolverError(f"time must be non-negative, got {t}")
    p0 = _check_initial(p0, op.n)
    if not times:
        return []
    apply_p, lam = uniformized(op)
    if lam == 0.0:
        return [p0.copy() for _ in times]

    n_terms = [
        1 if t == 0.0 else poisson_truncation(lam * t, tol) for t in times
    ]
    weights = [
        None if t == 0.0 else poisson_pmf_series(lam * t, terms)
        for t, terms in zip(times, n_terms)
    ]
    accumulators = [np.zeros(op.n) for _ in times]
    max_terms = max(n_terms)
    v = p0.copy()
    for k in range(max_terms):
        for i, w in enumerate(weights):
            if w is not None and k < n_terms[i]:
                accumulators[i] += w[k] * v
        if k + 1 < max_terms:
            v = apply_p(v)

    results: List[np.ndarray] = []
    for i, t in enumerate(times):
        if t == 0.0:
            results.append(p0.copy())
            continue
        mass = weights[i].sum()
        if mass <= 0:
            raise SolverError("Poisson weights vanished; horizon too stiff")
        results.append(np.clip(accumulators[i] / mass, 0.0, 1.0))
    return results


def transient_distribution(
    op: GeneratorOperator,
    t: float,
    p0: Optional[np.ndarray] = None,
    tol: float = 1e-12,
) -> np.ndarray:
    """State distribution at a single time by uniformization."""
    return transient_grid(op, [t], p0=p0, tol=tol)[0]


def interval_reward_value(
    op: GeneratorOperator,
    horizon: float,
    rewards: np.ndarray,
    p0: np.ndarray,
    tol: float = 1e-12,
) -> float:
    """Time-averaged expected reward over ``(0, horizon)``.

    The truncated-series integral
    ``(1/(T lam)) sum_k P(Poisson(lam T) > k) (p0 P^k r)`` with the
    uniformized DTMC applied as an operator.
    """
    apply_p, lam = uniformized(op)
    if lam == 0.0:
        return float(p0 @ rewards)
    mean = lam * horizon
    n_terms = poisson_truncation(mean, tol)
    # Integral weights: int_0^T pois(k; lam s) ds = sf(k, mean) / lam.
    ks = np.arange(n_terms)
    weights = poisson.sf(ks, mean) / lam
    acc = 0.0
    v = p0.copy()
    for k in range(n_terms):
        acc += weights[k] * float(v @ rewards)
        if weights[k] < tol * max(acc, 1.0) and k > mean:
            break
        v = apply_p(v)
    return acc / horizon


def stiffness(op: GeneratorOperator, horizon: float) -> float:
    """``lam * horizon`` — how many uniformization terms the horizon costs."""
    return op.uniformization_rate() * float(horizon)
