"""Solver configuration shared by every layer of the stack.

Before this package existed each layer plumbed its own method strings
("direct"/"gth"/"power" for steady state, "uniformization"/"ode" for
transients) independently through the engine, the service, the job
runner and the CLI.  :class:`SolverOptions` collapses those into one
frozen, hashable value that canonicalises legacy aliases at
construction time, so two spellings of the same configuration compare
(and hash, and digest) equal everywhere: the engine cache, the service
micro-batcher and the job store all key on :meth:`cache_token`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Mapping, Optional, Union

from ..errors import SolverError

#: Legacy steady-state method spellings accepted everywhere a backend
#: name is.  ``direct`` predates the registry and means the dense
#: direct solve; ``dense`` is accepted for symmetry with ``sparse``.
STEADY_ALIASES = {
    "direct": "dense-direct",
    "dense": "dense-direct",
    "sparse": "sparse-direct",
}

TRANSIENT_METHODS = ("uniformization", "expm", "ode", "auto")
REPRESENTATIONS = ("auto", "dense", "sparse")


@dataclass(frozen=True)
class SolverOptions:
    """Everything the numerical layer lets a caller choose.

    Attributes:
        steady_method: Registered steady-state backend name (see
            :func:`repro.num.backend_names`); legacy aliases such as
            ``"direct"`` are canonicalised at construction.
        transient_method: ``"uniformization"`` (production path),
            ``"expm"``, ``"ode"``, or ``"auto"`` (uniformization unless
            the horizon is too stiff).
        representation: Generator storage — ``"auto"`` picks dense or
            sparse CSR from the state count and fill-in, ``"dense"`` /
            ``"sparse"`` force one.
        tolerance: Convergence tolerance for iterative steady-state
            backends (power iteration, GMRES).
        uniformization_tol: Truncation tolerance for the Poisson series
            in uniformization-based transient/interval measures.
    """

    steady_method: str = "dense-direct"
    transient_method: str = "uniformization"
    representation: str = "auto"
    tolerance: float = 1e-12
    uniformization_tol: float = 1e-12

    def __post_init__(self) -> None:
        steady = STEADY_ALIASES.get(self.steady_method, self.steady_method)
        object.__setattr__(self, "steady_method", steady)
        from .backends import require_backend_name

        require_backend_name(steady)
        if self.transient_method not in TRANSIENT_METHODS:
            raise SolverError(
                f"unknown transient method {self.transient_method!r}; "
                f"expected one of {sorted(TRANSIENT_METHODS)}"
            )
        if self.representation not in REPRESENTATIONS:
            raise SolverError(
                f"unknown representation {self.representation!r}; "
                f"expected one of {sorted(REPRESENTATIONS)}"
            )
        for name in ("tolerance", "uniformization_tol"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not 0 < float(value) <= 1:
                raise SolverError(
                    f"{name} must be a number in (0, 1], got {value!r}"
                )
            object.__setattr__(self, name, float(value))

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def with_changes(self, **changes: Any) -> "SolverOptions":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready mapping; round-trips through :meth:`from_dict`."""
        return {
            "steady_method": self.steady_method,
            "transient_method": self.transient_method,
            "representation": self.representation,
            "tolerance": self.tolerance,
            "uniformization_tol": self.uniformization_tol,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolverOptions":
        """Build options from a mapping, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise SolverError(
                f"solver options must be a mapping, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SolverError(
                f"unknown solver option(s) {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs = {}
        for key in known & set(payload):
            value = payload[key]
            if key in ("steady_method", "transient_method", "representation"):
                if not isinstance(value, str):
                    raise SolverError(
                        f"solver option {key!r} must be a string, got {value!r}"
                    )
            kwargs[key] = value
        return cls(**kwargs)

    def cache_token(self) -> str:
        """Canonical string identifying these options in cache keys.

        Two option values with the same token solve identically; the
        engine digests this token into ``block_digest``/``model_digest``
        so distinct backends can never alias each other's cached
        results.  The default options deliberately canonicalise to the
        token of the pre-registry ``"direct"`` method.
        """
        return (
            f"steady={self.steady_method}"
            f";transient={self.transient_method}"
            f";repr={self.representation}"
            f";tol={self.tolerance!r}"
            f";utol={self.uniformization_tol!r}"
        )


#: The configuration every layer falls back to: the dense direct solve
#: that reproduces the paper's numbers bit-for-bit.
DEFAULT_OPTIONS = SolverOptions()


def as_options(
    value: Union[None, str, Mapping[str, Any], SolverOptions],
) -> SolverOptions:
    """Coerce any accepted spelling into canonical :class:`SolverOptions`.

    Accepts ``None`` (defaults), a legacy method string such as
    ``"direct"`` or ``"gth"``, a mapping of option fields, or an
    existing options value (returned unchanged).
    """
    if value is None:
        return DEFAULT_OPTIONS
    if isinstance(value, SolverOptions):
        return value
    if isinstance(value, str):
        return SolverOptions(steady_method=value)
    if isinstance(value, Mapping):
        return SolverOptions.from_dict(value)
    raise SolverError(
        "solver options must be a method name, a mapping or SolverOptions; "
        f"got {type(value).__name__}"
    )
