"""Registry of named steady-state solver backends.

Each backend declares the representation it can consume (``"dense"``,
``"sparse"`` or ``"any"``) and the dispatcher coerces the operator as
needed — capability-based dispatch instead of per-module method-string
``if``/``elif`` ladders.  The built-in backends:

``dense-direct``
    Replace one balance equation with the normalisation constraint and
    solve with LAPACK.  The production path; numerically bit-identical
    to the pre-registry ``"direct"`` method.
``gth``
    Grassmann-Taksar-Heyman elimination — subtraction-free, so immune
    to cancellation on stiff generators.  Dense only.
``power``
    Uniformized power iteration; runs matrix-free on either
    representation and serves as the independent validation oracle.
``sparse-direct``
    The same normalised system factorised by ``scipy.sparse.linalg.spsolve``
    (SuperLU) on CSR storage — the large-model production path.
``sparse-iterative``
    GMRES with a diagonal (Jacobi) preconditioner on the same system;
    for models too large to factorise.

Unknown names raise :class:`~repro.errors.UnknownBackendError`, which
lists the valid names.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import LinearOperator, gmres, spsolve

from ..errors import SolverError, UnknownBackendError
from .operator import GeneratorOperator, as_operator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..markov.chain import MarkovChain
    from .options import SolverOptions

#: Iteration cap for the power-iteration oracle (matches the historic
#: ``solve_steady_state_power`` default).
MAX_POWER_ITERATIONS = 2_000_000


@dataclass(frozen=True)
class SteadyBackend:
    """A named steady-state solver with its capability declaration.

    Attributes:
        name: Registry key (what ``SolverOptions.steady_method`` names).
        representation: Storage the solver consumes — ``"dense"``,
            ``"sparse"``, or ``"any"`` for matrix-free methods.
        summary: One-line description for docs and error messages.
        solve: ``(operator, options) -> pi`` implementation.
    """

    name: str
    representation: str
    summary: str
    solve: Callable[[GeneratorOperator, "SolverOptions"], np.ndarray]


_REGISTRY: Dict[str, SteadyBackend] = {}


def register_backend(backend: SteadyBackend) -> SteadyBackend:
    """Register (or replace) a steady-state backend by name."""
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def steady_backends() -> Dict[str, SteadyBackend]:
    """A copy of the registry, for introspection and docs."""
    return dict(_REGISTRY)


def require_backend_name(name: str) -> str:
    """Validate a backend name, raising the typed error on misses."""
    if name not in _REGISTRY:
        raise UnknownBackendError(name, backend_names())
    return name


def get_backend(name: str) -> SteadyBackend:
    """Look up a backend; unknown names raise :class:`UnknownBackendError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, backend_names()) from None


# ----------------------------------------------------------------------
# implementations
# ----------------------------------------------------------------------
def _finish(pi: np.ndarray, what: str) -> np.ndarray:
    if not np.isfinite(pi).all():
        raise SolverError(f"{what} produced non-finite values")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError(f"{what} produced a zero vector")
    return pi / total


def _solve_dense_direct(
    op: GeneratorOperator, options: "SolverOptions"
) -> np.ndarray:
    q = op.dense()
    n = q.shape[0]
    if n == 1:
        return np.array([1.0])
    a = q.T.copy()
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        pi = np.linalg.solve(a, b)
    except np.linalg.LinAlgError:
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    return _finish(pi, "direct steady-state solve")


def _solve_gth(op: GeneratorOperator, options: "SolverOptions") -> np.ndarray:
    q = op.dense()
    n = q.shape[0]
    if n == 1:
        return np.array([1.0])
    p = q.copy().astype(float)
    # Work on the off-diagonal rate matrix; the diagonal is implied.
    np.fill_diagonal(p, 0.0)
    for k in range(n - 1, 0, -1):
        total = p[k, :k].sum()
        if total <= 0.0:
            # State k cannot reach eliminated block; treat as unreachable
            # in steady state by leaving a zero pivot (handled below).
            continue
        p[:k, :k] += np.outer(p[:k, k], p[k, :k]) / total

    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        total = p[k, :k].sum()
        if total <= 0.0:
            pi[k] = 0.0
            continue
        pi[k] = pi[:k] @ p[:k, k] / total
    norm = pi.sum()
    if norm <= 0 or not np.isfinite(norm):
        raise SolverError("GTH elimination failed to normalise")
    return pi / norm


def power_iteration(
    op: GeneratorOperator,
    tol: float = 1e-12,
    max_iterations: int = MAX_POWER_ITERATIONS,
) -> np.ndarray:
    """Uniformized power iteration, matrix-free on either representation."""
    n = op.n
    if n == 1:
        return np.array([1.0])
    lam = op.uniformization_rate() * 1.05
    if lam <= 0:
        # All-absorbing generator: steady state is the initial state; the
        # convention here is uniform over states, but this never occurs
        # for validated availability chains.
        raise SolverError("generator has no transitions; no unique steady state")
    pi = np.full(n, 1.0 / n)
    if op.representation == "dense":
        p = np.eye(n) + op.dense() / lam
        step = lambda v: v @ p  # noqa: E731 - tight loop kernel
    else:
        step = lambda v: v + op.apply(v) / lam  # noqa: E731
    for _iteration in range(max_iterations):
        nxt = step(pi)
        delta = np.abs(nxt - pi).max()
        pi = nxt
        if delta < tol:
            pi = np.clip(pi, 0.0, None)
            return pi / pi.sum()
    raise SolverError(
        f"power iteration did not converge within {max_iterations} steps "
        f"(residual {delta:.3e})"
    )


def _solve_power(op: GeneratorOperator, options: "SolverOptions") -> np.ndarray:
    return power_iteration(op, tol=options.tolerance)


def _normalised_system(
    op: GeneratorOperator,
) -> Tuple[sparse.csr_matrix, np.ndarray]:
    """``A x = b`` with one balance row swapped for normalisation, in CSR."""
    n = op.n
    qt = op.sparse().transpose().tocsr()
    ones_row = sparse.csr_matrix(np.ones((1, n)))
    a = sparse.vstack([qt[:-1, :], ones_row], format="csr")
    b = np.zeros(n)
    b[-1] = 1.0
    return a, b


def _solve_sparse_direct(
    op: GeneratorOperator, options: "SolverOptions"
) -> np.ndarray:
    if op.n == 1:
        return np.array([1.0])
    a, b = _normalised_system(op)
    with warnings.catch_warnings():
        # A singular (reducible) generator makes SuperLU warn and return
        # NaNs; the finite check below turns that into a SolverError.
        warnings.simplefilter("ignore", sparse.linalg.MatrixRankWarning)
        pi = spsolve(a.tocsc(), b)
    return _finish(np.asarray(pi, dtype=float), "sparse direct steady-state solve")


def _solve_sparse_iterative(
    op: GeneratorOperator, options: "SolverOptions"
) -> np.ndarray:
    n = op.n
    if n == 1:
        return np.array([1.0])
    a, b = _normalised_system(op)
    diag = a.diagonal()
    inv_diag = 1.0 / np.where(diag == 0.0, 1.0, diag)
    preconditioner = LinearOperator((n, n), matvec=lambda v: inv_diag * v)
    pi, info = gmres(
        a,
        b,
        rtol=max(options.tolerance, 1e-14),
        atol=0.0,
        restart=min(n, 200),
        maxiter=5000,
        M=preconditioner,
    )
    if info != 0:
        raise SolverError(
            f"sparse iterative steady-state solve did not converge (info={info})"
        )
    return _finish(np.asarray(pi, dtype=float), "sparse iterative steady-state solve")


register_backend(SteadyBackend(
    name="dense-direct",
    representation="dense",
    summary="LAPACK direct solve of the normalised balance equations",
    solve=_solve_dense_direct,
))
register_backend(SteadyBackend(
    name="gth",
    representation="dense",
    summary="Grassmann-Taksar-Heyman elimination (subtraction-free)",
    solve=_solve_gth,
))
register_backend(SteadyBackend(
    name="power",
    representation="any",
    summary="uniformized power iteration (matrix-free validation oracle)",
    solve=_solve_power,
))
register_backend(SteadyBackend(
    name="sparse-direct",
    representation="sparse",
    summary="SuperLU factorisation of the normalised system on CSR storage",
    solve=_solve_sparse_direct,
))
register_backend(SteadyBackend(
    name="sparse-iterative",
    representation="sparse",
    summary="GMRES with a diagonal preconditioner on CSR storage",
    solve=_solve_sparse_iterative,
))


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def solve_steady(
    model: Union["MarkovChain", GeneratorOperator, np.ndarray],
    options: Union[None, str, "SolverOptions"] = None,
) -> np.ndarray:
    """Solve ``pi Q = 0, sum(pi) = 1`` with the configured backend.

    ``model`` may be a chain, a raw generator or a pre-built operator;
    the operator is coerced to the representation the backend requires.
    """
    from .options import as_options

    opts = as_options(options)
    backend = get_backend(opts.steady_method)
    op = as_operator(model, representation=opts.representation)
    if backend.representation != "any" and backend.representation != op.representation:
        op = op.with_representation(backend.representation)
    return backend.solve(op, opts)


def absorption_times(
    op: GeneratorOperator,
    up_index: Sequence[int],
    options: Optional["SolverOptions"] = None,
) -> np.ndarray:
    """Expected times to absorption: solve ``Q_UU tau = -1``.

    The MTTF fundamental-matrix system as a first-class backend choice:
    dense LAPACK when the operator is dense, SuperLU on the extracted
    CSR submatrix when it is sparse.
    """
    index = np.asarray(list(up_index), dtype=int)
    ones = np.ones(len(index))
    if op.representation == "sparse":
        q_uu = op.sparse()[index, :][:, index].tocsc()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", sparse.linalg.MatrixRankWarning)
            tau = spsolve(q_uu, -ones)
        tau = np.atleast_1d(np.asarray(tau, dtype=float))
        if not np.isfinite(tau).all():
            raise SolverError("MTTF system is singular: sparse solve failed")
    else:
        q_uu = op.dense()[np.ix_(index, index)]
        try:
            tau = np.linalg.solve(q_uu, -ones)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"MTTF system is singular: {exc}") from exc
    if (tau < -1e-9).any():
        raise SolverError("MTTF solve produced negative expected times")
    return tau
