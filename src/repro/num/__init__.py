"""The unified numerical kernel layer.

``repro.num`` is the single numerical substrate under the whole stack:
generator construction and validation (:class:`GeneratorOperator`,
:func:`as_operator`, :func:`validate_generator`), solver configuration
(:class:`SolverOptions`, :func:`as_options`), the steady-state backend
registry (:func:`solve_steady`, :func:`get_backend`,
:func:`backend_names`) and the shared uniformization core
(:func:`transient_grid`, :func:`transient_distribution`,
:func:`interval_reward_value`).  The ``repro.markov`` solver modules
are thin compatibility shims over this package; the engine, service,
jobs and CLI thread :class:`SolverOptions` straight through to it.
"""

from __future__ import annotations

from .backends import (
    MAX_POWER_ITERATIONS,
    SteadyBackend,
    absorption_times,
    backend_names,
    get_backend,
    power_iteration,
    register_backend,
    solve_steady,
    steady_backends,
)
from .operator import (
    SPARSE_DENSITY_CEILING,
    SPARSE_STATE_FLOOR,
    GeneratorOperator,
    as_operator,
    validate_generator,
)
from .options import (
    DEFAULT_OPTIONS,
    REPRESENTATIONS,
    STEADY_ALIASES,
    TRANSIENT_METHODS,
    SolverOptions,
    as_options,
)
from .uniformization import (
    STIFFNESS_LIMIT,
    interval_reward_value,
    poisson_pmf_series,
    poisson_tail,
    poisson_truncation,
    stiffness,
    transient_distribution,
    transient_grid,
    uniformized,
)

__all__ = [
    "DEFAULT_OPTIONS",
    "GeneratorOperator",
    "MAX_POWER_ITERATIONS",
    "REPRESENTATIONS",
    "SPARSE_DENSITY_CEILING",
    "SPARSE_STATE_FLOOR",
    "STEADY_ALIASES",
    "STIFFNESS_LIMIT",
    "SolverOptions",
    "SteadyBackend",
    "TRANSIENT_METHODS",
    "absorption_times",
    "as_operator",
    "as_options",
    "backend_names",
    "get_backend",
    "interval_reward_value",
    "poisson_pmf_series",
    "poisson_tail",
    "poisson_truncation",
    "power_iteration",
    "register_backend",
    "solve_steady",
    "stiffness",
    "steady_backends",
    "transient_distribution",
    "transient_grid",
    "uniformized",
    "validate_generator",
]
