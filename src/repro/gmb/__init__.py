"""Graphical Model Builder (GMB) — the expert-facing modeling module.

RAScad's GMB lets RAS experts draw Markov chains, semi-Markov chains
and RBDs and wire them into hierarchies.  Without a GUI, the same
capability is exposed as fluent builders plus a hierarchy object that
binds RBD leaves to sub-models of any kind (chains, semi-Markov
processes, nested RBDs, MG solutions, or plain numbers) — "the combined
use of MG models and GMB models" from the paper.
"""

from .builder import MarkovBuilder, SemiMarkovBuilder
from .hierarchy import HierarchicalModel

__all__ = ["MarkovBuilder", "SemiMarkovBuilder", "HierarchicalModel"]
