"""Fluent builders for hand-drawn Markov and semi-Markov models.

The builders mirror the GMB drawing workflow: declare states (up or
down), then draw transitions, then build — which validates the result
exactly like RAScad's model checker does before solution.

Example:
    >>> chain = (
    ...     MarkovBuilder("duplex")
    ...     .up("Ok")
    ...     .down("Down")
    ...     .arc("Ok", "Down", 1e-3)
    ...     .arc("Down", "Ok", 0.25)
    ...     .build()
    ... )
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..markov.chain import MarkovChain
from ..semimarkov.distributions import Distribution
from ..semimarkov.process import SemiMarkovProcess


class MarkovBuilder:
    """Builds a validated :class:`~repro.markov.MarkovChain`."""

    def __init__(self, name: str = "chain") -> None:
        self._chain = MarkovChain(name)

    def state(
        self,
        name: str,
        reward: float = 1.0,
        meta: Optional[Mapping[str, object]] = None,
    ) -> "MarkovBuilder":
        self._chain.add_state(name, reward=reward, meta=meta)
        return self

    def up(self, name: str, reward: float = 1.0) -> "MarkovBuilder":
        """Declare an operational state (reward defaults to 1)."""
        return self.state(name, reward=reward)

    def down(self, name: str) -> "MarkovBuilder":
        """Declare a failure state (reward 0)."""
        return self.state(name, reward=0.0)

    def arc(
        self, source: str, target: str, rate: float, label: str = ""
    ) -> "MarkovBuilder":
        self._chain.add_transition(source, target, rate, label=label)
        return self

    def build(self) -> MarkovChain:
        self._chain.validate()
        return self._chain


class SemiMarkovBuilder:
    """Builds a validated :class:`~repro.semimarkov.SemiMarkovProcess`."""

    def __init__(self, name: str = "smp") -> None:
        self._process = SemiMarkovProcess(name)

    def state(
        self,
        name: str,
        reward: float = 1.0,
        meta: Optional[Mapping[str, object]] = None,
    ) -> "SemiMarkovBuilder":
        self._process.add_state(name, reward=reward, meta=meta)
        return self

    def up(self, name: str, reward: float = 1.0) -> "SemiMarkovBuilder":
        return self.state(name, reward=reward)

    def down(self, name: str) -> "SemiMarkovBuilder":
        return self.state(name, reward=0.0)

    def arc(
        self,
        source: str,
        target: str,
        probability: float,
        sojourn: Distribution,
    ) -> "SemiMarkovBuilder":
        self._process.add_transition(source, target, probability, sojourn)
        return self

    def build(self) -> SemiMarkovProcess:
        self._process.validate()
        return self._process
