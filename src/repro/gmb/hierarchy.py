"""Hierarchical composition of heterogeneous models.

An RBD structure whose leaves are *bound* to sub-models: Markov chains,
semi-Markov processes, nested RBD blocks, MG system solutions, or plain
availabilities.  This reproduces RAScad's hierarchical approach and its
"combined use of MG models and GMB models".
"""

from __future__ import annotations

from typing import Dict, Union

from ..errors import ModelError
from ..markov.chain import MarkovChain
from ..markov.rewards import steady_state_availability
from ..rbd.blocks import Block
from ..semimarkov.process import SemiMarkovProcess
from ..semimarkov.steady_state import semi_markov_availability

SubModel = Union[MarkovChain, SemiMarkovProcess, Block, float, "object"]


class HierarchicalModel:
    """An RBD whose leaves resolve to bound sub-model availabilities."""

    def __init__(self, structure: Block, name: str = "hierarchy") -> None:
        self.name = name
        self.structure = structure
        self._bindings: Dict[str, SubModel] = {}

    def bind(self, leaf_name: str, model: SubModel) -> "HierarchicalModel":
        """Attach a sub-model to the named RBD leaf."""
        leaf_names = {leaf.name for leaf in self.structure.leaves()}
        if leaf_name not in leaf_names:
            raise ModelError(
                f"hierarchy {self.name!r} has no leaf {leaf_name!r}; "
                f"leaves are {sorted(leaf_names)}"
            )
        self._bindings[leaf_name] = model
        return self

    def availability(self) -> float:
        """Steady-state availability of the full hierarchy."""
        values: Dict[str, float] = {}
        for leaf in self.structure.leaves():
            if leaf.name in self._bindings:
                values[leaf.name] = _resolve(
                    self._bindings[leaf.name], leaf.name
                )
        return self.structure.availability(values)


def _resolve(model: SubModel, leaf_name: str) -> float:
    if isinstance(model, MarkovChain):
        return steady_state_availability(model)
    if isinstance(model, SemiMarkovProcess):
        return semi_markov_availability(model)
    if isinstance(model, Block):
        return model.availability()
    if isinstance(model, (int, float)):
        value = float(model)
        if not 0.0 <= value <= 1.0:
            raise ModelError(
                f"binding for {leaf_name!r} must lie in [0, 1], got {value}"
            )
        return value
    # Duck-type MG SystemSolution (avoids a circular import).
    availability = getattr(model, "availability", None)
    if isinstance(availability, float):
        return availability
    raise ModelError(
        f"cannot resolve binding for {leaf_name!r}: "
        f"unsupported sub-model type {type(model).__name__}"
    )
