"""Automatic generation of availability Markov models (Section 4).

Given one MG block's parameters plus the global parameters, this module
generates the block's availability CTMC:

* **Type 0** (``N == K``, no redundancy) — Figure 3 of the paper.
* **Types 1–4** (``N > K``) — one per combination of recovery/repair
  transparency; Type 3 (nontransparent recovery, transparent repair) is
  the paper's Figure 4.  States repeat per redundancy level for larger
  ``N − K``, exactly as the paper describes ("if N−K > 1, states TF1,
  AR1, PF1 and Latent1 will be repeated in the model").

The reconstruction choices for details the paper's figures leave
ambiguous are documented in DESIGN.md §4; every such choice is also
annotated inline below.
"""

from __future__ import annotations

from typing import Optional, Set

from ..errors import ModelError
from ..markov.chain import MarkovChain
from .parameters import BlockParameters, GlobalParameters, Scenario


def classify_model_type(parameters: BlockParameters) -> int:
    """The paper's model-type number (0-4) for a block.

    Type 0: no redundancy.  For redundant blocks the type is the
    combination of Automatic Recovery Scenario and Repair Scenario:
    1 = transparent/transparent, 2 = transparent recovery with
    nontransparent repair, 3 = nontransparent recovery with transparent
    repair, 4 = nontransparent/nontransparent.
    """
    if not parameters.is_redundant:
        return 0
    recovery_transparent = parameters.recovery is Scenario.TRANSPARENT
    repair_transparent = parameters.repair is Scenario.TRANSPARENT
    if recovery_transparent and repair_transparent:
        return 1
    if recovery_transparent:
        return 2
    if repair_transparent:
        return 3
    return 4


def generate_block_chain(
    parameters: BlockParameters,
    global_parameters: Optional[GlobalParameters] = None,
) -> MarkovChain:
    """Generate the availability CTMC for one MG block."""
    global_parameters = global_parameters or GlobalParameters()
    if parameters.is_redundant:
        return generate_redundant_chain(parameters, global_parameters)
    return generate_type0_chain(parameters, global_parameters)


# ----------------------------------------------------------------------
# Type 0: required, non-redundant component (paper Figure 3)
# ----------------------------------------------------------------------
def generate_type0_chain(
    parameters: BlockParameters,
    global_parameters: Optional[GlobalParameters] = None,
) -> MarkovChain:
    """Markov Model Type 0 for a block with ``N == K``.

    A permanent fault on any of the N required units takes the system
    down immediately; an immediate service call is placed (logistic time
    is just Tresp), then the repair (3-part MTTR) runs, with imperfect
    repair routed through a ServiceError state (MTTRFID).  Transient
    faults are cleared by a system reboot (Tboot).
    """
    g = global_parameters or GlobalParameters()
    if parameters.is_redundant:
        raise ModelError(
            f"{parameters.name}: Type 0 requires N == K, "
            f"got N={parameters.quantity}, K={parameters.min_required}"
        )
    n = parameters.quantity
    lam_p = n * parameters.permanent_rate
    lam_t = n * parameters.transient_rate
    mttr = parameters.mttr_hours
    # A sub-nanosecond response time is an immediate-service model;
    # treating it as zero avoids inverting a subnormal into overflow.
    tresp = parameters.service_response_hours
    if tresp < 1e-9:
        tresp = 0.0
    pcd = parameters.p_correct_diagnosis

    chain = MarkovChain(f"{parameters.name}#type0")
    chain.add_state("Ok", reward=1.0, meta={"level": 0, "kind": "base"})

    if lam_p > 0.0:
        if tresp > 0.0:
            chain.add_state(
                "Logistic", reward=0.0, meta={"level": 1, "kind": "logistic"}
            )
            repair_entry = "Logistic"
        else:
            repair_entry = "Repair"
        chain.add_state(
            "Repair", reward=0.0, meta={"level": 1, "kind": "repair"}
        )
        chain.add_transition("Ok", repair_entry, lam_p, label="permanent fault")
        if tresp > 0.0:
            chain.add_transition(
                "Logistic", "Repair", 1.0 / tresp, label="service arrives"
            )
        if pcd < 1.0:
            chain.add_state(
                "ServiceError",
                reward=0.0,
                meta={"level": 1, "kind": "service-error"},
            )
            chain.add_transition(
                "Repair", "ServiceError", (1.0 - pcd) / mttr,
                label="incorrect diagnosis",
            )
            chain.add_transition(
                "ServiceError", "Ok", 1.0 / g.mttrfid_hours,
                label="repair from incorrect diagnosis",
            )
        chain.add_transition(
            "Repair", "Ok", pcd / mttr, label="correct repair"
        )

    if lam_t > 0.0:
        chain.add_state(
            "Reboot", reward=0.0, meta={"level": 0, "kind": "reboot"}
        )
        chain.add_transition("Ok", "Reboot", lam_t, label="transient fault")
        chain.add_transition(
            "Reboot", "Ok", 1.0 / g.reboot_hours, label="system reboot"
        )

    chain.validate()
    return chain


# ----------------------------------------------------------------------
# Types 1-4: redundant component (paper Figure 4 is Type 3, N=2, K=1)
# ----------------------------------------------------------------------
def generate_redundant_chain(
    parameters: BlockParameters,
    global_parameters: Optional[GlobalParameters] = None,
) -> MarkovChain:
    """Markov Model Types 1-4 for a block with ``N > K``.

    Level ``j`` counts permanently-faulty units.  ``PF1..PF{D}`` are
    degraded up states, ``PF{D+1}`` is the system-down state, and the
    AR / SPF / Latent / TF / ServiceError / Reint states repeat per
    level as Section 4 of the paper describes.  States that cannot be
    reached under the given parameters (e.g. SPF with Pspf = 0) are not
    generated, matching the "internal matrix representation" the tool
    builds.
    """
    g = global_parameters or GlobalParameters()
    if not parameters.is_redundant:
        raise ModelError(
            f"{parameters.name}: redundant generation requires N > K, "
            f"got N={parameters.quantity}, K={parameters.min_required}"
        )
    model_type = classify_model_type(parameters)
    n = parameters.quantity
    depth = parameters.redundancy_depth  # D = N - K

    lam_p = parameters.permanent_rate
    lam_t = parameters.transient_rate
    plf = parameters.p_latent_fault
    pspf = parameters.p_spf
    pcd = parameters.p_correct_diagnosis
    alpha = 1.0 / parameters.ar_time_hours
    sigma = 1.0 / parameters.spf_recovery_hours
    delta = 1.0 / parameters.mttdlf_hours
    rho = 1.0 / parameters.reintegration_hours
    eps = 1.0 / g.mttrfid_hours
    deferred = g.mttm_hours + parameters.service_response_hours
    mu_deferred = 1.0 / (deferred + parameters.mttr_hours)
    mu_immediate = 1.0 / (
        parameters.service_response_hours + parameters.mttr_hours
    )

    nontransparent_recovery = parameters.recovery is Scenario.NONTRANSPARENT
    nontransparent_repair = parameters.repair is Scenario.NONTRANSPARENT

    chain = MarkovChain(f"{parameters.name}#type{model_type}")

    def base(level: int) -> str:
        return "Ok" if level == 0 else f"PF{level}"

    # -- states, level by level, in a stable human-readable order -------
    chain.add_state("Ok", reward=1.0, meta={"level": 0, "kind": "base"})
    has_transients = lam_t > 0.0
    if has_transients and nontransparent_recovery:
        chain.add_state(
            "TF1", reward=0.0, meta={"level": 0, "kind": "transient-ar"}
        )
    for j in range(1, depth + 1):
        if plf > 0.0:
            chain.add_state(
                f"Latent{j}", reward=1.0, meta={"level": j, "kind": "latent"}
            )
        if nontransparent_recovery:
            chain.add_state(
                f"AR{j}", reward=0.0, meta={"level": j, "kind": "ar"}
            )
        if pspf > 0.0:
            chain.add_state(
                f"SPF{j}", reward=0.0, meta={"level": j, "kind": "spf"}
            )
        chain.add_state(
            f"PF{j}", reward=1.0, meta={"level": j, "kind": "base"}
        )
        if has_transients and nontransparent_recovery:
            chain.add_state(
                f"TF{j + 1}",
                reward=0.0,
                meta={"level": j, "kind": "transient-ar"},
            )
        if pcd < 1.0:
            chain.add_state(
                f"ServiceError{j}",
                reward=0.0,
                meta={"level": j, "kind": "service-error"},
            )
        if nontransparent_repair:
            chain.add_state(
                f"Reint{j}", reward=0.0, meta={"level": j, "kind": "reint"}
            )
    down_level = depth + 1
    chain.add_state(
        f"PF{down_level}", reward=0.0, meta={"level": down_level, "kind": "down"}
    )
    if pcd < 1.0:
        chain.add_state(
            f"ServiceError{down_level}",
            reward=0.0,
            meta={"level": down_level, "kind": "service-error"},
        )
    if nontransparent_repair:
        chain.add_state(
            f"Reint{down_level}",
            reward=0.0,
            meta={"level": down_level, "kind": "reint"},
        )

    # -- permanent-fault departures from up states -----------------------
    def add_permanent_arcs(source: str, level: int) -> None:
        """Fault arcs out of an up state sitting at ``level`` faults."""
        active = n - level
        if level < depth:
            detected = active * lam_p * (1.0 - plf)
            if detected > 0.0:
                if nontransparent_recovery:
                    chain.add_transition(
                        source, f"AR{level + 1}", detected,
                        label="detected permanent fault",
                    )
                else:
                    chain.add_transition(
                        source, f"PF{level + 1}", detected * (1.0 - pspf),
                        label="transparent recovery",
                    )
                    if pspf > 0.0:
                        chain.add_transition(
                            source, f"SPF{level + 1}", detected * pspf,
                            label="recovery failure",
                        )
            latent = active * lam_p * plf
            if latent > 0.0:
                chain.add_transition(
                    source, f"Latent{level + 1}", latent,
                    label="latent permanent fault",
                )
        else:
            # Boundary: the next permanent fault takes the system down;
            # no AR can save it (Figure 4 routes PF1 -> PF2 directly).
            boundary = active * lam_p
            if boundary > 0.0:
                chain.add_transition(
                    source, f"PF{down_level}", boundary,
                    label="fault beyond redundancy",
                )

    def add_transient_arcs(source: str, level: int) -> None:
        """Transient-fault arcs out of an up state at ``level`` faults."""
        if not has_transients:
            return
        rate = (n - level) * lam_t
        if rate <= 0.0:
            return
        if nontransparent_recovery:
            chain.add_transition(
                source, f"TF{level + 1}", rate, label="transient fault"
            )
        elif pspf > 0.0:
            # Transparent recovery: a successful AR is invisible; only
            # the Pspf failure path materialises.  The corrupted unit
            # then needs a service action (DESIGN.md choice 1).
            chain.add_transition(
                source, f"SPF{max(level, 1)}", rate * pspf,
                label="transient recovery failure",
            )

    add_permanent_arcs("Ok", 0)
    add_transient_arcs("Ok", 0)
    for j in range(1, depth + 1):
        add_permanent_arcs(f"PF{j}", j)
        add_transient_arcs(f"PF{j}", j)
        if plf > 0.0:
            # Second faults leave Latent exactly like PF (paper:
            # "Latent1 -> PF2 / TF2").
            add_permanent_arcs(f"Latent{j}", j)
            add_transient_arcs(f"Latent{j}", j)
            # Detection of the latent fault triggers the recovery event.
            if nontransparent_recovery:
                chain.add_transition(
                    f"Latent{j}", f"AR{j}", delta, label="latent fault detected"
                )
            else:
                chain.add_transition(
                    f"Latent{j}", f"PF{j}", delta * (1.0 - pspf),
                    label="latent fault detected",
                )
                if pspf > 0.0:
                    chain.add_transition(
                        f"Latent{j}", f"SPF{j}", delta * pspf,
                        label="recovery failure",
                    )

    # -- recovery machinery ----------------------------------------------
    if nontransparent_recovery:
        for j in range(1, depth + 1):
            chain.add_transition(
                f"AR{j}", f"PF{j}", alpha * (1.0 - pspf), label="AR succeeds"
            )
            if pspf > 0.0:
                chain.add_transition(
                    f"AR{j}", f"SPF{j}", alpha * pspf, label="AR fails (SPF)"
                )
        if has_transients:
            for j in range(0, depth + 1):
                name = f"TF{j + 1}"
                chain.add_transition(
                    name, base(j), alpha * (1.0 - pspf), label="AR clears fault"
                )
                if pspf > 0.0:
                    chain.add_transition(
                        name, f"SPF{max(j, 1)}", alpha * pspf,
                        label="AR fails (SPF)",
                    )
    if pspf > 0.0:
        for j in range(1, depth + 1):
            chain.add_transition(
                f"SPF{j}", f"PF{j}", sigma, label="SPF recovery"
            )

    # -- repair machinery --------------------------------------------------
    for j in range(1, down_level + 1):
        source = f"PF{j}"
        rate = mu_deferred if j <= depth else mu_immediate
        success_target = base(j - 1)
        if nontransparent_repair:
            chain.add_transition(
                source, f"Reint{j}", rate * pcd, label="repair done"
            )
            chain.add_transition(
                f"Reint{j}", success_target, rho, label="reintegration"
            )
        else:
            chain.add_transition(
                source, success_target, rate * pcd, label="transparent repair"
            )
        if pcd < 1.0:
            chain.add_transition(
                source, f"ServiceError{j}", rate * (1.0 - pcd),
                label="incorrect diagnosis",
            )
            chain.add_transition(
                f"ServiceError{j}", success_target, eps,
                label="repair from incorrect diagnosis",
            )

    pruned = _prune_unreachable(chain, "Ok")
    pruned.validate()
    return pruned


def _prune_unreachable(chain: MarkovChain, start: str) -> MarkovChain:
    """Drop states unreachable from ``start`` (defensive; generation
    above only creates reachable states for sane parameters)."""
    reachable: Set[str] = {start}
    frontier = [start]
    arcs = chain.transitions()
    while frontier:
        node = frontier.pop()
        for transition in arcs:
            if transition.source == node and transition.target not in reachable:
                reachable.add(transition.target)
                frontier.append(transition.target)
    if len(reachable) == chain.n_states:
        return chain
    pruned = MarkovChain(chain.name)
    for state in chain:
        if state.name in reachable:
            pruned.add_state(state.name, reward=state.reward, meta=state.meta)
    for transition in arcs:
        if transition.source in reachable and transition.target in reachable:
            pruned.add_transition(
                transition.source,
                transition.target,
                transition.rate,
                transition.label,
            )
    return pruned
