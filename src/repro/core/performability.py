"""Performability rewards for generated models.

The paper builds on Markov *reward* models and cites the performability
literature (Meyer 1980; Hsueh/Iyer/Trivedi 1988).  RAScad's generated
chains assign binary rewards (up = 1, down = 0); this module re-rewards
a generated chain with **capacity** rewards — the fraction of units
still delivering service at each redundancy level — turning the same
chain into a performability model: a 16-CPU server running on 15 CPUs
is up, but it is only delivering 15/16 of its capacity.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ModelError
from ..markov.chain import MarkovChain
from ..markov.rewards import steady_state_availability
from .generator import generate_block_chain
from .parameters import BlockParameters, GlobalParameters


def with_capacity_rewards(
    chain: MarkovChain, parameters: BlockParameters
) -> MarkovChain:
    """A copy of a generated chain with capacity reward rates.

    Up states at redundancy level ``j`` (``j`` permanently faulty
    units) earn ``(N - j) / N``; down states keep reward 0.  Levels
    come from the ``level`` metadata the generator writes, so this
    works on any chain produced by :func:`generate_block_chain`.
    """
    n = parameters.quantity
    rewarded = MarkovChain(f"{chain.name}#capacity")
    for state in chain:
        if not state.is_up:
            reward = 0.0
        else:
            level = state.meta.get("level")
            if level is None:
                raise ModelError(
                    f"state {state.name!r} lacks generator level metadata; "
                    "capacity rewards need a generated chain"
                )
            reward = max(0.0, (n - int(level)) / n)
        rewarded.add_state(state.name, reward=reward, meta=state.meta)
    for transition in chain.transitions():
        rewarded.add_transition(
            transition.source,
            transition.target,
            transition.rate,
            transition.label,
        )
    return rewarded


def expected_capacity(
    parameters: BlockParameters,
    global_parameters: Optional[GlobalParameters] = None,
) -> float:
    """Steady-state expected delivered capacity of one block (0..1).

    Always at most the block's availability: every down state delivers
    0 and every degraded up state delivers less than 1.
    """
    chain = generate_block_chain(parameters, global_parameters)
    rewarded = with_capacity_rewards(chain, parameters)
    return steady_state_availability(rewarded)


def capacity_oriented_availability(
    parameters: BlockParameters,
    global_parameters: Optional[GlobalParameters] = None,
) -> dict:
    """Both views of one block, side by side.

    Returns ``{"availability": ..., "expected_capacity": ...,
    "capacity_gap": ...}`` where the gap is the capacity lost to
    degraded-but-up operation — invisible to plain availability.
    """
    chain = generate_block_chain(parameters, global_parameters)
    availability = steady_state_availability(chain)
    capacity = steady_state_availability(
        with_capacity_rewards(chain, parameters)
    )
    return {
        "availability": availability,
        "expected_capacity": capacity,
        "capacity_gap": availability - capacity,
    }
