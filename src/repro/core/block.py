"""The MG diagram/block model: a tree of diagrams and blocks.

An MG *diagram* represents a system or subsystem and contains MG
*blocks*; each block represents a component and may carry a subdiagram
modeling its subcomponents.  The root diagram is level 1, its blocks'
subdiagrams level 2, and so on — exactly the structure shown in the
paper's Figures 1 and 2.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import SpecError
from .parameters import BlockParameters, GlobalParameters


class MGBlock:
    """A component in a diagram, with parameters and optional subdiagram."""

    def __init__(
        self,
        parameters: BlockParameters,
        subdiagram: Optional["MGDiagram"] = None,
    ) -> None:
        self.parameters = parameters
        self.subdiagram = subdiagram

    @property
    def name(self) -> str:
        return self.parameters.name

    @property
    def has_subdiagram(self) -> bool:
        return self.subdiagram is not None

    def __repr__(self) -> str:
        sub = f", subdiagram={self.subdiagram.name!r}" if self.subdiagram else ""
        return f"MGBlock({self.name!r}{sub})"


class MGDiagram:
    """A named collection of blocks modeled as a serial RBD."""

    def __init__(self, name: str, blocks: Optional[List[MGBlock]] = None) -> None:
        if not name:
            raise SpecError("diagram name must be non-empty")
        self.name = name
        self.blocks: List[MGBlock] = []
        for block in blocks or []:
            self.add_block(block)

    def add_block(self, block: MGBlock) -> MGBlock:
        if any(existing.name == block.name for existing in self.blocks):
            raise SpecError(
                f"diagram {self.name!r} already contains a block named "
                f"{block.name!r}"
            )
        self.blocks.append(block)
        return block

    def block(self, name: str) -> MGBlock:
        for candidate in self.blocks:
            if candidate.name == name:
                return candidate
        raise SpecError(f"diagram {self.name!r} has no block {name!r}")

    def __iter__(self) -> Iterator[MGBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        return f"MGDiagram({self.name!r}, blocks={len(self.blocks)})"


class DiagramBlockModel:
    """A complete MG model: the root diagram plus global parameters."""

    def __init__(
        self,
        root: MGDiagram,
        global_parameters: Optional[GlobalParameters] = None,
        name: Optional[str] = None,
    ) -> None:
        self.root = root
        self.global_parameters = global_parameters or GlobalParameters()
        self.name = name or root.name

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def walk(self) -> Iterator[Tuple[int, str, MGBlock]]:
        """Yield ``(level, path, block)`` in depth-first document order.

        ``level`` is the paper's diagram level (root diagram = 1); the
        path joins diagram and block names with ``/`` and uniquely
        identifies each block in the tree.
        """
        yield from self._walk(self.root, 1, self.root.name)

    def _walk(
        self, diagram: MGDiagram, level: int, prefix: str
    ) -> Iterator[Tuple[int, str, MGBlock]]:
        for block in diagram:
            path = f"{prefix}/{block.name}"
            yield level, path, block
            if block.subdiagram is not None:
                yield from self._walk(block.subdiagram, level + 1, path)

    def depth(self) -> int:
        """Number of diagram levels (1 for a flat model)."""
        return max((level for level, _path, _block in self.walk()), default=1)

    def block_count(self) -> int:
        """Total number of blocks across all levels."""
        return sum(1 for _ in self.walk())

    def component_count(self) -> int:
        """Total physical unit count (sum of leaf-block quantities)."""
        return sum(
            block.parameters.quantity
            for _level, _path, block in self.walk()
            if not block.has_subdiagram
        )

    def find(self, path: str) -> MGBlock:
        """Look up a block by its ``/``-joined path."""
        for _level, candidate_path, block in self.walk():
            if candidate_path == path:
                return block
        raise SpecError(f"model {self.name!r} has no block at path {path!r}")

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`SpecError` for structural problems.

        Checks that the tree is finite and acyclic (no diagram object
        reachable from itself), every diagram is non-empty, and block
        names are unique within their diagram (enforced at construction,
        re-checked here for models built by direct attribute mutation).
        """
        seen_diagrams: List[int] = []
        stack: List[MGDiagram] = [self.root]
        while stack:
            diagram = stack.pop()
            marker = id(diagram)
            if marker in seen_diagrams:
                raise SpecError(
                    f"diagram {diagram.name!r} appears on its own subtree; "
                    "the diagram/block model must be a tree"
                )
            seen_diagrams.append(marker)
            if not diagram.blocks:
                raise SpecError(f"diagram {diagram.name!r} has no blocks")
            names = [block.name for block in diagram]
            if len(names) != len(set(names)):
                raise SpecError(
                    f"diagram {diagram.name!r} has duplicate block names"
                )
            for block in diagram:
                if block.subdiagram is not None:
                    stack.append(block.subdiagram)

    def __repr__(self) -> str:
        return (
            f"DiagramBlockModel({self.name!r}, levels={self.depth()}, "
            f"blocks={self.block_count()})"
        )
