"""Model Generator (MG) — the paper's primary contribution.

Translates a hierarchical *diagram/block* specification written in the
engineering language (MTBF, MTTR, quantity, redundancy, recovery/repair
transparency, ...) into a hierarchy of reliability block diagrams and
continuous-time Markov chains, then solves them for system RAS measures.
The user of this package never has to touch the underlying mathematics —
exactly the design goal the paper states for RAScad's MG module.
"""

from .parameters import (
    Scenario,
    BlockParameters,
    GlobalParameters,
)
from .block import MGBlock, MGDiagram, DiagramBlockModel
from .generator import (
    classify_model_type,
    generate_block_chain,
    generate_type0_chain,
    generate_redundant_chain,
)
from .translator import (
    translate,
    aggregate_subdiagram,
    BlockSolution,
    ChainSolve,
    SystemSolution,
    solve_block_chain,
    solve_model,
)
from .measures import SystemMeasures, compute_measures
from .performability import (
    with_capacity_rewards,
    expected_capacity,
    capacity_oriented_availability,
)
from .semi_markov_variant import (
    semi_markov_variant,
    exponential_assumption_gap,
)

__all__ = [
    "Scenario",
    "BlockParameters",
    "GlobalParameters",
    "MGBlock",
    "MGDiagram",
    "DiagramBlockModel",
    "classify_model_type",
    "generate_block_chain",
    "generate_type0_chain",
    "generate_redundant_chain",
    "translate",
    "aggregate_subdiagram",
    "BlockSolution",
    "ChainSolve",
    "SystemSolution",
    "solve_block_chain",
    "solve_model",
    "SystemMeasures",
    "compute_measures",
    "with_capacity_rewards",
    "expected_capacity",
    "capacity_oriented_availability",
    "semi_markov_variant",
    "exponential_assumption_gap",
]
